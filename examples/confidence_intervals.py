"""Confidence intervals from the paper's exponential tail bounds.

Samples are not just point estimators: because VarOpt samples obey the
Chernoff-style bound of eq. (4), every range estimate carries a
conservative confidence interval obtained by inverting that bound.
This script measures empirical coverage and width.

Run:  python examples/confidence_intervals.py
"""

import numpy as np

from repro import Box, ExactSummary
from repro.core.varopt import varopt_summary
from repro.datagen import NetworkConfig, generate_network_flows


def main():
    data = generate_network_flows(
        NetworkConfig(n_pairs=8000, n_sources=2500, n_dests=2000),
        seed=3,
    )
    exact = ExactSummary(data)
    half = data.domain.sizes[0] // 2
    box = Box((0, 0), (half - 1, data.domain.sizes[1] - 1))
    truth = exact.query(box)
    total = data.total_weight
    print(
        f"query: lower half of the source space "
        f"(true weight {truth:,.0f} = {truth / total:.1%} of total)\n"
    )

    for s in (200, 1000, 4000):
        widths = []
        covered = 0
        trials = 200
        for t in range(trials):
            summary = varopt_summary(data, s, np.random.default_rng(t))
            lo, hi = summary.confidence_interval(box, delta=0.1)
            widths.append(hi - lo)
            if lo <= truth <= hi:
                covered += 1
        print(
            f"s={s:5d}: 90% CI width {np.mean(widths):10,.0f} "
            f"({np.mean(widths) / total:6.2%} of total), "
            f"empirical coverage {covered / trials:.1%}"
        )

    print(
        "\nCoverage should be >= 90% (the eq. (4) bound is conservative)"
        "\nand the width shrinks roughly like 1/sqrt(s)."
    )


if __name__ == "__main__":
    main()
