"""End-to-end distributed pipeline: build, ingest, and serve.

Demonstrates the distributed subsystem's four layers working
together:

1. **codec** -- a summary round-trips a wire frame bit-exactly;
2. **workers + coordinator** -- a 4-worker distributed build over the
   multiprocessing transport matches the single-process engine
   answer-for-answer with the same seed;
3. **streaming** -- a worker fleet ingests a live micro-batch feed
   and the coordinator folds worker snapshots into a queryable state;
4. **frontend** -- a query battery served twice: cold (collect + fold
   + sort) vs warm (LRU snapshot cache + cached sort orders);
5. **serving service** -- the long-lived :class:`ServingFrontend`
   answering the same battery submitted one query at a time from
   concurrent tenants, micro-batched by deadline + size flushes, with
   the full cache/batch/admission telemetry printed at the end;

plus the edge pattern: a local windowed StreamEngine shipping sealed
pane summaries upstream through the codec (the ``on_pane_sealed``
hand-off).

Run:  python examples/distributed_pipeline.py
"""

import threading
import time

import numpy as np

from repro import (
    Box,
    DistributedIngest,
    QueryFrontend,
    StreamEngine,
    build_sharded,
    distributed_build,
    tumbling,
)
from repro.distributed import ServingFrontend
from repro.datagen import (
    NetworkConfig,
    generate_network_flows,
    network_domain,
    stream_network_flows,
)
from repro.datagen.queries import uniform_area_queries
from repro.distributed import codec
from repro.engine.builder import fold_merge


def codec_demo(data):
    print("=== 1. Wire codec: bit-exact summary frames ===")
    summary = build_sharded(
        "obliv", data, 1_000, np.random.default_rng(0), num_shards=4
    ).summary
    frame = codec.to_bytes(summary)
    decoded = codec.from_bytes(frame)
    box = Box((0, 0), tuple(size - 1 for size in data.domain.sizes))
    print(f"frame: {len(frame):,} bytes for a {summary.size}-key sample")
    print(f"query(original) == query(decoded): "
          f"{summary.query(box) == decoded.query(box)}\n")


def build_demo(data):
    print("=== 2. Distributed build: 4 workers, multiprocessing ===")
    start = time.perf_counter()
    local = build_sharded(
        "obliv", data, 1_000, np.random.default_rng(7),
        num_shards=4, parallel=False,
    )
    local_secs = time.perf_counter() - start
    start = time.perf_counter()
    dist = distributed_build(
        "obliv", data, 1_000, np.random.default_rng(7),
        num_workers=4, transport="multiprocessing",
    )
    dist_secs = time.perf_counter() - start
    queries = uniform_area_queries(
        data.domain, 100, 3, max_fraction=0.1,
        rng=np.random.default_rng(1),
    )
    identical = (dist.summary.query_many(queries)
                 == local.summary.query_many(queries))
    print(f"local serial    : {local_secs * 1e3:7.1f} ms")
    print(f"4 workers (mp)  : {dist_secs * 1e3:7.1f} ms "
          f"(retries={dist.retries})")
    print(f"same seed => identical answers on a 100-query battery: "
          f"{identical}\n")


def streaming_demo(config):
    print("=== 3+4. Distributed ingest + serving frontend ===")
    domain = network_domain(config)
    with DistributedIngest(
        domain, ["obliv", "exact"], 1_000,
        num_workers=4, transport="multiprocessing", seed=7,
    ) as fleet:
        ingested = fleet.dispatch(
            stream_network_flows(config, seed=7, batch_size=10_000)
        )
        print(f"dispatched {ingested:,} items across 4 workers")
        frontend = QueryFrontend(fleet, slots=8)
        queries = uniform_area_queries(
            domain, 500, 3, max_fraction=0.1,
            rng=np.random.default_rng(5),
        )
        start = time.perf_counter()
        answers = frontend.serve(queries)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        frontend.serve(queries)
        warm = time.perf_counter() - start
        exact = np.asarray(answers["exact"])
        obliv = np.asarray(answers["obliv"])
        scale = max(1.0, float(np.abs(exact).max()))
        err = float(np.abs(obliv - exact).mean()) / scale
        print(f"cold battery (collect+fold+sort): {cold * 1e3:7.1f} ms")
        print(f"warm battery (cached)           : {warm * 1e3:7.1f} ms")
        print(f"obliv vs exact mean rel err     : {err:.4f}")
        print(f"frontend stats                  : "
              f"{frontend.stats.as_dict()}\n")
        serving_demo(fleet, queries)


def serving_demo(fleet, queries):
    print("=== 5. Long-lived serving service: concurrent tenants ===")
    with ServingFrontend(
        fleet, slots=8, batch_size=64, max_delay_ms=2.0
    ) as service:

        def tenant(name, chunk, out):
            handles = [
                service.submit("obliv", query, tenant=name)
                for query in chunk
            ]
            out.extend(handle.result(30.0) for handle in handles)

        answers = [[] for _ in range(4)]
        start = time.perf_counter()
        threads = [
            threading.Thread(
                target=tenant, args=(f"t{i}", queries[i::4], answers[i])
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        served = sum(map(len, answers))
        stats = service.stats()
    print(f"{served} queries from 4 tenants in {elapsed * 1e3:7.1f} ms "
          f"({served / elapsed:,.0f} q/s)")
    print(f"flushes: size={stats['flushes_size']} "
          f"deadline={stats['flushes_deadline']} "
          f"shed={stats['shed']} "
          f"max queue depth={stats['max_queue_depth']}")
    print(f"batch-size histogram (pow-2 buckets): {stats['batch_hist']}")
    print(f"cache: hits={stats['hits']} misses={stats['misses']} "
          f"evictions={stats['evictions']}\n")


def pane_handoff_demo(config):
    print("=== Edge pattern: sealed panes shipped through the codec ===")
    domain = network_domain(config)
    shipped = []
    engine = StreamEngine(
        domain, "obliv", 500, window=tumbling(4.0), seed=3,
        on_pane_sealed=lambda index, snaps: shipped.append(
            codec.to_bytes(snaps["obliv"])
        ),
    )
    engine.ingest(
        stream_network_flows(config, seed=3, batch_size=5_000)
    )
    if shipped:
        decoded = [codec.from_bytes(frame) for frame in shipped]
        folded = fold_merge(
            [s for s in decoded if s.size], s=500,
            rng=np.random.default_rng(0),
        )
        print(f"{len(shipped)} sealed panes shipped "
              f"({sum(map(len, shipped)):,} bytes total), "
              f"folded to a {folded.size}-key sample")
        print(f"folded estimate of total traffic: "
              f"{folded.estimate_total():,.0f}")


def main():
    config = NetworkConfig(
        n_pairs=200_000, n_sources=20_000, n_dests=16_000
    )
    data = generate_network_flows(config, seed=42)
    print(f"dataset: {data.n:,} flow keys, "
          f"total bytes {data.total_weight:,.0f}\n")
    codec_demo(data)
    build_demo(data)
    streaming_demo(config)
    pane_handoff_demo(config)


if __name__ == "__main__":
    main()
