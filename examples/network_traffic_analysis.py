"""Network traffic analysis (the paper's Example 1).

Estimates subnetwork-to-subnetwork traffic matrices and application
(port-range-like) fractions from a small structure-aware sample, and
compares against exact answers and a structure-oblivious sample of the
same size.

Run:  python examples/network_traffic_analysis.py
"""

import numpy as np

from repro import Box, ExactSummary, method_registry
from repro.datagen import NetworkConfig, generate_network_flows


def subnet_box(src_prefix, src_len, dst_prefix, dst_len, bits=32):
    """Box for traffic from one source prefix to one destination prefix."""
    src_lo = src_prefix << (bits - src_len)
    src_hi = ((src_prefix + 1) << (bits - src_len)) - 1
    dst_lo = dst_prefix << (bits - dst_len)
    dst_hi = ((dst_prefix + 1) << (bits - dst_len)) - 1
    return Box((src_lo, dst_lo), (src_hi, dst_hi))


def main():
    data = generate_network_flows(
        NetworkConfig(n_pairs=20_000, n_sources=6_000, n_dests=5_000),
        seed=42,
    )
    exact = ExactSummary(data)
    total = data.total_weight
    print(f"flow table: {data.n} (src, dst) pairs, {total:,.0f} bytes\n")

    rng = np.random.default_rng(1)
    s = 1000
    aware = method_registry.build("aware", data, s, rng)
    obliv = method_registry.build("obliv", data, s, rng)
    print(f"summaries: {s} sampled keys each (aware + obliv)\n")

    # --- A traffic matrix between the busiest /4 source and dest blocks.
    src_top = np.bincount(data.coords[:, 0] >> 28, weights=data.weights)
    dst_top = np.bincount(data.coords[:, 1] >> 28, weights=data.weights)
    src_blocks = np.argsort(src_top)[::-1][:3]
    dst_blocks = np.argsort(dst_top)[::-1][:3]

    print("traffic matrix between top /4 blocks (% of total bytes):")
    print("  block pair         exact    aware    obliv")
    errors_aware = []
    errors_obliv = []
    for sb in src_blocks:
        for db in dst_blocks:
            box = subnet_box(int(sb), 4, int(db), 4)
            t = exact.query(box) / total
            a = aware.query(box) / total
            o = obliv.query(box) / total
            errors_aware.append(abs(a - t))
            errors_obliv.append(abs(o - t))
            print(
                f"  {int(sb):>2d}/4 -> {int(db):>2d}/4     "
                f"{t:7.3%}  {a:7.3%}  {o:7.3%}"
            )
    print(
        f"\nmean absolute error: aware {np.mean(errors_aware):.5f}, "
        f"obliv {np.mean(errors_obliv):.5f} (fraction of total)"
    )

    # --- An ad-hoc multi-subnet question: how much traffic leaves the
    #     two busiest source /8s for anywhere in the top dest /4?
    s1, s2 = (int(b) for b in np.argsort(
        np.bincount(data.coords[:, 0] >> 24, weights=data.weights)
    )[::-1][:2])
    db = int(dst_blocks[0])
    q_boxes = [subnet_box(s1, 8, db, 4), subnet_box(s2, 8, db, 4)]
    from repro import MultiRangeQuery

    query = MultiRangeQuery(q_boxes, check_disjoint=False)
    t = exact.query_multi(query)
    print(
        f"\nmulti-range query (2 source /8s -> top dest /4):\n"
        f"  exact {t:,.0f}   aware {aware.query_multi(query):,.0f}   "
        f"obliv {obliv.query_multi(query):,.0f}"
    )


if __name__ == "__main__":
    main()
