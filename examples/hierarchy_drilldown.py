"""The paper's Figure 1 worked example, plus a drill-down demo.

Ten weighted leaves in a hierarchy, sample size 4: the structure-aware
VarOpt sample puts the floor or ceiling of the expected count under
*every* internal node (max discrepancy < 1), which a structure-
oblivious VarOpt sample does not.

Run:  python examples/hierarchy_drilldown.py
"""

import numpy as np

from repro.aware.hierarchy_sampler import hierarchy_aware_sample
from repro.core.discrepancy import max_hierarchy_discrepancy
from repro.core.ipps import ipps_probabilities
from repro.core.varopt import varopt_sample
from repro.structures.hierarchy import BitHierarchy


def figure1_instance():
    """The 10 leaves of Figure 1 embedded in a 16-leaf binary hierarchy."""
    weights = np.array([6.0, 4.0, 2.0, 3.0, 2.0, 4.0, 3.0, 8.0, 7.0, 1.0])
    keys = np.array([0, 1, 2, 3, 8, 10, 11, 12, 13, 14])
    return BitHierarchy(4), keys, weights


def show_node_counts(h, keys, probs, included_mask, depth):
    rows = []
    for node in range(h.num_leaves // h.span(depth)):
        lo, hi = h.node_interval(depth, node)
        in_node = (keys >= lo) & (keys < hi)
        if not in_node.any():
            continue
        expected = probs[in_node].sum()
        actual = int(included_mask[in_node].sum())
        rows.append((h.prefix_str(depth, node), expected, actual))
    return rows


def main():
    h, keys, weights = figure1_instance()
    s = 4
    probs, tau = ipps_probabilities(weights, s)
    print("Figure 1 example: 10 leaves, sample size s=4, tau=%.0f" % tau)
    print("leaf  weight  IPPS probability")
    for k, w, p in zip(keys, weights, probs):
        print(f"  {int(k):>2d}    {w:4.0f}    {p:.2f}")

    rng = np.random.default_rng(2026)
    included, _, _ = hierarchy_aware_sample(keys, weights, s, h, rng)
    mask = np.zeros(len(keys), bool)
    mask[included] = True
    print(f"\nstructure-aware sample: leaves {sorted(keys[included].tolist())}")

    print("\nper-node expected vs actual sample counts (depth 1 and 2):")
    for depth in (1, 2):
        for prefix, expected, actual in show_node_counts(
            h, keys, probs, mask, depth
        ):
            print(
                f"  node {prefix:<6s} expected {expected:4.2f} -> "
                f"actual {actual} (floor/ceil: OK)"
            )

    # Compare worst-case node discrepancy over many draws.
    trials = 2000
    worst_aware = 0.0
    worst_obliv = 0.0
    for t in range(trials):
        inc_a, _, _ = hierarchy_aware_sample(
            keys, weights, s, h, np.random.default_rng(t)
        )
        mask_a = np.zeros(len(keys), bool)
        mask_a[inc_a] = True
        worst_aware = max(
            worst_aware, max_hierarchy_discrepancy(h, keys, probs, mask_a)
        )
        inc_o, _ = varopt_sample(weights, s, np.random.default_rng(t))
        mask_o = np.zeros(len(keys), bool)
        mask_o[inc_o] = True
        worst_obliv = max(
            worst_obliv, max_hierarchy_discrepancy(h, keys, probs, mask_o)
        )
    print(
        f"\nmax node discrepancy over {trials} draws:"
        f"\n  structure-aware : {worst_aware:.3f}   (theorem: < 1)"
        f"\n  oblivious VarOpt: {worst_obliv:.3f}"
    )


if __name__ == "__main__":
    main()
