"""Live streaming dashboard rendered from the telemetry timeline.

The observability layer (``repro.obs``) is the data source here, not
ad-hoc prints: an enabled :class:`MetricsRegistry` watches a sliding-
window :class:`StreamEngine` ingesting a bursty time series, an
:class:`AccuracyProbe` measures per-window estimate error against the
exact reference on every refresh, and each dashboard frame is one
``registry.report_timeline()`` record -- the same JSONL a real
collector would scrape.  Four live panels come straight out of the
per-frame metric deltas:

* **ingest rate** -- ``stream.items_ingested`` delta over the frame;
* **pane seal latency** -- window-local p95 of
  ``stream.pane_seal_seconds``;
* **per-window discrepancy** -- ``accuracy.discrepancy{method=obliv}``
  as a share of the window's exact total, with a bar;
* **tau drift** -- the VarOpt inclusion threshold and its step-to-step
  drift (a sprinting tau means the live keys are out-skewing the
  sample size).

The run ends with the trace-ring summary and a Prometheus-style
exposition dump of the final snapshot -- everything a scraper would
see, from the same registry that drew the panels.

Run:  python examples/streaming_dashboard.py
"""

import io
import json

import numpy as np

from repro import Box, StreamEngine, obs, sliding
from repro.datagen import TimeSeriesConfig, stream_bursty_series
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain

HORIZON = 1 << 20
WINDOW = sliding(width=1 << 17, slide=1 << 15)  # 4-pane sliding window
SIZE = 600
BAR_WIDTH = 24


def _bar(fraction, width=BAR_WIDTH):
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def _frame_panels(record, previous_t, engine, probe_reading, window_total):
    """One dashboard line from a ``report_timeline`` delta record."""
    metrics = record["metrics"]
    dt = max(record["t"] - previous_t, 1e-9)
    rate = metrics.get("stream.items_ingested", 0) / dt
    seal = metrics.get("stream.pane_seal_seconds") or {}
    seal_p95_ms = seal.get("p95", 0.0) * 1e3  # absent until a pane seals
    sealed = metrics.get("stream.panes_sealed", 0)
    disc = probe_reading["discrepancy"]
    share = disc / window_total if window_total else 0.0
    tau = probe_reading.get("tau", 0.0)
    drift = probe_reading.get("tau_drift", 0.0)
    return (
        f"  {engine.now / 1024:7.0f}k | {rate / 1e3:7.1f}k/s "
        f"| seal p95 {seal_p95_ms:6.2f} ms ({sealed} new, "
        f"{engine.num_panes} live) | disc {share:6.2%} {_bar(share * 10)} "
        f"| tau {tau:8.1f} (drift {drift:+8.1f})"
    )


def main():
    np.set_printoptions(suppress=True)
    # Fresh enabled registry: panels read deltas, nothing else writes.
    obs.set_registry(obs.MetricsRegistry(enabled=True))
    registry = obs.get_registry()

    engine = StreamEngine(
        ProductDomain([OrderedDomain(HORIZON)]),
        ["exact", "obliv", "qdigest-stream"],
        SIZE,
        window=WINDOW,
        seed=1,
    )
    # Fixed battery: eight half-overlapping slices of the time axis.
    battery = [
        Box((lo,), (lo + HORIZON // 4,))
        for lo in range(0, HORIZON - HORIZON // 4, HORIZON // 8)
    ]
    whole = Box((0,), (HORIZON - 1,))
    probe = obs.AccuracyProbe(engine, battery, registry=registry)

    timeline = io.StringIO()
    config = TimeSeriesConfig(horizon=HORIZON, n_bursts=8)

    print("=== live dashboard (one line per timeline frame) ===")
    print(
        f"  {'now':>8} | {'ingest':>9} | {'pane seal latency':>28} "
        f"| {'window discrepancy (obliv)':>{15 + BAR_WIDTH}} "
        f"| tau / drift"
    )
    last_bucket = -1
    previous_t = registry.report_timeline()["t"]  # frame-zero anchor
    for batch in stream_bursty_series(config, seed=4,
                                      batch_duration=1 << 15):
        engine.process(batch)
        bucket = int(engine.now) >> 17
        if bucket == last_bucket:
            continue
        last_bucket = bucket
        reading = probe.observe()["obliv"]
        window_total = engine.query_now(whole)["exact"]
        record = registry.report_timeline(timeline, now=float(engine.now))
        print(_frame_panels(record, previous_t, engine, reading,
                            window_total))
        previous_t = record["t"]
    print(
        f"  ingested {engine.items_seen} events in "
        f"{engine.batches_seen} batches; "
        f"{len(timeline.getvalue().splitlines())} timeline frames emitted"
    )

    # ------------------------------------------------------------------
    # What a collector would see.
    # ------------------------------------------------------------------
    frames = [json.loads(line) for line in
              timeline.getvalue().splitlines()]
    sealed = sum(f["metrics"].get("stream.panes_sealed", 0)
                 for f in frames)
    print("\n=== timeline recap (from the JSONL frames) ===")
    print(f"  frames: {len(frames)}, panes sealed across frames: {sealed}")

    spans = registry.trace.spans("stream.pane_seal")
    if spans:
        worst = max(spans, key=lambda s: s["duration"])
        print(
            f"  trace ring: {len(registry.trace)} spans, slowest "
            f"pane seal {worst['duration'] * 1e3:.2f} ms "
            f"(pane {worst['tags']['pane']})"
        )

    snapshot = registry.snapshot()
    exposition = obs.expose(snapshot)
    print("\n=== exposition dump (scrape of the final snapshot) ===")
    wanted = ("repro_stream_items_ingested", "repro_stream_panes_sealed",
              "repro_accuracy_discrepancy", "repro_accuracy_tau")
    for line in exposition.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")
    print(f"  ... ({len(exposition.splitlines())} exposition lines total)")


if __name__ == "__main__":
    main()
