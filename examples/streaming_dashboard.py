"""Live streaming dashboard: micro-batch ingestion + windowed queries.

Two live views driven by the streaming engine:

1. **Traffic totals (landmark)** -- a network-flow feed is ingested in
   micro-batches by a VarOpt reservoir (``obliv``), a mergeable
   Count-Sketch (``sketch``) and the exact store; every few batches the
   dashboard refreshes a battery of subnet queries *live*, without
   rebuilding anything.
2. **Burst monitor (sliding window)** -- a bursty time series flows
   through a sliding event-time window (panes folded with the
   mergeable-summary protocol at query time), so the recent-activity
   estimate tracks bursts and forgets them as they age out.

Run:  python examples/streaming_dashboard.py
"""

import numpy as np

from repro import Box, StreamEngine, sliding
from repro.datagen import (
    NetworkConfig,
    TimeSeriesConfig,
    network_domain,
    stream_bursty_series,
    stream_network_flows,
)
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain


def traffic_dashboard():
    config = NetworkConfig(n_pairs=40_000, n_sources=6_000, n_dests=5_000)
    engine = StreamEngine(
        network_domain(config), ["obliv", "sketch", "exact"], 1_500, seed=7
    )
    top = 1 << config.bits
    # "Subnet" panels: the four top-level source-prefix quadrants.
    panels = [
        Box((q * (top // 4), 0), ((q + 1) * (top // 4) - 1, top - 1))
        for q in range(4)
    ]

    print("=== live traffic totals (landmark) ===")
    print("    batches      items   method      q0%    q1%    q2%    q3%")
    source = stream_network_flows(config, seed=7, batch_size=2_000)
    for refresh in range(4):
        engine.ingest(source, limit=5)
        answers = engine.query_many_now(panels)
        exact_total = sum(answers["exact"]) or 1.0
        for method in ("exact", "obliv", "sketch"):
            shares = [a / exact_total for a in answers[method]]
            cells = "  ".join(f"{share:5.1%}" for share in shares)
            name = f"{method:<10s}" if method != "exact" else "exact     "
            lead = (
                f"    {engine.batches_seen:7d}  {engine.items_seen:9d}"
                if method == "exact"
                else " " * 23
            )
            print(f"{lead}   {name} {cells}")
    reservoir = engine.snapshot("obliv")
    print(
        f"    reservoir: {reservoir.size} keys, tau={reservoir.tau:.3f}, "
        f"total estimate {reservoir.estimate_total():,.0f}"
    )


def burst_monitor():
    config = TimeSeriesConfig(horizon=1 << 20, n_bursts=8)
    window = sliding(width=1 << 17, slide=1 << 15)  # 4-pane sliding window
    engine = StreamEngine(
        # 1-D ordered time domain: the streaming q-digest is native
        # here; exact is the reference.
        ProductDomain([OrderedDomain(config.horizon)]),
        ["exact", "qdigest-stream"],
        600,
        window=window,
        seed=1,
    )
    whole = Box((0,), ((1 << 20) - 1,))
    print("\n=== burst monitor (sliding window, 4 panes) ===")
    print("      now(k-slots)   panes   recent weight (exact / qdigest)")
    last_bucket = -1
    for batch in stream_bursty_series(config, seed=4, batch_duration=1 << 15):
        engine.process(batch)
        bucket = int(engine.now) >> 17
        if bucket != last_bucket:
            last_bucket = bucket
            live = engine.query_now(whole)
            print(
                f"      {engine.now / 1024:12.0f}   {engine.num_panes:5d}"
                f"   {live['exact']:12,.0f} / {live['qdigest-stream']:12,.0f}"
            )
    print(f"      ingested {engine.items_seen} events "
          f"in {engine.batches_seen} batches")


def main():
    np.set_printoptions(suppress=True)
    traffic_dashboard()
    burst_monitor()


if __name__ == "__main__":
    main()
