"""I/O-efficient summarization of a stream (Section 5).

Demonstrates the two-pass pipeline's small memory footprint: pass 1
computes the exact IPPS threshold (Algorithm 4, O(s) heap) and a guide
sample; pass 2 keeps one active key per partition cell (Algorithm 3).
The data is only ever read through the streaming iterator -- never
sorted or held whole.

Run:  python examples/stream_summarization.py
"""

import numpy as np

from repro import TwoPassSampler
from repro.core.ipps import StreamingThreshold, ipps_threshold
from repro.datagen import TicketConfig, generate_tickets
from repro.summaries.exact import ExactSummary


def main():
    data = generate_tickets(TicketConfig(n_combinations=30_000), seed=5)
    print(
        f"stream: {data.n} (trouble, network) ticket keys, "
        f"{data.total_weight:,.0f} tickets total"
    )

    # --- Algorithm 4: the streaming threshold is exact, not approximate.
    s = 800
    stream_thr = StreamingThreshold(s)
    for _key, weight in data.iter_items():
        stream_thr.update(weight)
    offline = ipps_threshold(data.weights, s)
    print(
        f"\nstreaming tau_s = {stream_thr.tau:.6f}"
        f"  (offline solver: {offline:.6f})"
    )

    # --- The full two-pass sampler.
    sampler = TwoPassSampler(s, np.random.default_rng(0), s_prime_factor=5)
    summary = sampler.fit(data)
    print(
        f"two-pass sample: {summary.size} keys "
        f"(target {s}), tau = {summary.tau:.4f}"
    )

    # Memory accounting: the pipeline held the guide sample (5s keys),
    # one active key per kd cell, and the growing sample.
    partition = sampler.last_partition
    print(
        f"partition: kd tree over the guide sample "
        f"(independent of the {data.n}-key stream length)"
    )

    # --- Estimates from the sample vs the archived data.
    exact = ExactSummary(data)
    trouble_hier = data.domain.hierarchy(0)
    print("\nper top-level trouble-code category (% of tickets):")
    print("  category   exact     sample")
    span = trouble_hier.span(1)
    from repro import Box

    network_size = data.domain.sizes[1]
    for node in range(trouble_hier.branchings[0]):
        box = Box(
            (node * span, 0), ((node + 1) * span - 1, network_size - 1)
        )
        t = exact.query(box) / data.total_weight
        e = summary.query(box) / data.total_weight
        if t > 0.005:
            print(f"  {node:>6d}   {t:7.2%}   {e:7.2%}")


if __name__ == "__main__":
    main()
