"""Sharded build + merge, and vectorized batch querying.

Demonstrates the engine subsystem: the dataset is split into shards,
each shard is summarized independently (in worker processes when the
platform allows), and the per-shard VarOpt samples are folded into one
unbiased sample with the mergeable-summary protocol.  Query batteries
are then answered in a single broadcasted NumPy pass.

Run:  python examples/sharded_engine.py
"""

import time

import numpy as np

from repro import Box, ExactSummary, build_sharded, method_registry
from repro.datagen import NetworkConfig, generate_network_flows
from repro.datagen.queries import uniform_area_queries


def main():
    data = generate_network_flows(
        NetworkConfig(n_pairs=30_000, n_sources=8_000, n_dests=6_000),
        seed=11,
    )
    print(f"dataset: {data.n} flow keys, total bytes {data.total_weight:,.0f}")

    # --- Build: monolithic vs sharded (4 shards, merged down to s).
    s = 1_000
    start = time.perf_counter()
    mono = method_registry.build("obliv", data, s, np.random.default_rng(0))
    mono_secs = time.perf_counter() - start

    start = time.perf_counter()
    result = build_sharded(
        "obliv", data, s, np.random.default_rng(0), num_shards=4
    )
    shard_secs = time.perf_counter() - start
    merged = result.summary
    print(
        f"\nmonolithic build: {mono_secs * 1e3:7.1f} ms -> {mono}"
        f"\nsharded build   : {shard_secs * 1e3:7.1f} ms -> {merged}"
        f"  ({result.num_shards} shards, "
        f"processes={result.used_processes})"
    )
    print(
        f"estimate_total  : exact {data.total_weight:,.1f}, "
        f"merged {merged.estimate_total():,.1f}"
    )

    # --- Query: a battery of 500 random boxes, answered in one pass.
    rng = np.random.default_rng(7)
    queries = uniform_area_queries(data.domain, 500, 1, rng=rng)
    start = time.perf_counter()
    looped = [merged.query_multi(q) for q in queries]
    loop_secs = time.perf_counter() - start
    start = time.perf_counter()
    batched = merged.query_many(queries)
    batch_secs = time.perf_counter() - start
    print(
        f"\n500-query battery: loop {loop_secs * 1e3:6.1f} ms, "
        f"batched {batch_secs * 1e3:6.1f} ms "
        f"({loop_secs / max(batch_secs, 1e-9):.1f}x), "
        f"max |diff| = {max(abs(a - b) for a, b in zip(looped, batched)):.3g}"
    )

    # --- Accuracy parity on a known-heavy block.
    exact = ExactSummary(data)
    box = Box((0, 0), (data.domain.sizes[0] // 2, data.domain.sizes[1] - 1))
    print(
        f"\nhalf-domain query: exact {exact.query(box):,.1f}, "
        f"mono {mono.query(box):,.1f}, merged {merged.query(box):,.1f}"
    )


if __name__ == "__main__":
    main()
