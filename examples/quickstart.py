"""Quickstart: build a structure-aware sample and answer range queries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Box, ExactSummary, method_registry
from repro.datagen import NetworkConfig, generate_network_flows


def main():
    # 1. A weighted, structured dataset: network flows keyed by
    #    (source IP, destination IP) in a 2^32 x 2^32 product of bit
    #    hierarchies, weighted by bytes.
    data = generate_network_flows(
        NetworkConfig(n_pairs=10_000, n_sources=3_000, n_dests=2_500),
        seed=7,
    )
    print(f"dataset: {data.n} flow keys, total bytes {data.total_weight:,.0f}")

    # 2. Summarize with 500 sampled keys, structure-aware (two passes).
    #    Methods are selected declaratively from the engine registry.
    rng = np.random.default_rng(0)
    aware = method_registry.build("aware", data, 500, rng)
    obliv = method_registry.build("obliv", data, 500, rng)
    print(f"aware sample: {aware.size} keys, threshold tau={aware.tau:.1f}")

    # 3. Ask range queries: traffic from the busiest /8 source block to
    #    the busiest /8 destination block (an axis-parallel box).
    src_block = int(
        np.bincount(data.coords[:, 0] >> 24, weights=data.weights).argmax()
    )
    dst_block = int(
        np.bincount(data.coords[:, 1] >> 24, weights=data.weights).argmax()
    )
    box = Box(
        lows=(src_block << 24, dst_block << 24),
        highs=(((src_block + 1) << 24) - 1, ((dst_block + 1) << 24) - 1),
    )
    exact = ExactSummary(data)
    truth = exact.query(box)
    print(f"\nquery: traffic {src_block}.0.0.0/8 -> {dst_block}.0.0.0/8")
    print(f"  exact      : {truth:12,.1f}")
    print(f"  aware  est : {aware.query(box):12,.1f}")
    print(f"  obliv  est : {obliv.query(box):12,.1f}")

    # 4. Samples also answer *arbitrary* subset queries specified after
    #    the fact -- here, flows where the source is even (a predicate
    #    no range summary can answer).
    truth_even = data.weights[data.coords[:, 0] % 2 == 0].sum()
    est_even = aware.estimate_subset(lambda c: c[:, 0] % 2 == 0)
    print(f"\narbitrary subset (even sources):")
    print(f"  exact      : {truth_even:12,.1f}")
    print(f"  aware  est : {est_even:12,.1f}")

    # 5. ... and provide representative keys of any selected region.
    reps = aware.representatives(box, k=3)
    print(f"\ntop-3 representative flows in the queried block:")
    for src, dst in reps:
        print(f"  {int(src):>10d} -> {int(dst):>10d}")


if __name__ == "__main__":
    main()
