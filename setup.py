"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` uses this via the legacy code path when PEP 660
editable builds are unavailable (e.g. offline machines without wheel).
"""

from setuptools import setup

setup()
