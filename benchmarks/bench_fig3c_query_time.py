"""Figure 3(c): time to answer a rectangle-query battery vs summary size.

Expected shape: aware and obliv queries cost the same (both scan a
sample); wavelet queries are orders of magnitude slower (dyadic
decomposition times coefficient lookups); querying the full data costs
the most per battery.
"""

from conftest import emit
from repro.experiments.figures import fig3c
from repro.experiments.report import render_figure


def test_fig3c(benchmark, network_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig3c(
            network_data,
            sizes=(100, 1000, 3000),
            n_rectangles=500,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    emit(results_dir, "fig3c", text)
    aware = dict(result.series["aware"])
    obliv = dict(result.series["obliv"])
    # Samples answer queries in comparable time (same representation).
    for size in aware:
        ratio = aware[size] / max(obliv[size], 1e-12)
        assert 0.2 < ratio < 5.0
