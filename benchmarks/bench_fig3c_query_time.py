"""Figure 3(c): time to answer a rectangle-query battery vs summary size.

Expected shape: aware and obliv queries cost the same (both scan a
sample); wavelet queries are orders of magnitude slower (dyadic
decomposition times coefficient lookups); querying the full data costs
the most per battery.
"""

from conftest import SMOKE, emit, emit_json, figure_records, perf_assert
from repro.experiments.figures import fig3c
from repro.experiments.report import render_figure

PARAMS = dict(sizes=(100, 1000, 3000), n_rectangles=500)
if SMOKE:
    PARAMS = dict(sizes=(100, 400), n_rectangles=50)


def test_fig3c(benchmark, network_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig3c(network_data, **PARAMS),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    emit(results_dir, "fig3c", text)
    emit_json(
        results_dir,
        "fig3c",
        figure_records(
            result,
            "wall_time_s",
            extra={"n_rectangles": PARAMS["n_rectangles"]},
        ),
    )
    aware = dict(result.series["aware"])
    obliv = dict(result.series["obliv"])
    # Samples answer queries in comparable time (same representation).
    for size in aware:
        ratio = aware[size] / max(obliv[size], 1e-12)
        perf_assert(0.2 < ratio < 5.0)
