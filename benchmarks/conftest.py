"""Shared fixtures for the benchmark suite.

Each ``bench_figNx`` file regenerates one figure of the paper's
evaluation; results are printed and also written to
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.

Smoke mode (``BENCH_SMOKE=1``, used by the CI smoke job) runs every
benchmark end to end at tiny sizes so the scripts cannot silently rot;
datasets shrink and performance/statistical expectations
(:func:`perf_assert`) are skipped -- only the structural assertions
remain meaningful at toy scale.
"""

import json
import os
import pathlib
import platform

import numpy as np
import pytest

from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.tickets import TicketConfig, generate_tickets

#: CI smoke mode: tiny data, no timing/statistical assertions.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Scale of the benchmark datasets relative to the paper's (~10%).
BENCH_NETWORK = NetworkConfig(n_pairs=20_000, n_sources=6_000, n_dests=5_000)
BENCH_TICKETS = TicketConfig(n_combinations=20_000)
if SMOKE:
    BENCH_NETWORK = NetworkConfig(n_pairs=3_000, n_sources=1_000, n_dests=800)
    BENCH_TICKETS = TicketConfig(n_combinations=3_000)


def perf_assert(condition, message=""):
    """Assert a performance/statistical expectation.

    Skipped in smoke mode: tiny sizes make timings and error shapes
    meaningless, but the code paths still have to run to completion.
    """
    if SMOKE:
        return
    assert condition, message


@pytest.fixture(scope="session")
def network_data():
    """Synthetic network-flow dataset for the benchmarks."""
    return generate_network_flows(BENCH_NETWORK, seed=42)


@pytest.fixture(scope="session")
def tickets_data():
    """Synthetic tech-ticket dataset for the benchmarks."""
    return generate_tickets(BENCH_TICKETS, seed=1234)


@pytest.fixture(scope="session")
def results_dir():
    """Directory where figure tables are written.

    ``BENCH_RESULTS_DIR`` overrides the default ``benchmarks/results``
    -- the bench-regression CI job points fresh smoke runs at a scratch
    directory so the committed baselines stay comparable.
    """
    override = os.environ.get("BENCH_RESULTS_DIR", "")
    path = (
        pathlib.Path(override)
        if override
        else pathlib.Path(__file__).parent / "results"
    )
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit(results_dir, name, text):
    """Print a figure table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def emit_json(results_dir, name, records):
    """Persist machine-readable benchmark records.

    Writes ``BENCH_<name>.json`` next to the text results so the perf
    trajectory can be tracked across PRs without parsing tables.
    ``records`` is a list of flat dicts (method, size, wall time,
    throughput, ...); run context (smoke flag, cpu count, platform) is
    stamped once at the top level.
    """
    payload = {
        "benchmark": name,
        "smoke": SMOKE,
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "records": list(records),
    }
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def figure_records(result, value_key="value", extra=None):
    """Flatten a :class:`FigureResult` into ``emit_json`` records.

    One flat dict per (series, x) point; ``value_key`` names the y
    value (e.g. ``items_per_second`` for build figures,
    ``wall_time_s`` for query timings) so the regression checker knows
    which way is better.
    """
    records = []
    for name, points in sorted(result.series.items()):
        for x, y in points:
            record = {"series": name, "x": x, value_key: y}
            if extra:
                record.update(extra)
            records.append(record)
    return records
