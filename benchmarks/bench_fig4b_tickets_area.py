"""Figure 4(b): accuracy vs query weight, ticket data, uniform-area queries."""

from conftest import emit
from repro.experiments.figures import fig4b
from repro.experiments.report import render_figure


def test_fig4b(benchmark, tickets_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig4b(
            tickets_data,
            size=2700,
            ranges_per_query=25,
            fractions=(0.005, 0.02, 0.06, 0.12),
            n_queries=30,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    emit(results_dir, "fig4b", text)
    assert set(result.series) == {"aware", "obliv", "wavelet", "qdigest"}
