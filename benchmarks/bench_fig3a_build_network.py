"""Figure 3(a): construction throughput vs summary size, network data.

Expected shape: obliv (one pass) is fastest; aware costs roughly one
more pass; qdigest and sketch are about two orders of magnitude slower
in 2-D; the 2-D wavelet transform is the slowest by far (every point
touches log X * log Y coefficients).
"""

from conftest import emit, emit_json, figure_records, perf_assert
from repro.experiments.figures import fig3a
from repro.experiments.report import render_figure


def test_fig3a(benchmark, network_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig3a(network_data, sizes=(100, 1000, 3000)),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    emit(results_dir, "fig3a", text)
    emit_json(
        results_dir,
        "fig3a",
        figure_records(
            result, "items_per_second", extra={"n": network_data.n}
        ),
    )
    series = result.series
    assert set(series) == {"aware", "obliv", "wavelet", "qdigest", "sketch"}
    obliv = dict(series["obliv"])
    wavelet = dict(series["wavelet"])
    aware = dict(series["aware"])
    # Sampling construction dominates the wavelet transform.
    perf_assert(min(obliv.values()) > max(wavelet.values()))
    perf_assert(min(aware.values()) > max(wavelet.values()))
