"""Benchmark regression gate: fresh BENCH_*.json vs committed baselines.

Usage (what the CI ``bench-regression`` job runs)::

    BENCH_SMOKE=1 BENCH_RESULTS_DIR=/tmp/bench-fresh pytest bench_*.py
    python check_regression.py --baseline results/smoke \
        --fresh /tmp/bench-fresh

Records are matched across the two directories by benchmark name plus
every non-measurement field (method, mode, series, sizes, ...).  Each
matched record yields a slowdown ratio -- ``wall_time_s`` directly, or
the inverse of a throughput field (``items_per_second`` /
``throughput_per_s``) when no wall time was recorded.  Because the
baselines were committed from a different machine, the ratios are
*calibrated*: the median ratio across all compared records is treated
as the machine-speed difference, and a record fails only when its
calibrated ratio exceeds ``--max-ratio`` (default 2x) -- a uniformly
slower runner shifts every ratio equally and fails nothing, while one
kernel regressing ahead of the pack still trips the gate.  Records
whose *baseline* time is below ``--min-seconds`` are skipped
(throughput records use ``n / throughput`` as their implied wall time
when an ``n`` field is present): a sub-floor smoke timing is
scheduler noise, not a kernel measurement, and cannot be gated
reliably.  Records present on only one side are reported but never
fail the gate (benchmarks may be added or retired).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Tuple

#: Measurement fields: excluded from record identity, compared instead.
MEASUREMENT_KEYS = frozenset({
    "wall_time_s",
    "wall_time_scalar_s",
    "uncached_wall_time_s",
    "repeat_wall_time_s",
    "throughput_per_s",
    "repeat_throughput_per_s",
    "items_per_second",
    "speedup",
    # Wire/transport accounting (bench_distributed_build): run-varying
    # measurements, not identity.
    "bytes_on_wire",
    "raw_bytes",
    "shm_bytes",
    "frames_sent",
    "compression_ratio",
    "fleet_start_s",
    "local_s",
    "best_mp_s",
    "retries",
    # Serving-tier measurements (bench_serving): latency percentiles,
    # achieved/offered rates and queue telemetry all move with the
    # machine, so none of them may enter record identity.
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "p999_ms",
    "offered_per_s",
    "achieved_per_s",
    "closed_loop_per_s",
    "saturation_per_s",
    "speedup_vs_sync",
    "shed",
    "failed",
    "flushes",
    "flushes_size",
    "flushes_deadline",
    "max_queue_depth",
    # Telemetry-overhead measurements (bench_serving obs-overhead
    # records): the ratio is gated by check_obs, the raw times vary
    # with the machine.
    "overhead_ratio",
    "wall_time_disabled_s",
    "wall_time_enabled_s",
    # Durability measurements (bench_recovery): the checkpoint-overhead
    # ratio is gated by check_recovery, the raw times and the
    # whole-run wall time move with the machine.
    "checkpoint_overhead_ratio",
    "wall_time_nostore_s",
    "wall_time_store_s",
    "checkpoint_call_s",
    "total_wall_time_s",
})

#: Throughput fields accepted when a record carries no wall time
#: (higher is better; the gate compares their inverse).
THROUGHPUT_KEYS = ("items_per_second", "throughput_per_s")


def record_identity(benchmark: str, record: dict) -> Tuple:
    """Stable identity of one record: all non-measurement fields."""
    fields = tuple(
        sorted(
            (key, repr(value))
            for key, value in record.items()
            if key not in MEASUREMENT_KEYS
        )
    )
    return (benchmark,) + fields


def record_time(record: dict) -> float:
    """A record's wall time, implied from throughput if necessary.

    Returns seconds (lower is better) or ``nan`` when the record
    carries no comparable measurement.  Throughput-only records use
    ``n / throughput`` when the record names its item count, else
    ``1 / throughput`` (arbitrary but consistent across runs, so the
    ratio is still the slowdown).
    """
    if "wall_time_s" in record:
        return float(record["wall_time_s"])
    for key in THROUGHPUT_KEYS:
        if key in record and float(record[key]) > 0:
            items = float(record.get("n", 1.0))
            return items / float(record[key])
    return float("nan")


def load_records(directory: pathlib.Path) -> Dict[Tuple, float]:
    """Map record identity -> (implied) wall time, over BENCH_*.json."""
    records: Dict[Tuple, float] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        for record in payload.get("records", []):
            seconds = record_time(record)
            if seconds != seconds:  # nan: nothing comparable
                continue
            key = record_identity(payload.get("benchmark", path.stem), record)
            records[key] = seconds
    return records


def check_wire_bytes(directory: pathlib.Path) -> list:
    """Wire-size gate: compressed frames must never exceed raw frames.

    Any fresh record carrying both ``bytes_on_wire`` and ``raw_bytes``
    (the ``wire-codec`` records of the distributed benchmark) fails
    when the compressed framing lost to the raw framing -- a size
    property of the codec, deterministic across machines, so it is
    gated without calibration.
    """
    failures = []
    for path in sorted(directory.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        for record in payload.get("records", []):
            if "bytes_on_wire" not in record or "raw_bytes" not in record:
                continue
            wire = int(record["bytes_on_wire"])
            raw = int(record["raw_bytes"])
            if wire > raw:
                failures.append((payload.get("benchmark", path.stem),
                                 record, wire, raw))
    return failures


def check_obs(
    fresh_dir: pathlib.Path,
    max_overhead: float,
    min_seconds: float,
) -> Tuple[list, int]:
    """Telemetry-overhead gate: enabled vs disabled registry ratio.

    Any fresh record carrying ``overhead_ratio`` (the ``obs-overhead``
    records of the serving benchmark) times the *same* workload twice
    in one process -- telemetry registry disabled, then enabled -- so
    the ratio is self-calibrated and gated without a baseline: it fails
    when enabled instrumentation costs more than ``max_overhead`` on
    the hot path.  A record whose disabled-side wall time is below
    ``min_seconds`` is skipped, same as the main gate: a sub-floor
    timing is scheduler noise, not an overhead measurement.
    """
    failures = []
    compared = 0
    for path in sorted(fresh_dir.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        for record in payload.get("records", []):
            if "overhead_ratio" not in record:
                continue
            if float(record.get("wall_time_disabled_s", 0.0)) < min_seconds:
                continue
            compared += 1
            ratio = float(record["overhead_ratio"])
            if ratio > max_overhead:
                failures.append(
                    (payload.get("benchmark", path.stem), record, ratio)
                )
    return failures, compared


def check_recovery(
    fresh_dir: pathlib.Path,
    max_overhead: float,
    min_seconds: float,
) -> Tuple[list, int]:
    """Durability gate: checkpointing overhead on the ingest hot path.

    Any fresh record carrying ``checkpoint_overhead_ratio`` (the
    ``checkpoint-overhead`` records of the recovery benchmark) times
    the *same* ingest twice in one process -- no store, then the
    write-ahead log attached -- so the ratio is self-calibrated and
    gated without a baseline: it fails when durable logging costs more
    than ``max_overhead`` on the hot path (the <=10% acceptance
    criterion).  Records whose no-store wall time is below
    ``min_seconds`` are skipped, same as the other gates.
    """
    failures = []
    compared = 0
    for path in sorted(fresh_dir.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        for record in payload.get("records", []):
            if "checkpoint_overhead_ratio" not in record:
                continue
            if float(record.get("wall_time_nostore_s", 0.0)) < min_seconds:
                continue
            compared += 1
            ratio = float(record["checkpoint_overhead_ratio"])
            if ratio > max_overhead:
                failures.append(
                    (payload.get("benchmark", path.stem), record, ratio)
                )
    return failures, compared


#: Fields identifying one open-loop sweep point across machines (the
#: offered rate itself is derived from the machine's measured
#: throughput, so only its *factor* is stable identity).
_SERVING_IDENTITY = ("kernel", "mode", "rate_factor", "batch_size")


def _load_serving(directory: pathlib.Path) -> Tuple[dict, dict]:
    """Open-loop sweep records and saturation rates from BENCH_serving."""
    sweeps: dict = {}
    saturations: dict = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        if payload.get("benchmark") != "serving":
            continue
        for record in payload.get("records", []):
            if record.get("mode") == "open-loop":
                key = tuple(
                    (field, repr(record.get(field)))
                    for field in _SERVING_IDENTITY
                )
                sweeps[key] = record
            elif record.get("mode") == "saturation":
                saturations[record.get("kernel")] = float(
                    record.get("saturation_per_s", 0.0)
                )
    return sweeps, saturations


def check_serving(
    baseline_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    max_ratio: float,
) -> Tuple[list, int]:
    """Serving gate: calibrated p95 regressions + saturation collapse.

    The generic wall-time gate cannot judge the open-loop records (a
    latency percentile is not a wall time, and the per-record query
    counts follow the machine's offered rates), so they get their own
    comparison: sweep points are matched by (kernel, mode,
    rate_factor, batch_size), the median p95 ratio calibrates the
    machine-speed shift exactly like the main gate, and a point fails
    on a calibrated p95 regression beyond ``max_ratio``.  Saturation
    throughput additionally fails on any *collapse*: a calibrated drop
    beyond ``max_ratio`` (or a zero fresh rate), however the latency
    looks.
    """
    base_sweeps, base_sat = _load_serving(baseline_dir)
    fresh_sweeps, fresh_sat = _load_serving(fresh_dir)
    if not base_sweeps:
        return [], 0
    compared = []
    for key, base in sorted(base_sweeps.items()):
        fresh = fresh_sweeps.get(key)
        if fresh is None:
            continue
        base_p95 = float(base.get("p95_ms", float("nan")))
        fresh_p95 = float(fresh.get("p95_ms", float("nan")))
        if not (base_p95 > 0) or fresh_p95 != fresh_p95:
            continue
        compared.append((key, base_p95, fresh_p95, fresh_p95 / base_p95))
    calibration = 1.0
    if compared:
        ratios = sorted(ratio for _k, _b, _f, ratio in compared)
        calibration = ratios[len(ratios) // 2]
    failures = []
    for key, base_p95, fresh_p95, ratio in compared:
        adjusted = ratio / max(calibration, 1e-12)
        if adjusted > max_ratio:
            failures.append(
                (f"{dict(key)}: p95 {base_p95:.2f}ms -> {fresh_p95:.2f}ms"
                 f" ({adjusted:.2f}x calibrated)")
            )
    for kernel, base_rate in sorted(base_sat.items()):
        fresh_rate = fresh_sat.get(kernel)
        if fresh_rate is None or base_rate <= 0:
            continue
        # Throughput scales inversely with machine speed: reuse the
        # latency calibration for the drop.
        drop = base_rate / max(fresh_rate, 1e-9)
        if fresh_rate <= 0 or drop / max(calibration, 1e-12) > max_ratio:
            failures.append(
                (f"{kernel}: saturation collapsed "
                 f"{base_rate:,.0f} -> {fresh_rate:,.0f} q/s")
            )
    return failures, len(compared)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="directory of committed baseline BENCH_*.json")
    parser.add_argument("--fresh", required=True, type=pathlib.Path,
                        help="directory of freshly generated BENCH_*.json")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when the calibrated slowdown exceeds this")
    parser.add_argument("--min-seconds", type=float, default=0.02,
                        help="skip records whose baseline is below this")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare raw ratios (same-machine baselines)")
    parser.add_argument("--max-obs-overhead", type=float, default=1.05,
                        help="fail when enabled-telemetry overhead on the "
                             "hot path exceeds this ratio")
    parser.add_argument("--max-checkpoint-overhead", type=float,
                        default=1.10,
                        help="fail when durable checkpointing overhead on "
                             "the ingest hot path exceeds this ratio")
    args = parser.parse_args(argv)

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)
    if not baseline:
        print(f"no baseline records under {args.baseline}; nothing to gate")
        return 0
    if not fresh:
        print(f"ERROR: no fresh records under {args.fresh}")
        return 2

    compared = []
    skipped = 0
    for key, base_time in sorted(baseline.items()):
        if key not in fresh:
            print(f"  [only-baseline] {key[0]}: {dict(key[1:])}")
            continue
        new_time = fresh[key]
        if base_time < args.min_seconds:
            # A sub-floor baseline cannot be gated: its ratio is
            # scheduler noise, not a kernel measurement.
            skipped += 1
            continue
        compared.append((key, base_time, new_time,
                         new_time / max(base_time, 1e-12)))
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  [only-fresh] {key[0]}: {dict(key[1:])}")

    # Machine-speed calibration: the median ratio is the fleet-wide
    # shift between the baseline machine and this one; regressions are
    # judged relative to it.
    calibration = 1.0
    if compared and not args.no_calibrate:
        ratios = sorted(ratio for _k, _b, _n, ratio in compared)
        calibration = ratios[len(ratios) // 2]
    failures = []
    for key, base_time, new_time, ratio in compared:
        adjusted = ratio / max(calibration, 1e-12)
        status = "FAIL" if adjusted > args.max_ratio else "ok"
        print(
            f"  [{status}] {key[0]} {dict(key[1:])}: "
            f"{base_time:.4f}s -> {new_time:.4f}s "
            f"({ratio:.2f}x raw, {adjusted:.2f}x calibrated)"
        )
        if adjusted > args.max_ratio:
            failures.append((key, adjusted))

    wire_failures = check_wire_bytes(args.fresh)
    serving_failures, serving_compared = check_serving(
        args.baseline, args.fresh, args.max_ratio
    )
    obs_failures, obs_compared = check_obs(
        args.fresh, args.max_obs_overhead, args.min_seconds
    )
    recovery_failures, recovery_compared = check_recovery(
        args.fresh, args.max_checkpoint_overhead, args.min_seconds
    )
    print(
        f"compared {len(compared)} records (calibration {calibration:.2f}x),"
        f" skipped {skipped} below {args.min_seconds}s,"
        f" {serving_compared} serving sweep points,"
        f" {obs_compared} telemetry-overhead records,"
        f" {recovery_compared} checkpoint-overhead records,"
        f" {len(failures)} regressions,"
        f" {len(serving_failures)} serving violations,"
        f" {len(wire_failures)} wire-size violations,"
        f" {len(obs_failures)} telemetry-overhead violations,"
        f" {len(recovery_failures)} checkpoint-overhead violations"
    )
    if recovery_failures:
        print(
            "CHECKPOINT-OVERHEAD VIOLATIONS "
            f"(store/no-store > {args.max_checkpoint_overhead:.2f}x):"
        )
        for benchmark, record, ratio in recovery_failures:
            print(f"  {benchmark} {record.get('backend')}: x{ratio:.3f} "
                  f"(no store "
                  f"{record.get('wall_time_nostore_s', 0.0):.4f}s -> "
                  f"store {record.get('wall_time_store_s', 0.0):.4f}s)")
    if obs_failures:
        print(
            "TELEMETRY-OVERHEAD VIOLATIONS "
            f"(enabled/disabled > {args.max_obs_overhead:.2f}x):"
        )
        for benchmark, record, ratio in obs_failures:
            print(f"  {benchmark} {record.get('kernel')}: x{ratio:.3f} "
                  f"(disabled {record.get('wall_time_disabled_s', 0.0):.4f}s"
                  f" -> enabled "
                  f"{record.get('wall_time_enabled_s', 0.0):.4f}s)")
    if serving_failures:
        print("SERVING VIOLATIONS (p95 regression / saturation collapse):")
        for line in serving_failures:
            print(f"  {line}")
    if wire_failures:
        print("WIRE-SIZE VIOLATIONS (compressed > raw):")
        for benchmark, record, wire, raw in wire_failures:
            print(f"  {benchmark} {record.get('method')}/"
                  f"{record.get('mode')}: {wire} > {raw} bytes")
    if failures:
        print("REGRESSIONS (> {:.1f}x calibrated slowdown):".format(
            args.max_ratio))
        for key, adjusted in failures:
            print(f"  {key[0]} {dict(key[1:])}: {adjusted:.2f}x")
    return 1 if (
        failures or wire_failures or serving_failures or obs_failures
        or recovery_failures
    ) else 0


if __name__ == "__main__":
    sys.exit(main())
