"""Figure 2(b): accuracy vs query weight on network data.

Uniform-weight queries (10 ranges each) at a fixed summary size; the x
axis sweeps the fraction of the total weight a query covers.  Expected
shape: sampling methods beat wavelet/qdigest; the error lines have a
shallow gradient, i.e. *relative* error improves as queries grow; for
heavier queries aware is about half of obliv.
"""

from conftest import SMOKE, emit
from repro.experiments.figures import fig2b
from repro.experiments.report import render_comparison, render_figure

PARAMS = dict(
    size=2700,
    ranges_per_query=10,
    cell_counts=(2000, 600, 200, 60, 20),
    n_queries=30,
    repeats=3,
)
if SMOKE:
    PARAMS = dict(
        size=500,
        ranges_per_query=3,
        cell_counts=(400, 150, 60, 30, 20),
        n_queries=8,
        repeats=2,
    )


def test_fig2b(benchmark, network_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig2b(network_data, **PARAMS),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    text += "\n" + render_comparison(result, baseline="obliv", target="aware")
    emit(results_dir, "fig2b", text)
    assert set(result.series) == {"aware", "obliv", "wavelet", "qdigest"}
    for series in result.series.values():
        assert len(series) == 5
