"""Lemma 4 / Section 1.1: multi-range error scaling.

For a query spanning L disjoint ranges, a sample's error grows like
sqrt(L) while a deterministic summary's error grows linearly in L.  We
fix the per-range weight (cells of an equal-weight partition) and sweep
L, then fit log-log slopes; the sample's slope should be well below the
deterministic summary's.
"""

import math

import numpy as np

from conftest import emit, perf_assert
from repro.datagen.queries import uniform_weight_queries
from repro.experiments.harness import build_summary, ground_truths
from repro.experiments.report import FigureResult, render_figure


def _loglog_slope(points):
    xs = np.log([x for x, _ in points])
    ys = np.log([max(y, 1e-12) for _, y in points])
    slope, _intercept = np.polyfit(xs, ys, 1)
    return float(slope)


def test_multirange_error_scaling(benchmark, network_data, results_dir):
    n_cells = 512  # fixed per-range weight ~ W/512
    range_counts = (1, 2, 4, 8, 16, 32)

    def run():
        result = FigureResult(
            "Lemma 4 validation",
            "error vs ranges per query (fixed per-range weight)",
            "ranges per query",
            "mean absolute error",
        )
        rng = np.random.default_rng(3)
        summaries = {
            name: build_summary(
                name, network_data, 2000, np.random.default_rng(7)
            )[0]
            for name in ("aware", "obliv", "qdigest")
        }
        for n_ranges in range_counts:
            queries = uniform_weight_queries(
                network_data, 40, n_ranges, n_cells, rng=rng
            )
            truths = ground_truths(network_data, queries)
            for name, summary in summaries.items():
                estimates = np.asarray(summary.query_many(queries))
                err = float(
                    np.abs(estimates - truths).mean()
                    / network_data.total_weight
                )
                result.add_point(name, n_ranges, err)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    slopes = {
        name: _loglog_slope(points)
        for name, points in result.series.items()
    }
    text = render_figure(result)
    text += "\nlog-log slopes (samples ~0.5, deterministic ~1.0): " + ", ".join(
        f"{name}={slope:.2f}" for name, slope in sorted(slopes.items())
    )
    emit(results_dir, "multirange_scaling", text)
    # Samples scale ~sqrt(L); the deterministic summary scales ~L.
    perf_assert(slopes["aware"] < slopes["qdigest"])
    perf_assert(slopes["obliv"] < slopes["qdigest"])
