"""Scalar vs batched query serving: the PR-5 vectorized answer paths.

A 10k-query battery of random boxes over a one-million-key 1-D domain
is answered by every summary family twice: through the historical
per-query loop (``query_multi`` per query) and through the vectorized
``query_many`` kernels (query-plan compilation, batched dyadic
decomposition, stacked basis sums, prefix-sum leaf folds, sort-based
sweeps).  Both the cold first battery (plan + sort orders paid) and the
steady-state repeat battery (everything cached) are recorded in
``BENCH_query.json``; sketch/wavelet/qdigest must clear 5x even cold.

The second half times the :class:`~repro.distributed.frontend.
QueryFrontend` serving the same battery one query at a time
(``batch_size=1``) versus micro-batched (``submit``/``flush`` at
``batch_size=256``, one kernel call per flush per method).

Smoke mode shrinks the domain and battery and repeats the timed loops
so the records clear the regression gate's noise floor.
"""

import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro.core.types import Dataset
from repro.distributed.frontend import QueryFrontend
from repro.engine.registry import build
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

DOMAIN_BITS = 20  # one-million-key domain
N_ITEMS = 300_000
N_QUERIES = 10_000
SIZE = 3000
BATCH = 256
#: Timed-loop repetitions and best-of trials (see bench_build_kernels).
REPEATS = 1
TRIALS = 2
if SMOKE:
    DOMAIN_BITS = 12
    N_ITEMS = 3000
    N_QUERIES = 400
    SIZE = 200
    BATCH = 64
    REPEATS = 10
    TRIALS = 3

#: Families with a dedicated batched kernel in this PR; the ISSUE's 5x
#: acceptance gate applies to the first three.
GATED = ("sketch", "wavelet", "qdigest")
METHODS = GATED + ("qdigest-stream", "obliv", "exact")


def _battery(rng, size, n_queries):
    """Random single-box interval queries, up to ~10% of the domain."""
    lows = rng.integers(0, size, n_queries)
    spans = rng.integers(0, max(1, size // 10), n_queries)
    highs = np.minimum(lows + spans, size - 1)
    return [Box((int(lo),), (int(hi),)) for lo, hi in zip(lows, highs)]


def _timed(fn):
    """Best-of-``TRIALS`` wall time of ``REPEATS`` calls; returns last."""
    best = float("inf")
    for _trial in range(TRIALS):
        start = time.perf_counter()
        for _repeat in range(REPEATS):
            out = fn()
        best = min(best, time.perf_counter() - start)
    return out, best


class _StaticSupplier:
    """Frozen summaries behind the snapshot-supplier protocol."""

    def __init__(self, summaries):
        self._summaries = summaries
        self.version = 0

    def snapshot(self, method):
        return self._summaries[method]

    @property
    def methods(self):
        return list(self._summaries)


def test_query_serving(results_dir):
    rng = np.random.default_rng(7)
    size = 1 << DOMAIN_BITS
    domain = ProductDomain([OrderedDomain(size)])
    coords = rng.integers(0, size, size=(N_ITEMS, 1))
    weights = 1.0 + rng.pareto(1.2, N_ITEMS)
    data = Dataset(coords=coords, weights=weights, domain=domain)
    queries = _battery(rng, size, N_QUERIES)
    tol = 1e-9 * float(weights.sum())

    summaries = {
        method: build(method, data, SIZE, np.random.default_rng(17))
        for method in METHODS
    }
    records = []
    lines = ["== Query serving: scalar loop vs batched kernels =="]
    for method in METHODS:
        summary = summaries[method]
        ref, scalar_time = _timed(
            lambda: [summary.query_multi(query) for query in queries]
        )
        # Cold battery: pays the query-plan compile and (where the
        # family uses one) the sort orders / stacked structures.
        start = time.perf_counter()
        batched = summary.query_many(queries)
        cold = time.perf_counter() - start
        # Steady state: plan, sort orders and stacked leaves cached.
        batched_repeat, repeat_time = _timed(
            lambda: summary.query_many(queries)
        )
        np.testing.assert_allclose(batched, ref, rtol=1e-9, atol=tol)
        np.testing.assert_allclose(batched_repeat, ref, rtol=1e-9, atol=tol)
        speedup = scalar_time / max(cold * REPEATS, 1e-12)
        records.append({
            "kernel": f"serve:{method}",
            "n": N_QUERIES,
            "summary_size": SIZE,
            "domain_bits": DOMAIN_BITS,
            "repeats": REPEATS,
            "wall_time_s": repeat_time,
            "uncached_wall_time_s": cold,
            "wall_time_scalar_s": scalar_time,
            "speedup": speedup,
            "throughput_per_s": REPEATS * N_QUERIES / max(repeat_time, 1e-12),
        })
        lines.append(
            f"serve:{method:<15} scalar {scalar_time:8.3f}s -> "
            f"cold {cold:7.4f}s, repeat {repeat_time:7.4f}s  "
            f"({speedup:.1f}x cold)"
        )
        if method in GATED:
            perf_assert(
                speedup >= 5.0,
                f"{method} batched speedup {speedup:.1f}x < 5x",
            )

    # ------------------------------------------------------------------
    # Interval-table store: flat kernel vs retained pointer path vs
    # SQLite pushdown, all three bit-identical on the same battery.
    # `serve:qdigest-stream` above already records the (default) flat
    # path; the two extra records pin the retained baseline and the
    # out-of-core backend so check_regression gates all of them.
    # ------------------------------------------------------------------
    lines.append("== Interval store: flat vs retained vs pushdown ==")
    digest = summaries["qdigest-stream"]
    flat_ans, flat_repeat = _timed(lambda: digest.query_many(queries))
    digest.flat_kernel = False
    start = time.perf_counter()
    retained_cold_ans = digest.query_many(queries)
    retained_cold = time.perf_counter() - start
    retained_ans, retained_repeat = _timed(
        lambda: digest.query_many(queries)
    )
    digest.flat_kernel = True
    assert flat_ans == retained_ans, "flat kernel diverged (bitwise)"
    assert retained_cold_ans == retained_ans
    digest.pushdown_budget = 0  # force the on-disk path
    start = time.perf_counter()
    push_cold_ans = digest.query_many(queries)
    push_cold = time.perf_counter() - start
    push_ans, push_repeat = _timed(lambda: digest.query_many(queries))
    del digest.pushdown_budget
    assert push_ans == retained_ans, "pushdown diverged (bitwise)"
    assert push_cold_ans == retained_ans
    interval_speedup = retained_repeat / max(flat_repeat, 1e-12)
    records.append({
        "kernel": "serve:qdigest-stream:retained",
        "n": N_QUERIES,
        "summary_size": SIZE,
        "domain_bits": DOMAIN_BITS,
        "repeats": REPEATS,
        "wall_time_s": retained_repeat,
        "uncached_wall_time_s": retained_cold,
        "speedup": interval_speedup,
        "throughput_per_s": REPEATS * N_QUERIES / max(retained_repeat,
                                                      1e-12),
    })
    records.append({
        "kernel": "pushdown:qdigest-stream",
        "n": N_QUERIES,
        "summary_size": SIZE,
        "domain_bits": DOMAIN_BITS,
        "repeats": REPEATS,
        "wall_time_s": push_repeat,
        "uncached_wall_time_s": push_cold,
        "throughput_per_s": REPEATS * N_QUERIES / max(push_repeat, 1e-12),
    })
    lines.append(
        f"interval:qdigest-stream retained {retained_repeat:8.4f}s -> "
        f"flat {flat_repeat:7.4f}s ({interval_speedup:.1f}x), "
        f"pushdown {push_repeat:7.4f}s"
    )
    perf_assert(
        interval_speedup >= 5.0,
        f"flat interval kernel {interval_speedup:.1f}x < 5x over retained",
    )

    lines.append("== Frontend: one-at-a-time vs micro-batched ==")
    for method in GATED:
        supplier = _StaticSupplier(summaries)
        one_at_a_time = QueryFrontend(supplier)
        ref, off_time = _timed(
            lambda: [one_at_a_time.query(method, query) for query in queries]
        )
        micro = QueryFrontend(supplier, batch_size=BATCH)

        def _serve_batched():
            handles = [micro.submit(method, query) for query in queries]
            micro.flush()
            return [handle.result() for handle in handles]

        batched, on_time = _timed(_serve_batched)
        np.testing.assert_allclose(batched, ref, rtol=1e-9, atol=tol)
        speedup = off_time / max(on_time, 1e-12)
        records.append({
            "kernel": f"frontend:{method}",
            "n": N_QUERIES,
            "batch_size": BATCH,
            "domain_bits": DOMAIN_BITS,
            "repeats": REPEATS,
            "wall_time_s": on_time,
            "wall_time_scalar_s": off_time,
            "speedup": speedup,
            "throughput_per_s": REPEATS * N_QUERIES / max(on_time, 1e-12),
        })
        lines.append(
            f"frontend:{method:<12} off {off_time:8.3f}s -> "
            f"on(B={BATCH}) {on_time:7.4f}s  ({speedup:.1f}x)"
        )

    emit(results_dir, "query_serving", "\n".join(lines))
    emit_json(results_dir, "query", records)
