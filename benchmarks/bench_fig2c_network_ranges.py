"""Figure 2(c): accuracy vs ranges-per-query at fixed query weight.

Total query weight is held at ~0.12 of the data while the number of
ranges per query varies.  Expected shape: obliv is flat (to a sample
all these queries are similar-weight subsets); aware is several times
better at few ranges and converges to obliv as ranges shrink (40+
ranges: minimal difference).
"""

from conftest import SMOKE, emit, perf_assert
from repro.experiments.figures import fig2c
from repro.experiments.report import render_figure

PARAMS = dict(
    size=2700,
    range_counts=(1, 2, 5, 10, 25, 50),
    target_weight=0.12,
    n_queries=30,
    repeats=3,
)
if SMOKE:
    PARAMS = dict(
        size=500,
        range_counts=(1, 2, 5, 10, 25, 50),
        target_weight=0.12,
        n_queries=8,
        repeats=2,
    )


def test_fig2c(benchmark, network_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig2c(network_data, **PARAMS),
        rounds=1,
        iterations=1,
    )
    aware = dict(result.series["aware"])
    obliv = dict(result.series["obliv"])
    gap_small = obliv[1] / max(aware[1], 1e-12)
    gap_large = obliv[50] / max(aware[50], 1e-12)
    text = render_figure(result)
    text += (
        f"\nobliv/aware gap: {gap_small:.2f}x at 1 range, "
        f"{gap_large:.2f}x at 50 ranges"
    )
    emit(results_dir, "fig2c", text)
    assert len(aware) == 6
    # The aware advantage shrinks as the number of ranges grows.
    perf_assert(gap_small > gap_large * 0.8)
