"""Validation of the paper's discrepancy theorems at benchmark scale.

* Section 3 / Figure 1: hierarchy-aware samples have max node
  discrepancy Delta < 1 -- verified exactly over every node.
* Theorem 1(i): order-aware samples have max interval discrepancy
  Delta < 2 -- verified exactly over every interval.
* Section 4: product-aware samples have box discrepancy far below the
  structure-oblivious O(sqrt(p(R))), at the O(d s^((d-1)/d)) scale.
"""

import numpy as np

from conftest import emit, perf_assert
from repro.aware.hierarchy_sampler import hierarchy_aware_sample
from repro.aware.order_sampler import order_aware_sample
from repro.aware.product_sampler import product_aware_sample
from repro.core.discrepancy import (
    box_discrepancy,
    max_hierarchy_discrepancy,
    max_interval_discrepancy,
)
from repro.core.ipps import ipps_probabilities
from repro.core.varopt import varopt_sample
from repro.experiments.report import FigureResult, render_figure
from repro.structures.hierarchy import BitHierarchy
from repro.structures.ranges import Box


def test_hierarchy_discrepancy_below_one(benchmark, results_dir):
    h = BitHierarchy(20)
    rng0 = np.random.default_rng(0)
    n = 5000
    keys = rng0.choice(h.num_leaves, size=n, replace=False)
    weights = 1.0 + rng0.pareto(1.2, size=n)

    def run():
        worst = 0.0
        for t in range(10):
            included, tau, probs = hierarchy_aware_sample(
                keys, weights, 400, h, np.random.default_rng(t)
            )
            mask = np.zeros(n, bool)
            mask[included] = True
            worst = max(
                worst, max_hierarchy_discrepancy(h, keys, probs, mask)
            )
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "validation_hierarchy",
        f"max hierarchy-node discrepancy over 10 samples: {worst:.6f} "
        f"(theorem: < 1)",
    )
    assert worst < 1.0 + 1e-9


def test_order_discrepancy_below_two(benchmark, results_dir):
    rng0 = np.random.default_rng(1)
    n = 5000
    keys = rng0.choice(10**7, size=n, replace=False)
    weights = 1.0 + rng0.pareto(1.2, size=n)

    def run():
        worst = 0.0
        for t in range(10):
            included, tau, probs = order_aware_sample(
                keys, weights, 400, np.random.default_rng(t)
            )
            mask = np.zeros(n, bool)
            mask[included] = True
            worst = max(worst, max_interval_discrepancy(keys, probs, mask))
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "validation_order",
        f"max interval discrepancy over 10 samples: {worst:.6f} "
        f"(Theorem 1: < 2)",
    )
    assert worst < 2.0 + 1e-9


def test_product_discrepancy_beats_oblivious(benchmark, results_dir):
    rng0 = np.random.default_rng(2)
    n = 4000
    size = 1 << 16
    coords = rng0.integers(0, size, size=(n, 2))
    coords = np.unique(coords, axis=0)
    n = coords.shape[0]
    weights = 1.0 + rng0.pareto(1.2, size=n)
    boxes = []
    for _ in range(100):
        x1, x2 = sorted(rng0.integers(0, size, size=2).tolist())
        y1, y2 = sorted(rng0.integers(0, size, size=2).tolist())
        boxes.append(Box((x1, y1), (x2, y2)))

    def run():
        result = FigureResult(
            "Section 4 validation",
            "mean box discrepancy, aware vs oblivious",
            "sample size",
            "mean |count - expectation| over 100 boxes",
        )
        for s in (100, 400, 1600):
            probs, tau = ipps_probabilities(weights, s)
            for name in ("aware", "obliv"):
                total = 0.0
                trials = 5
                for t in range(trials):
                    if name == "aware":
                        included, _, _ = product_aware_sample(
                            coords, weights, s, np.random.default_rng(t)
                        )
                    else:
                        included, _ = varopt_sample(
                            weights, s, np.random.default_rng(t)
                        )
                    mask = np.zeros(n, bool)
                    mask[included] = True
                    total += np.mean(
                        [
                            box_discrepancy(coords, probs, mask, b)
                            for b in boxes
                        ]
                    )
                result.add_point(name, s, total / trials)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_figure(result)
    emit(results_dir, "validation_product", text)
    aware = dict(result.series["aware"])
    obliv = dict(result.series["obliv"])
    # Aware discrepancy is below oblivious at every size (and the gap
    # should widen with s: sqrt(s) vs s^((d-1)/d)/sqrt(p) scaling).
    for s in aware:
        perf_assert(aware[s] < obliv[s])
