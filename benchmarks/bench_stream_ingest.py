"""Streaming subsystem benchmarks: ingest throughput + live queries.

Three acceptance measurements for the stream layer:

* **ingest**: micro-batch ingestion of ~1e6 updates through the
  engine (VarOpt reservoir + exact store) -- reported as updates/sec,
  against the naive alternative of rebuilding a batch summary from the
  accumulated data at every dashboard refresh.
* **live query**: a 1k-query battery answered live mid-stream.
* **sort-order cache**: repeated batteries against an unchanged
  snapshot must beat the uncached path (the per-snapshot sort orders
  are reused; only the per-battery sweep remains).
"""

import time

import numpy as np

from conftest import SMOKE, emit, perf_assert
from repro.datagen.network import (
    NetworkConfig,
    network_domain,
    stream_network_flows,
)
from repro.datagen.queries import uniform_area_queries
from repro.engine.registry import build as registry_build
from repro.stream import StreamEngine
from repro.structures.ranges import batch_query_sums

#: ~1e6 streamed updates at full scale (acceptance criterion).
STREAM_CONFIG = NetworkConfig(
    n_pairs=20_000 if SMOKE else 1_000_000,
    n_sources=2_000 if SMOKE else 20_000,
    n_dests=1_500 if SMOKE else 16_000,
)
BATCH_SIZE = 2_000 if SMOKE else 10_000
SAMPLE_SIZE = 400 if SMOKE else 2_000
N_QUERIES = 200 if SMOKE else 1_000
REFRESHES = 4


def _ingest_benchmark():
    domain = network_domain(STREAM_CONFIG)
    engine = StreamEngine(domain, ["obliv", "exact"], SAMPLE_SIZE, seed=7)
    source = stream_network_flows(
        STREAM_CONFIG, seed=7, batch_size=BATCH_SIZE
    )
    start = time.perf_counter()
    ingested = engine.ingest(source)
    ingest_secs = time.perf_counter() - start
    return engine, ingested, ingest_secs


def _live_query_benchmark(engine):
    rng = np.random.default_rng(5)
    domain = network_domain(STREAM_CONFIG)
    queries = uniform_area_queries(domain, N_QUERIES, 3,
                                   max_fraction=0.1, rng=rng)
    start = time.perf_counter()
    answers = engine.query_many_now(queries)
    first_secs = time.perf_counter() - start
    start = time.perf_counter()
    engine.query_many_now(queries)
    repeat_secs = time.perf_counter() - start
    exact = np.asarray(answers["exact"])
    obliv = np.asarray(answers["obliv"])
    scale = max(1.0, float(np.abs(exact).max()))
    return {
        "queries": queries,
        "first_secs": first_secs,
        "repeat_secs": repeat_secs,
        "obliv_rel_err": float(np.abs(obliv - exact).mean()) / scale,
    }


def _rebuild_baseline(engine):
    """Cost of the pre-stream workflow: rebuild at every refresh.

    Rebuilds a monolithic VarOpt sample of the *accumulated* data at
    each of ``REFRESHES`` evenly spaced refresh points -- what serving
    live totals cost before the incremental engine.
    """
    snap = engine.snapshot("exact")
    coords, weights = snap.coords, snap.weights
    n = weights.shape[0]
    from repro.core.types import Dataset

    total = 0.0
    for refresh in range(1, REFRESHES + 1):
        upto = n * refresh // REFRESHES
        prefix = Dataset(
            coords=coords[:upto],
            weights=weights[:upto],
            domain=network_domain(STREAM_CONFIG),
        )
        start = time.perf_counter()
        registry_build("obliv", prefix, SAMPLE_SIZE,
                       np.random.default_rng(refresh))
        total += time.perf_counter() - start
    return total


def _cache_benchmark(engine, rounds=5):
    """Repeated batteries: cached sort orders vs re-sorting each time.

    Measured against the engine's *exact* snapshot (the full streamed
    data): re-sorting a million rows per battery is exactly the cost
    the per-snapshot sort-order cache removes, leaving only the sweep.
    """
    rng = np.random.default_rng(11)
    queries = uniform_area_queries(
        network_domain(STREAM_CONFIG), max(20, N_QUERIES // 10), 3,
        max_fraction=0.1, rng=rng,
    )
    exact = engine.snapshot("exact")
    coords, values = exact.coords, exact.weights
    cached = exact.query_many(queries)  # warm the per-snapshot cache
    start = time.perf_counter()
    for _ in range(rounds):
        cached = exact.query_many(queries)
    cached_secs = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        uncached = batch_query_sums(queries, coords, values)
    uncached_secs = time.perf_counter() - start
    diffs = np.abs(np.asarray(cached) - uncached)
    return {
        "rounds": rounds,
        "n_queries": len(queries),
        "cached_secs": cached_secs,
        "uncached_secs": uncached_secs,
        "speedup": uncached_secs / max(cached_secs, 1e-12),
        "max_diff": float(diffs.max()),
    }


def test_stream_ingest(results_dir):
    engine, ingested, ingest_secs = _ingest_benchmark()
    live = _live_query_benchmark(engine)
    rebuild_secs = _rebuild_baseline(engine)
    cache = _cache_benchmark(engine)
    lines = [
        f"Stream: micro-batch ingest ({ingested:,} updates, "
        f"batch={BATCH_SIZE}, methods=obliv+exact)",
        f"  ingest           : {ingest_secs:9.2f} s "
        f"({ingested / max(ingest_secs, 1e-12):,.0f} updates/s)",
        f"  {REFRESHES}-refresh rebuild: {rebuild_secs:9.2f} s "
        "(batch rebuild of accumulated data per refresh, obliv only)",
        "",
        f"Stream: live {N_QUERIES}-query battery mid-stream",
        f"  first battery    : {live['first_secs'] * 1e3:9.1f} ms "
        "(folds + sorts + sweep)",
        f"  repeat battery   : {live['repeat_secs'] * 1e3:9.1f} ms "
        "(cached fold + cached sort orders)",
        f"  obliv vs exact   : {live['obliv_rel_err']:.5f} mean rel err",
        "",
        f"Stream: sort-order cache, {cache['rounds']} repeated "
        f"{cache['n_queries']}-query batteries on the exact snapshot",
        f"  cached           : {cache['cached_secs'] * 1e3:9.1f} ms",
        f"  uncached         : {cache['uncached_secs'] * 1e3:9.1f} ms",
        f"  speedup          : {cache['speedup']:9.2f}x",
        f"  max |diff|       : {cache['max_diff']:.3g}",
    ]
    emit(results_dir, "stream_ingest", "\n".join(lines))
    # Identical answers with and without the cache -- always.
    assert cache["max_diff"] < 1e-9
    # The reservoir's live estimates track ground truth.
    perf_assert(live["obliv_rel_err"] < 0.05,
                f"rel err {live['obliv_rel_err']}")
    # Cached sort orders beat re-sorting on repeated batteries
    # (the ROADMAP caching acceptance criterion).
    perf_assert(cache["speedup"] > 1.5, f"speedup {cache['speedup']}")
    # Live queries answer without a full rebuild: repeated batteries
    # must be far cheaper than one batch rebuild of the stream.
    perf_assert(live["repeat_secs"] < rebuild_secs,
                f"{live['repeat_secs']} vs {rebuild_secs}")
