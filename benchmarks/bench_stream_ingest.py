"""Streaming subsystem benchmarks: ingest throughput + live queries.

Three acceptance measurements for the stream layer:

* **ingest**: micro-batch ingestion of ~1e6 updates through the
  engine (VarOpt reservoir + exact store) -- reported as updates/sec,
  against the naive alternative of rebuilding a batch summary from the
  accumulated data at every dashboard refresh.
* **live query**: a 1k-query battery answered live mid-stream.
* **sort-order cache**: repeated batteries against an unchanged
  snapshot must beat the uncached path (the per-snapshot sort orders
  are reused; only the per-battery sweep remains).
"""

import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro.core.varopt import StreamVarOpt
from repro.datagen.network import (
    NetworkConfig,
    network_domain,
    stream_network_flows,
)
from repro.datagen.queries import uniform_area_queries
from repro.engine.registry import build as registry_build
from repro.stream import StreamEngine
from repro.structures.ranges import batch_query_sums

#: ~1e6 streamed updates at full scale (acceptance criterion).
STREAM_CONFIG = NetworkConfig(
    n_pairs=20_000 if SMOKE else 1_000_000,
    n_sources=2_000 if SMOKE else 20_000,
    n_dests=1_500 if SMOKE else 16_000,
)
BATCH_SIZE = 2_000 if SMOKE else 10_000
SAMPLE_SIZE = 400 if SMOKE else 2_000
N_QUERIES = 200 if SMOKE else 1_000
REFRESHES = 4


def _ingest_benchmark():
    domain = network_domain(STREAM_CONFIG)
    engine = StreamEngine(domain, ["obliv", "exact"], SAMPLE_SIZE, seed=7)
    source = stream_network_flows(
        STREAM_CONFIG, seed=7, batch_size=BATCH_SIZE
    )
    start = time.perf_counter()
    ingested = engine.ingest(source)
    ingest_secs = time.perf_counter() - start
    return engine, ingested, ingest_secs


def _live_query_benchmark(engine):
    rng = np.random.default_rng(5)
    domain = network_domain(STREAM_CONFIG)
    queries = uniform_area_queries(domain, N_QUERIES, 3,
                                   max_fraction=0.1, rng=rng)
    start = time.perf_counter()
    answers = engine.query_many_now(queries)
    first_secs = time.perf_counter() - start
    start = time.perf_counter()
    engine.query_many_now(queries)
    repeat_secs = time.perf_counter() - start
    exact = np.asarray(answers["exact"])
    obliv = np.asarray(answers["obliv"])
    scale = max(1.0, float(np.abs(exact).max()))
    return {
        "queries": queries,
        "first_secs": first_secs,
        "repeat_secs": repeat_secs,
        "obliv_rel_err": float(np.abs(obliv - exact).mean()) / scale,
    }


def _rebuild_baseline(engine):
    """Cost of the pre-stream workflow: rebuild at every refresh.

    Rebuilds a monolithic VarOpt sample of the *accumulated* data at
    each of ``REFRESHES`` evenly spaced refresh points -- what serving
    live totals cost before the incremental engine.
    """
    snap = engine.snapshot("exact")
    coords, weights = snap.coords, snap.weights
    n = weights.shape[0]
    from repro.core.types import Dataset

    total = 0.0
    for refresh in range(1, REFRESHES + 1):
        upto = n * refresh // REFRESHES
        prefix = Dataset(
            coords=coords[:upto],
            weights=weights[:upto],
            domain=network_domain(STREAM_CONFIG),
        )
        start = time.perf_counter()
        registry_build("obliv", prefix, SAMPLE_SIZE,
                       np.random.default_rng(refresh))
        total += time.perf_counter() - start
    return total


def _bulk_feed_benchmark(engine):
    """Vectorized ``StreamVarOpt.update`` vs the per-item feed loop.

    Replays the streamed rows into two fresh reservoirs: one through
    the historical per-item ``feed_many`` path (the ~320k updates/s
    Python-loop bound the ROADMAP flags), one through the vectorized
    bulk path ``update`` now uses.  VarOpt's threshold is
    sample-path-deterministic, so the two must land on the same tau.
    """
    snap = engine.snapshot("exact")
    coords, weights = snap.coords, snap.weights
    n = weights.shape[0]
    per_item = StreamVarOpt(SAMPLE_SIZE, 3)
    start = time.perf_counter()
    per_item.feed_many(coords, weights)
    per_item_secs = time.perf_counter() - start
    bulk = StreamVarOpt(SAMPLE_SIZE, 3)
    start = time.perf_counter()
    for lo in range(0, n, BATCH_SIZE):
        bulk.update(coords[lo:lo + BATCH_SIZE],
                    weights[lo:lo + BATCH_SIZE])
    bulk_secs = time.perf_counter() - start
    return {
        "n": n,
        "per_item_secs": per_item_secs,
        "bulk_secs": bulk_secs,
        "per_item_rate": n / max(per_item_secs, 1e-12),
        "bulk_rate": n / max(bulk_secs, 1e-12),
        "speedup": per_item_secs / max(bulk_secs, 1e-12),
        "tau_gap": abs(per_item.tau - bulk.tau),
        "tau_scale": max(1.0, abs(per_item.tau)),
    }


def _cache_benchmark(engine, rounds=5):
    """Repeated batteries: cached sort orders vs re-sorting each time.

    Measured against the engine's *exact* snapshot (the full streamed
    data): re-sorting a million rows per battery is exactly the cost
    the per-snapshot sort-order cache removes, leaving only the sweep.
    """
    rng = np.random.default_rng(11)
    queries = uniform_area_queries(
        network_domain(STREAM_CONFIG), max(20, N_QUERIES // 10), 3,
        max_fraction=0.1, rng=rng,
    )
    exact = engine.snapshot("exact")
    coords, values = exact.coords, exact.weights
    cached = exact.query_many(queries)  # warm the per-snapshot cache
    start = time.perf_counter()
    for _ in range(rounds):
        cached = exact.query_many(queries)
    cached_secs = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        uncached = batch_query_sums(queries, coords, values)
    uncached_secs = time.perf_counter() - start
    diffs = np.abs(np.asarray(cached) - uncached)
    return {
        "rounds": rounds,
        "n_queries": len(queries),
        "cached_secs": cached_secs,
        "uncached_secs": uncached_secs,
        "speedup": uncached_secs / max(cached_secs, 1e-12),
        "max_diff": float(diffs.max()),
    }


def test_stream_ingest(results_dir):
    engine, ingested, ingest_secs = _ingest_benchmark()
    live = _live_query_benchmark(engine)
    rebuild_secs = _rebuild_baseline(engine)
    cache = _cache_benchmark(engine)
    bulk = _bulk_feed_benchmark(engine)
    lines = [
        f"Stream: micro-batch ingest ({ingested:,} updates, "
        f"batch={BATCH_SIZE}, methods=obliv+exact)",
        f"  ingest           : {ingest_secs:9.2f} s "
        f"({ingested / max(ingest_secs, 1e-12):,.0f} updates/s)",
        f"  {REFRESHES}-refresh rebuild: {rebuild_secs:9.2f} s "
        "(batch rebuild of accumulated data per refresh, obliv only)",
        "",
        f"Stream: live {N_QUERIES}-query battery mid-stream",
        f"  first battery    : {live['first_secs'] * 1e3:9.1f} ms "
        "(folds + sorts + sweep)",
        f"  repeat battery   : {live['repeat_secs'] * 1e3:9.1f} ms "
        "(cached fold + cached sort orders)",
        f"  obliv vs exact   : {live['obliv_rel_err']:.5f} mean rel err",
        "",
        f"Stream: sort-order cache, {cache['rounds']} repeated "
        f"{cache['n_queries']}-query batteries on the exact snapshot",
        f"  cached           : {cache['cached_secs'] * 1e3:9.1f} ms",
        f"  uncached         : {cache['uncached_secs'] * 1e3:9.1f} ms",
        f"  speedup          : {cache['speedup']:9.2f}x",
        f"  max |diff|       : {cache['max_diff']:.3g}",
        "",
        f"StreamVarOpt: bulk vectorized feed, {bulk['n']:,} updates "
        f"(s={SAMPLE_SIZE}, batch={BATCH_SIZE})",
        f"  per-item feed    : {bulk['per_item_secs']:9.2f} s "
        f"({bulk['per_item_rate']:,.0f} updates/s)",
        f"  vectorized update: {bulk['bulk_secs']:9.2f} s "
        f"({bulk['bulk_rate']:,.0f} updates/s)",
        f"  speedup          : {bulk['speedup']:9.2f}x",
    ]
    emit(results_dir, "stream_ingest", "\n".join(lines))
    emit_json(results_dir, "stream_ingest", [
        {
            "method": "obliv+exact", "mode": "engine-ingest",
            "size": SAMPLE_SIZE, "n": ingested,
            "wall_time_s": ingest_secs,
            "throughput_per_s": ingested / max(ingest_secs, 1e-12),
        },
        {
            "method": "obliv+exact", "mode": "live-battery",
            "size": SAMPLE_SIZE, "n_queries": N_QUERIES,
            "wall_time_s": live["first_secs"],
            "repeat_wall_time_s": live["repeat_secs"],
            "throughput_per_s": N_QUERIES / max(live["first_secs"], 1e-12),
            "obliv_rel_err": live["obliv_rel_err"],
        },
        {
            "method": "exact", "mode": "sort-order-cache",
            "size": SAMPLE_SIZE, "n_queries": cache["n_queries"],
            "wall_time_s": cache["cached_secs"],
            "uncached_wall_time_s": cache["uncached_secs"],
            "speedup": cache["speedup"],
        },
        {
            "method": "obliv", "mode": "bulk-feed-per-item",
            "size": SAMPLE_SIZE, "n": bulk["n"],
            "wall_time_s": bulk["per_item_secs"],
            "throughput_per_s": bulk["per_item_rate"],
        },
        {
            "method": "obliv", "mode": "bulk-feed-vectorized",
            "size": SAMPLE_SIZE, "n": bulk["n"],
            "wall_time_s": bulk["bulk_secs"],
            "throughput_per_s": bulk["bulk_rate"],
            "speedup": bulk["speedup"],
        },
    ])
    # Bulk and per-item paths land on the same (deterministic) tau.
    assert bulk["tau_gap"] <= 1e-9 * bulk["tau_scale"]
    # Identical answers with and without the cache -- always.
    assert cache["max_diff"] < 1e-9
    # The reservoir's live estimates track ground truth.
    perf_assert(live["obliv_rel_err"] < 0.05,
                f"rel err {live['obliv_rel_err']}")
    # Cached sort orders beat re-sorting on repeated batteries
    # (the ROADMAP caching acceptance criterion).
    perf_assert(cache["speedup"] > 1.5, f"speedup {cache['speedup']}")
    # Live queries answer without a full rebuild: repeated batteries
    # must be far cheaper than one batch rebuild of the stream.
    perf_assert(live["repeat_secs"] < rebuild_secs,
                f"{live['repeat_secs']} vs {rebuild_secs}")
    # The vectorized bulk feed beats the per-item loop (ROADMAP perf
    # item; the per-item path is the recorded "before").
    perf_assert(bulk["speedup"] > 1.5, f"bulk speedup {bulk['speedup']}")
