"""Durability benchmarks: checkpoint write overhead + recovery latency.

Three acceptance measurements for the durable tier:

* **checkpoint overhead**: the same ~1e6-update landmark ingest run
  twice in one process -- without a store, then with the write-ahead
  log backend attached -- so the ratio is self-calibrated exactly like
  the telemetry-overhead gate.  The acceptance budget is <= 10%
  (``check_regression.py --max-checkpoint-overhead``).
* **restore latency**: rebuilding the engine from the store after a
  simulated crash, for both backends, with and without a checkpoint
  (checkpointed restores skip the batch replay).
* **worker recovery**: an injected worker kill mid-stream under
  ``recovery="replay"``; the recovery time is the cost of the one
  ``process()`` call that rebuilds the lost slice on a survivor.
"""

import tempfile
import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro.datagen.network import (
    NetworkConfig,
    network_domain,
    stream_network_flows,
)
from repro.distributed.coordinator import DistributedIngest
from repro.durable import (
    FaultyTransport,
    LogCheckpointStore,
    SQLiteCheckpointStore,
)
from repro.stream import MicroBatch, StreamEngine

#: ~1e6 streamed updates at full scale (acceptance criterion).
STREAM_CONFIG = NetworkConfig(
    n_pairs=20_000 if SMOKE else 1_000_000,
    n_sources=2_000 if SMOKE else 20_000,
    n_dests=1_500 if SMOKE else 16_000,
)
BATCH_SIZE = 2_000 if SMOKE else 10_000
SAMPLE_SIZE = 400 if SMOKE else 2_000
METHODS = ["obliv", "exact"]

N_FLEET_BATCHES = 30 if SMOKE else 120
FLEET_BATCH = 500 if SMOKE else 4_000


def _source():
    return stream_network_flows(
        STREAM_CONFIG, seed=7, batch_size=BATCH_SIZE
    )


def _timed_ingest(store, stem):
    domain = network_domain(STREAM_CONFIG)
    engine = StreamEngine(
        domain, METHODS, SAMPLE_SIZE, seed=7,
        store=store, stream_id=stem,
    )
    start = time.perf_counter()
    ingested = engine.ingest(_source())
    secs = time.perf_counter() - start
    return engine, ingested, secs


def _overhead_benchmark(tmp):
    """Ingest with no store vs ingest with the log WAL attached."""
    _, ingested, base_secs = _timed_ingest(None, "base")
    store = LogCheckpointStore(f"{tmp}/overhead")
    engine, _, store_secs = _timed_ingest(store, "s")
    start = time.perf_counter()
    engine.checkpoint()
    checkpoint_secs = time.perf_counter() - start
    store.sync()
    store.close()
    return {
        "n": ingested,
        "base_secs": base_secs,
        "store_secs": store_secs,
        "ratio": store_secs / max(base_secs, 1e-12),
        "checkpoint_secs": checkpoint_secs,
    }


def _restore_benchmark(tmp, backend, *, checkpointed):
    """Crash after a full ingest; time the rebuild from the store."""
    label = f"{backend}-{'ckpt' if checkpointed else 'log'}"
    if backend == "log":
        store = LogCheckpointStore(f"{tmp}/restore-{label}")
    else:
        store = SQLiteCheckpointStore(f"{tmp}/restore-{label}.sqlite")
    engine, ingested, _ = _timed_ingest(store, "s")
    if checkpointed:
        engine.checkpoint()
    del engine  # the crash
    start = time.perf_counter()
    restored = StreamEngine.restore(store, "s")
    secs = time.perf_counter() - start
    items = restored.items_seen
    store.close()
    assert items == ingested
    return {"n": ingested, "secs": secs}


def _fleet_recovery_benchmark(transport_name, num_workers=4):
    """Kill one worker mid-stream; time the slice rebuild."""
    rng = np.random.default_rng(3)
    domain = network_domain(STREAM_CONFIG)
    batches = []
    for _ in range(N_FLEET_BATCHES):
        coords = np.column_stack([
            rng.integers(0, size, size=FLEET_BATCH)
            for size in domain.sizes
        ])
        weights = 1.0 + rng.pareto(1.3, size=FLEET_BATCH)
        batches.append(MicroBatch(coords, weights))
    kill_at = N_FLEET_BATCHES // (2 * num_workers) + 2
    faulty = FaultyTransport(
        transport_name, kill_after={0: kill_at}
    )
    ingest = DistributedIngest(
        domain, ["obliv"], SAMPLE_SIZE, transport=faulty,
        num_workers=num_workers, seed=3, recovery="replay",
        replay_log=N_FLEET_BATCHES,
    )
    slowest = 0.0
    try:
        start_all = time.perf_counter()
        for batch in batches:
            start = time.perf_counter()
            ingest.process(batch)
            slowest = max(slowest, time.perf_counter() - start)
        ingest.snapshot("obliv")
        total = time.perf_counter() - start_all
    finally:
        ingest.close()
    return {
        "n": N_FLEET_BATCHES * FLEET_BATCH,
        "recovery_secs": slowest,  # the call that rebuilt the slice
        "total_secs": total,
        "replayed": kill_at - 1,
    }


def test_recovery(results_dir):
    with tempfile.TemporaryDirectory() as tmp:
        overhead = _overhead_benchmark(tmp)
        restores = {
            (backend, ckpt): _restore_benchmark(
                tmp, backend, checkpointed=ckpt
            )
            for backend in ("log", "sqlite")
            for ckpt in (False, True)
        }
    fleet = {
        name: _fleet_recovery_benchmark(name)
        for name in ("inprocess", "mp")
    }

    lines = [
        f"Durability: checkpoint overhead on landmark ingest "
        f"({overhead['n']:,} updates, batch={BATCH_SIZE}, "
        f"methods={'+'.join(METHODS)})",
        f"  no store         : {overhead['base_secs']:9.2f} s",
        f"  log WAL attached : {overhead['store_secs']:9.2f} s",
        f"  overhead         : {overhead['ratio']:9.3f}x "
        "(budget 1.10x)",
        f"  checkpoint()     : {overhead['checkpoint_secs'] * 1e3:9.1f} ms",
        "",
        "Durability: restore-from-store latency after a crash",
    ]
    for (backend, ckpt), r in sorted(restores.items()):
        how = "checkpointed" if ckpt else "batch replay"
        lines.append(
            f"  {backend:7s} {how:13s}: {r['secs'] * 1e3:9.1f} ms "
            f"({r['n']:,} updates recovered)"
        )
    lines.append("")
    lines.append(
        "Distributed: worker kill mid-stream, recovery='replay' "
        f"(4 workers, {N_FLEET_BATCHES} batches x {FLEET_BATCH:,})"
    )
    for name, r in sorted(fleet.items()):
        lines.append(
            f"  {name:9s}: slice rebuilt in "
            f"{r['recovery_secs'] * 1e3:8.1f} ms "
            f"({r['replayed']} batches replayed)"
        )
    emit(results_dir, "recovery", "\n".join(lines))

    records = [
        {
            "method": "+".join(METHODS), "mode": "checkpoint-overhead",
            "backend": "log", "size": SAMPLE_SIZE, "n": overhead["n"],
            "wall_time_nostore_s": overhead["base_secs"],
            "wall_time_store_s": overhead["store_secs"],
            "checkpoint_overhead_ratio": overhead["ratio"],
            "checkpoint_call_s": overhead["checkpoint_secs"],
        },
    ]
    for (backend, ckpt), r in sorted(restores.items()):
        records.append({
            "method": "+".join(METHODS), "mode": "restore",
            "backend": backend,
            "checkpointed": ckpt,
            "size": SAMPLE_SIZE, "n": r["n"],
            "wall_time_s": r["secs"],
        })
    for name, r in sorted(fleet.items()):
        records.append({
            "method": "obliv", "mode": "worker-recovery",
            "transport": name, "size": SAMPLE_SIZE, "n": r["n"],
            "wall_time_s": r["recovery_secs"],
            "total_wall_time_s": r["total_secs"],
            "batches_replayed": r["replayed"],
        })
    emit_json(results_dir, "recovery", records)

    # The write-ahead log stays within the ingest hot-path budget
    # (the acceptance criterion, also CI-gated by check_regression).
    perf_assert(overhead["ratio"] <= 1.10,
                f"checkpoint overhead {overhead['ratio']:.3f}x")
    # A checkpointed restore skips the batch replay, so it must not be
    # slower than replaying the whole log.
    perf_assert(
        restores[("log", True)]["secs"]
        <= restores[("log", False)]["secs"] * 1.5,
        "checkpointed restore slower than full replay",
    )
