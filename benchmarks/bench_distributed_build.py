"""Distributed build/serve benchmarks: multi-worker builds + serving.

Three acceptance measurements for the distributed subsystem:

* **build scaling**: single-process ``build_sharded`` vs 2/4/8-worker
  ``distributed_build`` over the multiprocessing transport -- the
  distributed path must (a) produce *identical* answers with the same
  seed and (b) beat the single-process wall time on multi-core hosts.
* **wire overhead**: the in-process transport runs the full
  encode/ship/decode path with zero process cost, isolating what the
  codec itself adds to a build.
* **query serving**: a 1k-query battery against the folded summary
  through the :class:`~repro.distributed.frontend.QueryFrontend`,
  first battery (fold + sorts + sweep) vs repeat battery (cached
  snapshot + cached sort orders).
"""

import os
import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.queries import uniform_area_queries
from repro.distributed import QueryFrontend, distributed_build
from repro.engine.builder import build_sharded

#: Large setting: enough rows that per-shard build work dominates the
#: shard shipping cost (acceptance criterion for multi-worker speedup).
BUILD_CONFIG = NetworkConfig(
    n_pairs=5_000 if SMOKE else 400_000,
    n_sources=1_000 if SMOKE else 30_000,
    n_dests=800 if SMOKE else 24_000,
)
SAMPLE_SIZE = 200 if SMOKE else 2_000
WORKER_COUNTS = [2] if SMOKE else [2, 4, 8]
N_QUERIES = 100 if SMOKE else 1_000
METHODS = ["obliv", "qdigest"]


class _StaticSupplier:
    """Adapt one frozen summary to the frontend's supplier protocol."""

    version = 0

    def __init__(self, summary):
        self._summary = summary

    def snapshot(self, method):
        return self._summary


def _build_benchmark(data):
    rows = []
    records = []
    for method in METHODS:
        start = time.perf_counter()
        local = build_sharded(
            method, data, SAMPLE_SIZE, np.random.default_rng(5),
            num_shards=4, parallel=False,
        )
        local_secs = time.perf_counter() - start
        rows.append((method, "local build_sharded(4, serial)", 1,
                     local_secs, None))
        records.append({
            "method": method, "mode": "local-serial",
            "workers": 1, "size": SAMPLE_SIZE, "n": data.n,
            "wall_time_s": local_secs,
            "throughput_per_s": data.n / max(local_secs, 1e-12),
        })
        start = time.perf_counter()
        wired = distributed_build(
            method, data, SAMPLE_SIZE, np.random.default_rng(5),
            num_workers=4, transport="inprocess",
        )
        wired_secs = time.perf_counter() - start
        rows.append((method, "inprocess wire (codec overhead)", 4,
                     wired_secs, None))
        records.append({
            "method": method, "mode": "inprocess-wire",
            "workers": 4, "size": SAMPLE_SIZE, "n": data.n,
            "wall_time_s": wired_secs,
            "throughput_per_s": data.n / max(wired_secs, 1e-12),
        })
        best_mp = None
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            dist = distributed_build(
                method, data, SAMPLE_SIZE, np.random.default_rng(5),
                num_workers=workers, transport="multiprocessing",
            )
            dist_secs = time.perf_counter() - start
            best_mp = min(best_mp or dist_secs, dist_secs)
            rows.append((method, "multiprocessing", workers, dist_secs,
                         dist.retries))
            records.append({
                "method": method, "mode": "multiprocessing",
                "workers": workers, "size": SAMPLE_SIZE, "n": data.n,
                "wall_time_s": dist_secs,
                "throughput_per_s": data.n / max(dist_secs, 1e-12),
                "retries": dist.retries,
            })
            if workers == 4:
                # Same seed => same shard seeds, builders and fold:
                # the distributed summary must answer identically.
                rng = np.random.default_rng(123)
                battery = uniform_area_queries(
                    data.domain, 20, 3, max_fraction=0.1, rng=rng
                )
                assert dist.summary.query_many(battery) == \
                    local.summary.query_many(battery)
        records.append({
            "method": method, "mode": "speedup",
            "size": SAMPLE_SIZE, "n": data.n,
            "local_s": local_secs, "best_mp_s": best_mp,
            "speedup": local_secs / max(best_mp, 1e-12),
        })
    return rows, records


def _serving_benchmark(data):
    dist = distributed_build(
        "obliv", data, SAMPLE_SIZE, np.random.default_rng(5),
        num_workers=4, transport="inprocess",
    )
    frontend = QueryFrontend(_StaticSupplier(dist.summary))
    rng = np.random.default_rng(9)
    battery = uniform_area_queries(
        data.domain, N_QUERIES, 3, max_fraction=0.1, rng=rng
    )
    start = time.perf_counter()
    first = frontend.query_many("obliv", battery)
    first_secs = time.perf_counter() - start
    start = time.perf_counter()
    repeat = frontend.query_many("obliv", battery)
    repeat_secs = time.perf_counter() - start
    assert first == repeat
    assert frontend.stats.hits == 1
    return {
        "n_queries": len(battery),
        "first_secs": first_secs,
        "repeat_secs": repeat_secs,
        "first_qps": len(battery) / max(first_secs, 1e-12),
        "repeat_qps": len(battery) / max(repeat_secs, 1e-12),
    }


def test_distributed_build(results_dir):
    data = generate_network_flows(BUILD_CONFIG, seed=42)
    rows, records = _build_benchmark(data)
    serving = _serving_benchmark(data)
    records.append({
        "method": "obliv", "mode": "frontend-serving",
        "size": SAMPLE_SIZE, "n_queries": serving["n_queries"],
        "wall_time_s": serving["first_secs"],
        "throughput_per_s": serving["first_qps"],
        "repeat_wall_time_s": serving["repeat_secs"],
        "repeat_throughput_per_s": serving["repeat_qps"],
    })
    lines = [
        f"Distributed: shard builds over {data.n:,} flow keys "
        f"(s={SAMPLE_SIZE}, methods={'+'.join(METHODS)})",
    ]
    for method, mode, workers, secs, retries in rows:
        note = f", retries={retries}" if retries else ""
        lines.append(
            f"  {method:8s} {mode:32s} w={workers}: {secs:8.2f} s"
            f" ({data.n / max(secs, 1e-12):,.0f} rows/s{note})"
        )
    lines += [
        "",
        f"Distributed: {serving['n_queries']}-query battery through "
        "the frontend (4-worker folded sample)",
        f"  first battery    : {serving['first_secs'] * 1e3:9.1f} ms "
        f"({serving['first_qps']:,.0f} q/s)",
        f"  repeat battery   : {serving['repeat_secs'] * 1e3:9.1f} ms "
        f"({serving['repeat_qps']:,.0f} q/s, cached snapshot + sorts)",
    ]
    emit(results_dir, "distributed_build", "\n".join(lines))
    emit_json(results_dir, "distributed", records)
    # Multi-worker beats the serial single-process build wall-time on
    # the large setting -- wherever there are cores to scale onto.
    speedups = [r["speedup"] for r in records if r.get("mode") == "speedup"]
    if (os.cpu_count() or 1) >= 2:
        perf_assert(
            all(s > 1.0 for s in speedups), f"speedups {speedups}"
        )
    # Serving from the cached snapshot must beat the cold battery.
    perf_assert(
        serving["repeat_secs"] < serving["first_secs"],
        f"{serving['repeat_secs']} vs {serving['first_secs']}",
    )
