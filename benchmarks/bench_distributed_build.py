"""Distributed build/serve benchmarks: multi-worker builds + serving.

Four acceptance measurements for the distributed subsystem:

* **build scaling**: single-process ``build_sharded`` vs 2/4/8-worker
  ``distributed_build`` over the multiprocessing and shared-memory
  transports -- the distributed path must (a) produce *identical*
  answers with the same seed and (b) beat the single-process wall
  time on multi-core hosts.  Fleet startup is timed separately
  (``fleet_start_s``): production coordinators are long-lived, so the
  build timing is against a warm fleet.
* **wire bytes**: every mode records what actually crossed the wire
  (``bytes_on_wire``/``frames_sent``/``shm_bytes``), and the
  ``wire-codec`` records price the exact build-task frames raw vs
  compressed -- the regression gate asserts compressed never exceeds
  raw, and sorted int64 key frames must shrink >= 3x.
* **wire overhead**: the in-process transport runs the full
  encode/ship/decode path with zero process cost, isolating what the
  codec itself adds to a build.
* **query serving**: a 1k-query battery against the folded summary
  through the :class:`~repro.distributed.frontend.QueryFrontend`,
  first battery (fold + sorts + sweep) vs repeat battery (cached
  snapshot + cached sort orders).
"""

import os
import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.queries import uniform_area_queries
from repro.distributed import (
    Coordinator,
    QueryFrontend,
    codec,
    distributed_build,
)
from repro.engine.builder import build_sharded
from repro.engine.shard import shard_dataset

#: Large setting: enough rows that per-shard build work dominates the
#: shard shipping cost (acceptance criterion for multi-worker speedup).
BUILD_CONFIG = NetworkConfig(
    n_pairs=5_000 if SMOKE else 400_000,
    n_sources=1_000 if SMOKE else 30_000,
    n_dests=800 if SMOKE else 24_000,
)
SAMPLE_SIZE = 200 if SMOKE else 2_000
#: Fleet sizes follow the machine: a process-per-worker transport on a
#: 2-core runner gains nothing from an 8-worker fleet, and its record
#: would poison the cross-machine regression baseline.  Two workers is
#: always measured (the minimum that exercises sharding); 4 and 8 join
#: when the cores are actually there.
_CPUS = os.cpu_count() or 1
WORKER_COUNTS = (
    [2] if SMOKE
    else sorted({2, *(w for w in (4, 8) if w <= _CPUS)})
)
SHM_WORKERS = 2 if SMOKE else min(4, max(2, _CPUS))
N_QUERIES = 100 if SMOKE else 1_000
METHODS = ["obliv", "qdigest"]


class _StaticSupplier:
    """Adapt one frozen summary to the frontend's supplier protocol."""

    version = 0

    def __init__(self, summary):
        self._summary = summary

    def snapshot(self, method):
        return self._summary


def _task_frame_bytes(method, data, num_shards=4):
    """Exact build-task frame sizes for one build, raw vs compressed.

    Mirrors the coordinator's task construction, so the two totals are
    precisely what a 4-worker build ships with and without the v2
    array codecs.
    """
    domain_spec = codec.encode_domain(data.domain)
    raw = wire = 0
    for index, shard in enumerate(shard_dataset(data, num_shards)):
        task = {
            "type": "build",
            "method": method,
            "size": int(SAMPLE_SIZE),
            "seed": index,
            "task_id": index,
            "coords": shard.coords,
            "weights": shard.weights,
            "domain": domain_spec,
        }
        raw += len(codec.encode_message(task, compress=False))
        wire += len(codec.encode_message(task))
    return raw, wire


def _warm_build(method, data, transport, workers):
    """One build against a pre-started fleet; returns timing + result."""
    start = time.perf_counter()
    coord = Coordinator(transport, num_workers=workers)
    fleet_start_s = time.perf_counter() - start
    try:
        start = time.perf_counter()
        result = distributed_build(
            method, data, SAMPLE_SIZE, np.random.default_rng(5),
            num_workers=workers, coordinator=coord,
        )
        build_s = time.perf_counter() - start
    finally:
        coord.close()
    return result, build_s, fleet_start_s


def _build_benchmark(data):
    rows = []
    records = []
    rng = np.random.default_rng(123)
    battery = uniform_area_queries(
        data.domain, 20, 3, max_fraction=0.1, rng=rng
    )
    for method in METHODS:
        start = time.perf_counter()
        local = build_sharded(
            method, data, SAMPLE_SIZE, np.random.default_rng(5),
            num_shards=4, parallel=False,
        )
        local_secs = time.perf_counter() - start
        local_answers = local.summary.query_many(battery)
        rows.append((method, "local build_sharded(4, serial)", 1,
                     local_secs, None, None))
        records.append({
            "method": method, "mode": "local-serial",
            "workers": 1, "size": SAMPLE_SIZE, "n": data.n,
            "wall_time_s": local_secs,
            "throughput_per_s": data.n / max(local_secs, 1e-12),
        })

        # What the build-task frames cost raw vs compressed (the v2
        # codecs must never lose to the raw framing).
        raw_bytes, wire_bytes = _task_frame_bytes(method, data)
        assert wire_bytes <= raw_bytes
        records.append({
            "method": method, "mode": "wire-codec",
            "size": SAMPLE_SIZE, "n": data.n,
            "raw_bytes": raw_bytes, "bytes_on_wire": wire_bytes,
            "compression_ratio": raw_bytes / max(wire_bytes, 1),
        })

        start = time.perf_counter()
        wired = distributed_build(
            method, data, SAMPLE_SIZE, np.random.default_rng(5),
            num_workers=4, transport="inprocess",
        )
        wired_secs = time.perf_counter() - start
        rows.append((method, "inprocess wire (codec overhead)", 4,
                     wired_secs, None, wired.bytes_on_wire))
        records.append({
            "method": method, "mode": "inprocess-wire",
            "workers": 4, "size": SAMPLE_SIZE, "n": data.n,
            "wall_time_s": wired_secs,
            "throughput_per_s": data.n / max(wired_secs, 1e-12),
            "bytes_on_wire": wired.bytes_on_wire,
            "frames_sent": wired.frames_sent,
        })

        best_dist = None
        for workers in WORKER_COUNTS:
            dist, dist_secs, fleet_secs = _warm_build(
                method, data, "multiprocessing", workers
            )
            best_dist = min(best_dist or dist_secs, dist_secs)
            rows.append((method, "multiprocessing (warm fleet)", workers,
                         dist_secs, dist.retries, dist.bytes_on_wire))
            records.append({
                "method": method, "mode": "multiprocessing",
                "workers": workers, "size": SAMPLE_SIZE, "n": data.n,
                "wall_time_s": dist_secs,
                "throughput_per_s": data.n / max(dist_secs, 1e-12),
                "fleet_start_s": fleet_secs,
                "bytes_on_wire": dist.bytes_on_wire,
                "frames_sent": dist.frames_sent,
                "retries": dist.retries,
            })
            if workers == 4:
                # Same seed => same shard seeds, builders and fold:
                # the distributed summary must answer identically.
                assert dist.summary.query_many(battery) == local_answers

        shm, shm_secs, shm_fleet_secs = _warm_build(
            method, data, "shared-memory", SHM_WORKERS
        )
        best_dist = min(best_dist, shm_secs)
        rows.append((method, "shared-memory (warm fleet)", SHM_WORKERS,
                     shm_secs, shm.retries, shm.bytes_on_wire))
        records.append({
            "method": method, "mode": "shared-memory",
            "workers": SHM_WORKERS, "size": SAMPLE_SIZE, "n": data.n,
            "wall_time_s": shm_secs,
            "throughput_per_s": data.n / max(shm_secs, 1e-12),
            "fleet_start_s": shm_fleet_secs,
            "bytes_on_wire": shm.bytes_on_wire,
            "frames_sent": shm.frames_sent,
            "shm_bytes": shm.shm_bytes,
            "retries": shm.retries,
        })
        if SHM_WORKERS == 4:
            assert shm.summary.query_many(battery) == local_answers

        records.append({
            "method": method, "mode": "speedup",
            "size": SAMPLE_SIZE, "n": data.n,
            "local_s": local_secs, "best_mp_s": best_dist,
            "speedup": local_secs / max(best_dist, 1e-12),
        })
    # The headline wire criterion: sorted int64 key frames (the shape
    # shard coordinates ship in after contiguous sharding) must
    # compress >= 3x under the delta+varint codec.
    keys = np.sort(np.ascontiguousarray(data.coords[:, 0]))
    raw_keys = len(codec.encode_value(keys, compress=False))
    wire_keys = len(codec.encode_value(keys))
    assert raw_keys >= 3 * wire_keys, (raw_keys, wire_keys)
    records.append({
        "method": "sorted-int64-keys", "mode": "wire-codec",
        "n": int(keys.shape[0]),
        "raw_bytes": raw_keys, "bytes_on_wire": wire_keys,
        "compression_ratio": raw_keys / max(wire_keys, 1),
    })
    return rows, records


def _serving_benchmark(data):
    dist = distributed_build(
        "obliv", data, SAMPLE_SIZE, np.random.default_rng(5),
        num_workers=4, transport="inprocess",
    )
    frontend = QueryFrontend(_StaticSupplier(dist.summary))
    rng = np.random.default_rng(9)
    battery = uniform_area_queries(
        data.domain, N_QUERIES, 3, max_fraction=0.1, rng=rng
    )
    start = time.perf_counter()
    first = frontend.query_many("obliv", battery)
    first_secs = time.perf_counter() - start
    start = time.perf_counter()
    repeat = frontend.query_many("obliv", battery)
    repeat_secs = time.perf_counter() - start
    assert first == repeat
    assert frontend.stats.hits == 1
    return {
        "n_queries": len(battery),
        "first_secs": first_secs,
        "repeat_secs": repeat_secs,
        "first_qps": len(battery) / max(first_secs, 1e-12),
        "repeat_qps": len(battery) / max(repeat_secs, 1e-12),
    }


def test_distributed_build(results_dir):
    data = generate_network_flows(BUILD_CONFIG, seed=42)
    rows, records = _build_benchmark(data)
    serving = _serving_benchmark(data)
    records.append({
        "method": "obliv", "mode": "frontend-serving",
        "size": SAMPLE_SIZE, "n_queries": serving["n_queries"],
        "wall_time_s": serving["first_secs"],
        "throughput_per_s": serving["first_qps"],
        "repeat_wall_time_s": serving["repeat_secs"],
        "repeat_throughput_per_s": serving["repeat_qps"],
    })
    lines = [
        f"Distributed: shard builds over {data.n:,} flow keys "
        f"(s={SAMPLE_SIZE}, methods={'+'.join(METHODS)})",
    ]
    for method, mode, workers, secs, retries, wire in rows:
        note = f", retries={retries}" if retries else ""
        wire_note = f", {wire:,} B wire" if wire is not None else ""
        lines.append(
            f"  {method:8s} {mode:32s} w={workers}: {secs:8.2f} s"
            f" ({data.n / max(secs, 1e-12):,.0f} rows/s"
            f"{wire_note}{note})"
        )
    for record in records:
        if record["mode"] == "wire-codec":
            lines.append(
                f"  wire-codec {record['method']:18s}: "
                f"{record['raw_bytes']:,} B raw -> "
                f"{record['bytes_on_wire']:,} B "
                f"({record['compression_ratio']:.1f}x)"
            )
    lines += [
        "",
        f"Distributed: {serving['n_queries']}-query battery through "
        "the frontend (4-worker folded sample)",
        f"  first battery    : {serving['first_secs'] * 1e3:9.1f} ms "
        f"({serving['first_qps']:,.0f} q/s)",
        f"  repeat battery   : {serving['repeat_secs'] * 1e3:9.1f} ms "
        f"({serving['repeat_qps']:,.0f} q/s, cached snapshot + sorts)",
    ]
    emit(results_dir, "distributed_build", "\n".join(lines))
    emit_json(results_dir, "distributed", records)
    # Multi-worker beats the serial single-process build wall-time on
    # the large setting -- wherever there are cores to scale onto.
    speedups = [r["speedup"] for r in records if r.get("mode") == "speedup"]
    if (os.cpu_count() or 1) >= 2:
        perf_assert(
            all(s > 1.0 for s in speedups), f"speedups {speedups}"
        )
    # Serving from the cached snapshot must beat the cold battery.
    perf_assert(
        serving["repeat_secs"] < serving["first_secs"],
        f"{serving['repeat_secs']} vs {serving['first_secs']}",
    )
