"""Figure 2(a): accuracy vs summary size on network data.

Uniform-area queries with 25 ranges each; methods: aware, obliv,
wavelet, qdigest.  Expected shape (paper Section 6.2): aware error is
one half to one third of obliv at equal space; qdigest is one to two
orders of magnitude worse; wavelet is the only dedicated summary that
comes close.
"""

from conftest import emit, perf_assert
from repro.experiments.figures import fig2a
from repro.experiments.report import render_comparison, render_figure


def test_fig2a(benchmark, network_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig2a(
            network_data,
            sizes=(100, 300, 1000, 3000),
            n_queries=30,
            ranges_per_query=25,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    text += "\n" + render_comparison(result, baseline="obliv", target="aware")
    text += "\n" + render_comparison(result, baseline="qdigest", target="aware")
    emit(results_dir, "fig2a", text)
    # Weak shape checks: every series present and positive.
    assert set(result.series) == {"aware", "obliv", "wavelet", "qdigest"}
    for series in result.series.values():
        assert len(series) == 4
        assert all(y >= 0 for _x, y in series)
    # Sampling methods improve with size.
    aware = dict(result.series["aware"])
    perf_assert(aware[3000] < aware[100])
