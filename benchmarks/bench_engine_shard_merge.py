"""Engine benchmarks: sharded build+merge and vectorized batch queries.

Two acceptance measurements for the engine subsystem:

* build: a k-shard parallel build folded with VarOpt merges vs the
  monolithic build, with relative-error parity on a query battery
  (the merged sample must answer as accurately as the monolithic one).
* query: vectorized ``query_many`` vs the per-query Python loop on a
  1k-query battery against 10k sampled keys -- the target is >= 5x
  with (numerically) identical answers.
"""

import time

import numpy as np

from conftest import emit, perf_assert
from repro.core.estimator import SampleSummary
from repro.datagen.queries import uniform_area_queries
from repro.engine import build_sharded
from repro.engine.registry import build as registry_build
from repro.experiments.harness import evaluate_summary, ground_truths


def _build_benchmark(network_data, s=2000, shards=4):
    rng = np.random.default_rng(0)
    queries = uniform_area_queries(network_data.domain, 200, 3,
                                   max_fraction=0.1, rng=rng)
    truths = ground_truths(network_data, queries)
    total = network_data.total_weight

    start = time.perf_counter()
    mono = registry_build("obliv", network_data, s, np.random.default_rng(1))
    mono_secs = time.perf_counter() - start

    start = time.perf_counter()
    sharded = build_sharded(
        "obliv", network_data, s, np.random.default_rng(1),
        num_shards=shards,
    )
    shard_secs = time.perf_counter() - start

    mono_scores = evaluate_summary(mono, queries, truths, total)
    shard_scores = evaluate_summary(sharded.summary, queries, truths, total)
    return {
        "mono_secs": mono_secs,
        "shard_secs": shard_secs,
        "speedup": mono_secs / max(shard_secs, 1e-12),
        "used_processes": sharded.used_processes,
        "mono_abs": mono_scores["abs_error"],
        "shard_abs": shard_scores["abs_error"],
    }


def _query_benchmark(network_data, s=10_000, n_queries=1000):
    rng = np.random.default_rng(7)
    sample = registry_build("obliv", network_data, s,
                            np.random.default_rng(3))
    queries = uniform_area_queries(network_data.domain, n_queries, 3,
                                   max_fraction=0.1, rng=rng)
    loop_secs, batch_secs = [], []
    for _round in range(2):  # best-of-2: shed cold-start allocation noise
        start = time.perf_counter()
        looped = [sample.query_multi(q) for q in queries]
        loop_secs.append(time.perf_counter() - start)
        start = time.perf_counter()
        batched = sample.query_many(queries)
        batch_secs.append(time.perf_counter() - start)
    loop_secs, batch_secs = min(loop_secs), min(batch_secs)
    diffs = np.abs(np.asarray(looped) - np.asarray(batched))
    scale = max(1.0, float(np.abs(looped).max()))
    return {
        "sample_size": sample.size,
        "loop_secs": loop_secs,
        "batch_secs": batch_secs,
        "speedup": loop_secs / max(batch_secs, 1e-12),
        "max_rel_diff": float(diffs.max()) / scale,
    }


def test_engine_shard_merge(network_data, results_dir):
    build = _build_benchmark(network_data)
    query = _query_benchmark(network_data)
    lines = [
        "Engine: sharded build+merge vs monolithic (obliv, s=2000, 4 shards)",
        f"  monolithic build : {build['mono_secs'] * 1e3:9.1f} ms "
        f"(abs err {build['mono_abs']:.5f})",
        f"  sharded build    : {build['shard_secs'] * 1e3:9.1f} ms "
        f"(abs err {build['shard_abs']:.5f}, "
        f"processes={build['used_processes']})",
        f"  build speedup    : {build['speedup']:9.2f}x",
        "",
        "Engine: vectorized query_many vs per-query loop "
        f"(1k x 3-range queries, {query['sample_size']} sampled keys)",
        f"  loop             : {query['loop_secs'] * 1e3:9.1f} ms",
        f"  batched          : {query['batch_secs'] * 1e3:9.1f} ms",
        f"  query speedup    : {query['speedup']:9.2f}x",
        f"  max rel diff     : {query['max_rel_diff']:.3g}",
    ]
    emit(results_dir, "engine_shard_merge", "\n".join(lines))
    # Error parity: the merged sample is as accurate as the monolithic
    # one (both are VarOpt_s samples of the same data).
    perf_assert(build["shard_abs"] <= 3.0 * max(build["mono_abs"], 1e-4))
    # Identical answers, vectorized >= 5x faster (acceptance criterion).
    assert query["max_rel_diff"] < 1e-9
    perf_assert(query["speedup"] >= 5.0)
