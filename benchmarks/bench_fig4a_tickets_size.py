"""Figure 4(a): accuracy vs summary size on tech-ticket data.

Uniform-weight queries.  Expected shape: aware and obliv nearly
coincide at small sizes (the fat head of heavy keys is in both
samples); they diverge at larger sizes where structure-awareness wins
(paper: less than half the obliv error at 1-10% of the data size).
"""

from conftest import emit, perf_assert
from repro.experiments.figures import fig4a
from repro.experiments.report import render_comparison, render_figure


def test_fig4a(benchmark, tickets_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig4a(
            tickets_data,
            sizes=(100, 300, 1000, 3000),
            ranges_per_query=10,
            n_cells=100,
            n_queries=30,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    text += "\n" + render_comparison(result, baseline="obliv", target="aware")
    emit(results_dir, "fig4a", text)
    aware = dict(result.series["aware"])
    perf_assert(aware[3000] < aware[100])
