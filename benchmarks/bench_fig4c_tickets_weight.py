"""Figure 4(c): accuracy vs query weight, ticket data, uniform-weight queries.

Expected shape: for controlled-weight multi-range queries the sampling
methods give the best results overall; wavelets do not catch up the way
they can on uniform-area queries.
"""

from conftest import SMOKE, emit
from repro.experiments.figures import fig4c
from repro.experiments.report import render_comparison, render_figure

#: Tiny ticket datasets yield few equal-weight cells; smoke mode asks
#: for proportionally coarser partitions and fewer ranges per query.
PARAMS = dict(
    size=2700,
    ranges_per_query=10,
    cell_counts=(2000, 600, 200, 60, 20),
    n_queries=30,
    repeats=3,
)
if SMOKE:
    PARAMS = dict(
        size=600,
        ranges_per_query=3,
        cell_counts=(400, 150, 60, 30, 20),
        n_queries=10,
        repeats=2,
    )


def test_fig4c(benchmark, tickets_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig4c(tickets_data, **PARAMS),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    text += "\n" + render_comparison(result, baseline="obliv", target="aware")
    emit(results_dir, "fig4c", text)
    assert len(result.series["aware"]) == 5
