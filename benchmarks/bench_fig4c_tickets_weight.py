"""Figure 4(c): accuracy vs query weight, ticket data, uniform-weight queries.

Expected shape: for controlled-weight multi-range queries the sampling
methods give the best results overall; wavelets do not catch up the way
they can on uniform-area queries.
"""

from conftest import emit
from repro.experiments.figures import fig4c
from repro.experiments.report import render_comparison, render_figure


def test_fig4c(benchmark, tickets_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig4c(
            tickets_data,
            size=2700,
            ranges_per_query=10,
            cell_counts=(2000, 600, 200, 60, 20),
            n_queries=30,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    text += "\n" + render_comparison(result, baseline="obliv", target="aware")
    emit(results_dir, "fig4c", text)
    assert len(result.series["aware"]) == 5
