"""Async serving tier under load: closed-loop baseline vs open-loop sweeps.

Three measurements against frozen summaries behind the snapshot-
supplier protocol:

1. **Closed-loop single caller** (the PR 5 frontend shape): one thread
   submits a query and waits for its answer before submitting the
   next.  With nobody else filling the batch, every ``result()``
   lazily flushes a batch of one -- the serving throughput collapses
   to the scalar kernel path no matter how large ``batch_size`` is.
2. **Async service, concurrent tenants**: the same queries, same
   ``batch_size``, through a :class:`ServingFrontend` -- several
   tenant threads keep a pipeline of submissions open, the flusher
   thread answers cross-tenant batches with one kernel call per
   method.  The ISSUE gate: >= 5x the closed-loop baseline.
3. **Open-loop offered-rate sweep**: Zipf-skewed multi-tenant traffic
   replayed at fixed offered rates (Poisson arrivals; submissions
   never wait for answers), measuring p50/p95/p99/p999 latency from
   *scheduled* arrival -- so queueing delay counts -- plus shed and
   queue-depth counters.  The sweep's top rate is far past
   saturation; the achieved rate there is the saturation throughput.

A correctness anchor rides along: two ``ServingFrontend`` suppliers
holding disjoint halves of the data must answer exact-method queries
with the *sum* of their range sums, bit-equal to a single full-data
supplier (range-sum additivity across shards).

Smoke mode shrinks sizes and rates so the whole file runs in seconds;
timing assertions are skipped but every record is still emitted for
the regression gate.
"""

import threading
import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro import obs
from repro.core.types import Dataset
from repro.datagen.serving import (
    latency_percentiles,
    open_loop_schedule,
    replay_open_loop,
    tenant_traffic,
)
from repro.distributed.frontend import (
    OverloadError,
    QueryFrontend,
    ServingFrontend,
)
from repro.engine.registry import build
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

DOMAIN_BITS = 20
N_ITEMS = 200_000
SIZE = 3000
BATCH = 256  # same knob as bench_query_serving's frontend section
N_CLOSED = 4000  # closed-loop / async comparison queries
N_TENANT_THREADS = 8
SWEEP_SECONDS = 1.2  # offered-load duration per rate
RATE_FACTORS = (0.25, 0.5, 1.0, 2.0)  # x the measured async throughput
MAX_SWEEP_QUERIES = 60_000
N_OBS = 8000  # instrumentation-overhead comparison queries
OBS_REPEATS = 5  # best-of-N per mode (interleaved, noise-robust)
if SMOKE:
    DOMAIN_BITS = 12
    N_ITEMS = 3000
    SIZE = 200
    BATCH = 64
    N_CLOSED = 300
    N_TENANT_THREADS = 4
    SWEEP_SECONDS = 0.3
    MAX_SWEEP_QUERIES = 400
    N_OBS = 4000
    OBS_REPEATS = 7

#: The ISSUE's sweep families; exact rides along as the fan-out anchor.
METHODS = ("sketch", "qdigest")


class _StaticSupplier:
    """Frozen summaries behind the snapshot-supplier protocol."""

    def __init__(self, summaries):
        self._summaries = summaries
        self.version = 0

    def snapshot(self, method):
        return self._summaries[method]

    @property
    def methods(self):
        return list(self._summaries)


def _battery(rng, size, n_queries):
    lows = rng.integers(0, size, n_queries)
    spans = rng.integers(0, max(1, size // 10), n_queries)
    highs = np.minimum(lows + spans, size - 1)
    return [Box((int(lo),), (int(hi),)) for lo, hi in zip(lows, highs)]


def _closed_loop(frontend, method, queries):
    """Single caller, one outstanding query: submit then wait, repeat."""
    start = time.perf_counter()
    answers = [
        frontend.submit(method, query).result() for query in queries
    ]
    return answers, time.perf_counter() - start


def _async_concurrent(service, method, queries, n_threads):
    """Concurrent tenants, each keeping a pipeline of submissions open."""
    chunks = [queries[i::n_threads] for i in range(n_threads)]
    answers = [None] * n_threads
    errors = []

    def tenant(i):
        try:
            handles = []
            for query in chunks[i]:
                while True:
                    try:
                        handles.append(
                            service.submit(method, query, tenant=f"t{i}")
                        )
                        break
                    except OverloadError:
                        time.sleep(0.0005)
            answers[i] = [h.result(30.0) for h in handles]
        except Exception as exc:  # surfaced in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=tenant, args=(i,))
        for i in range(n_threads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    flat = [None] * len(queries)
    for i, chunk_answers in enumerate(answers):
        flat[i::n_threads] = chunk_answers
    return flat, elapsed


def test_serving(results_dir):
    rng = np.random.default_rng(11)
    size = 1 << DOMAIN_BITS
    domain = ProductDomain([OrderedDomain(size)])
    coords = rng.integers(0, size, size=(N_ITEMS, 1))
    weights = 1.0 + rng.pareto(1.2, N_ITEMS)
    data = Dataset(coords=coords, weights=weights, domain=domain)
    summaries = {
        method: build(method, data, SIZE, np.random.default_rng(17))
        for method in METHODS + ("exact",)
    }
    queries = _battery(rng, size, N_CLOSED)
    tol = 1e-9 * float(weights.sum())

    records = []
    lines = ["== Serving tier: closed loop vs async service =="]

    # ------------------------------------------------------------------
    # Fan-out correctness anchor: disjoint halves sum to the whole.
    # ------------------------------------------------------------------
    half = N_ITEMS // 2
    half_suppliers = [
        _StaticSupplier({
            "exact": build(
                "exact",
                Dataset(coords=coords[sl], weights=weights[sl],
                        domain=domain),
                SIZE,
                np.random.default_rng(17),
            ),
        })
        for sl in (slice(None, half), slice(half, None))
    ]
    with ServingFrontend(
        half_suppliers, batch_size=BATCH, max_delay_ms=2.0
    ) as fanout:
        handles = [
            fanout.submit("exact", query) for query in queries[:200]
        ]
        fanned = [handle.result(30.0) for handle in handles]
    whole = summaries["exact"].query_many(queries[:200])
    np.testing.assert_allclose(fanned, whole, rtol=1e-9, atol=tol)
    lines.append(
        "fan-out anchor: 2-supplier sums match whole-data exact "
        f"({len(fanned)} queries)"
    )

    # ------------------------------------------------------------------
    # Closed loop vs async service at equal batch size.
    # ------------------------------------------------------------------
    async_rates = {}
    for method in METHODS:
        supplier = _StaticSupplier(summaries)
        closed_frontend = QueryFrontend(supplier, batch_size=BATCH)
        ref, closed_time = _closed_loop(closed_frontend, method, queries)
        closed_rate = len(queries) / max(closed_time, 1e-12)

        with ServingFrontend(
            _StaticSupplier(summaries),
            batch_size=BATCH,
            max_delay_ms=2.0,
            max_pending=max(1024, 4 * BATCH * N_TENANT_THREADS),
            tenant_share=1.0,
        ) as service:
            answers, async_time = _async_concurrent(
                service, method, queries, N_TENANT_THREADS
            )
            stats = service.stats()
        np.testing.assert_allclose(answers, ref, rtol=1e-9, atol=tol)
        async_rate = len(queries) / max(async_time, 1e-12)
        async_rates[method] = async_rate
        speedup = async_rate / max(closed_rate, 1e-12)
        records.append({
            "kernel": f"serving-async:{method}",
            "mode": "closed-vs-async",
            "n": len(queries),
            "batch_size": BATCH,
            "tenants": N_TENANT_THREADS,
            "domain_bits": DOMAIN_BITS,
            "wall_time_s": async_time,
            "wall_time_scalar_s": closed_time,
            "closed_loop_per_s": closed_rate,
            "throughput_per_s": async_rate,
            "speedup_vs_sync": speedup,
            "flushes": stats["flushes"],
            "max_queue_depth": stats["max_queue_depth"],
        })
        lines.append(
            f"{method:<10} closed-loop {closed_rate:9.0f} q/s -> "
            f"async x{N_TENANT_THREADS} tenants {async_rate:9.0f} q/s "
            f"({speedup:.1f}x, {stats['flushes']} flushes, "
            f"batch_hist {stats['batch_hist']})"
        )
        perf_assert(
            speedup >= 5.0,
            f"{method} async serving speedup {speedup:.1f}x < 5x "
            "over single-caller closed loop",
        )

    # ------------------------------------------------------------------
    # Open-loop offered-rate sweep (Poisson arrivals, Zipf tenants).
    # ------------------------------------------------------------------
    lines.append("== Open-loop sweep: offered rate vs latency ==")
    lines.append(
        f"{'method':<10} {'offered/s':>10} {'achieved/s':>10} "
        f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8} {'shed':>6} {'depth':>6}"
    )
    for method in METHODS:
        base_rate = (
            async_rates[method] if not SMOKE
            else max(400.0, async_rates[method] / 4)
        )
        saturation = 0.0
        for factor in RATE_FACTORS:
            rate = base_rate * factor
            n_queries = min(
                max(50, int(rate * SWEEP_SECONDS)), MAX_SWEEP_QUERIES
            )
            traffic_rng = np.random.default_rng(
                1000 + int(factor * 100)
            )
            traffic = tenant_traffic(
                size,
                n_queries,
                methods=(method,),
                n_tenants=16,
                exponent=1.2,
                rng=traffic_rng,
            )
            offsets = open_loop_schedule(n_queries, rate, traffic_rng)
            with ServingFrontend(
                _StaticSupplier(summaries),
                batch_size=BATCH,
                max_delay_ms=2.0,
                max_pending=8 * BATCH,
                tenant_share=0.5,
            ) as service:
                outcome = replay_open_loop(
                    service.submit,
                    traffic,
                    offsets,
                    shed_errors=(OverloadError,),
                )
                stats = service.stats()
            saturation = max(saturation, outcome.achieved_per_s)
            pct = latency_percentiles(outcome.latencies_ms)
            records.append({
                "kernel": f"serving-open-loop:{method}",
                "mode": "open-loop",
                "rate_factor": factor,
                "offered_per_s": round(rate, 1),
                "batch_size": BATCH,
                "domain_bits": DOMAIN_BITS,
                "n": n_queries,
                "achieved_per_s": outcome.achieved_per_s,
                "shed": outcome.shed,
                "failed": outcome.failed,
                "max_queue_depth": stats["max_queue_depth"],
                "flushes_deadline": stats["flushes_deadline"],
                "flushes_size": stats["flushes_size"],
                **pct,
            })
            lines.append(
                f"{method:<10} {rate:>10.0f} "
                f"{outcome.achieved_per_s:>10.0f} "
                f"{pct['p50_ms']:>8.2f} {pct['p95_ms']:>8.2f} "
                f"{pct['p99_ms']:>8.2f} {outcome.shed:>6d} "
                f"{stats['max_queue_depth']:>6d}"
            )
        records.append({
            "kernel": f"serving-saturation:{method}",
            "mode": "saturation",
            "batch_size": BATCH,
            "domain_bits": DOMAIN_BITS,
            "saturation_per_s": saturation,
        })
        lines.append(
            f"{method:<10} saturation throughput {saturation:,.0f} q/s"
        )

    # ------------------------------------------------------------------
    # Instrumentation overhead: disabled vs enabled telemetry registry
    # on the serving hot path.  The gate (here and in check_regression)
    # is <= 5% -- telemetry must stay pay-for-what-you-use.
    # ------------------------------------------------------------------
    lines.append("== Telemetry overhead: disabled vs enabled registry ==")
    obs_queries = _battery(rng, size, N_OBS)

    def _serving_pass(registry):
        """One single-threaded submit+flush sweep under ``registry``.

        The frontend is constructed *after* the registry swap because
        components capture ``registry.enabled`` at construction; the
        driver thread does its own flushes so the measurement has no
        flusher-thread scheduling noise in it.
        """
        previous = obs.set_registry(registry)
        try:
            service = ServingFrontend(
                _StaticSupplier(summaries),
                batch_size=BATCH,
                max_pending=4 * BATCH,
                tenant_share=1.0,
                start=False,
            )
            try:
                start = time.perf_counter()
                handles = []
                for index, query in enumerate(obs_queries):
                    handles.append(service.submit(
                        "sketch", query, tenant=f"t{index & 3}"
                    ))
                    if service.pending() >= BATCH:
                        service.flush()
                service.flush()
                for handle in handles:
                    handle.result(30.0)
                return time.perf_counter() - start
            finally:
                service.close()
        finally:
            obs.set_registry(previous)

    disabled_reg = obs.MetricsRegistry(enabled=False)
    enabled_reg = obs.MetricsRegistry(enabled=True)
    _serving_pass(disabled_reg)  # warm caches before timing either mode
    _serving_pass(enabled_reg)
    # Interleave the trials so clock drift / background load hits both
    # modes equally, then take the *median of paired ratios*: a noise
    # burst landing on one trial of one mode cannot move the estimate
    # the way it moves a min- or mean-based one.
    ratios = []
    time_disabled = time_enabled = float("inf")
    for _ in range(OBS_REPEATS):
        trial_disabled = _serving_pass(disabled_reg)
        trial_enabled = _serving_pass(enabled_reg)
        ratios.append(trial_enabled / max(trial_disabled, 1e-12))
        time_disabled = min(time_disabled, trial_disabled)
        time_enabled = min(time_enabled, trial_enabled)
    overhead = float(np.median(ratios))
    snap = enabled_reg.snapshot()
    assert snap["serving.batch_size"]["count"] > 0  # it really measured
    records.append({
        "kernel": "obs-overhead:serving",
        "mode": "obs-overhead",
        "n": N_OBS,
        "batch_size": BATCH,
        "domain_bits": DOMAIN_BITS,
        "wall_time_disabled_s": time_disabled,
        "wall_time_enabled_s": time_enabled,
        "overhead_ratio": overhead,
    })
    lines.append(
        f"serving hot path: disabled {time_disabled * 1e3:.1f} ms, "
        f"enabled {time_enabled * 1e3:.1f} ms "
        f"-> overhead x{overhead:.3f} ({N_OBS} queries)"
    )
    perf_assert(
        overhead <= 1.05,
        f"enabled-telemetry overhead x{overhead:.3f} exceeds the 5% "
        "budget on the serving hot path",
    )

    emit(results_dir, "serving", "\n".join(lines))
    emit_json(results_dir, "serving", records)
