"""Before/after timings of the vectorized offline build kernels.

Times the fig3a (network) and fig3b (tickets) build paths at one
million items, once through the historical scalar pipeline
(``strict_seed=True``) and once through the vectorized NumPy kernels
(the default), and records both in ``BENCH_build.json``.  The
vectorized path must be at least 5x faster on every (dataset, method)
cell; smoke mode shrinks the datasets and skips the speedup assertion
(timings at toy sizes are dominated by fixed costs).

``aware`` is the paper's two-pass structure-aware sampler; ``obliv``
the one-pass VarOpt reservoir.  Both consume the same data the fig3a/
fig3b throughput figures are built from, at the paper-scale item
count those figures target.
"""

import time

import numpy as np

from conftest import SMOKE, emit, emit_json, perf_assert
from repro.core.varopt import stream_varopt_summary
from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.tickets import TicketConfig, generate_tickets
from repro.twopass.two_pass import two_pass_summary

SIZE = 3000
#: Builds per timing; smoke sizes are repeated so the recorded wall
#: times clear check_regression.py's noise floor and stay gated.
REPEATS = 1
#: Timing trials; the best total is recorded.  Smoke records feed the
#: CI regression gate, where a single scheduler hiccup must not read
#: as a 2x kernel slowdown -- best-of-3 keeps them stable.
TRIALS = 1
NETWORK = NetworkConfig(n_pairs=1_000_000, n_sources=40_000, n_dests=30_000)
TICKETS = TicketConfig(n_combinations=1_000_000)
if SMOKE:
    SIZE = 200
    REPEATS = 8
    TRIALS = 3
    NETWORK = NetworkConfig(n_pairs=3_000, n_sources=1_000, n_dests=800)
    TICKETS = TicketConfig(n_combinations=3_000)

BUILDERS = (
    ("obliv", stream_varopt_summary),
    ("aware", two_pass_summary),
)


def _timed(builder, data, strict_seed):
    """Best-of-``TRIALS`` total wall time of ``REPEATS`` seeded builds."""
    best = float("inf")
    for _trial in range(TRIALS):
        start = time.perf_counter()
        for repeat in range(REPEATS):
            summary = builder(
                data, SIZE, np.random.default_rng(17 + repeat),
                strict_seed=strict_seed,
            )
        best = min(best, time.perf_counter() - start)
    return summary, best


def test_build_kernels(results_dir):
    datasets = (
        ("fig3a_network", generate_network_flows(NETWORK, seed=42)),
        ("fig3b_tickets", generate_tickets(TICKETS, seed=1234)),
    )
    records = []
    lines = ["== Offline build kernels: scalar vs vectorized =="]
    for label, data in datasets:
        for method, builder in BUILDERS:
            before_summary, before = _timed(builder, data, strict_seed=True)
            after_summary, after = _timed(builder, data, strict_seed=False)
            # Both paths realize the same sampling distribution: the
            # thresholds agree (up to the float association of the
            # streaming vs offline fixpoint) and the realized sizes
            # match within the +-1 of the final Bernoulli.
            assert np.isclose(
                after_summary.tau, before_summary.tau, rtol=1e-9
            )
            assert abs(after_summary.size - before_summary.size) <= 2
            speedup = before / max(after, 1e-9)
            records.append({
                "kernel": f"{label}:{method}",
                "n": data.n,
                "size": SIZE,
                "repeats": REPEATS,
                "wall_time_s": after,
                "wall_time_scalar_s": before,
                "speedup": speedup,
                "throughput_per_s": REPEATS * data.n / max(after, 1e-9),
            })
            lines.append(
                f"{label}:{method}  n={data.n}  "
                f"scalar {before:.2f}s -> vectorized {after:.3f}s  "
                f"({speedup:.1f}x)"
            )
            perf_assert(
                speedup >= 5.0,
                f"{label}:{method} speedup {speedup:.1f}x < 5x",
            )
    emit(results_dir, "build_kernels", "\n".join(lines))
    emit_json(results_dir, "build", records)
