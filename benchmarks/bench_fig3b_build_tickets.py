"""Figure 3(b): construction throughput vs summary size, ticket data.

Same expected ordering as Figure 3(a); the paper highlights that on
this data generating and using samples takes seconds while wavelets
take hours (tens of millions of coefficients before thresholding).
"""

from conftest import emit, emit_json, figure_records, perf_assert
from repro.experiments.figures import fig3b
from repro.experiments.report import render_figure


def test_fig3b(benchmark, tickets_data, results_dir):
    result = benchmark.pedantic(
        lambda: fig3b(tickets_data, sizes=(100, 1000, 3000)),
        rounds=1,
        iterations=1,
    )
    text = render_figure(result)
    emit(results_dir, "fig3b", text)
    emit_json(
        results_dir,
        "fig3b",
        figure_records(
            result, "items_per_second", extra={"n": tickets_data.n}
        ),
    )
    obliv = dict(result.series["obliv"])
    wavelet = dict(result.series["wavelet"])
    perf_assert(min(obliv.values()) > max(wavelet.values()))
