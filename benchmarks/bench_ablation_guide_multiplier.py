"""Ablation: the guide-sample multiplier s'/s of the two-pass pipeline.

The paper uses s' = 5s and notes that increasing the factor did not
significantly improve accuracy.  We sweep the factor and record both
error and build time.
"""

import time

import numpy as np

from conftest import emit, perf_assert
from repro.datagen.queries import uniform_area_queries
from repro.experiments.harness import evaluate_summary, ground_truths
from repro.experiments.report import FigureResult, render_figure
from repro.twopass.two_pass import two_pass_summary


def test_guide_multiplier_ablation(benchmark, network_data, results_dir):
    factors = (1, 2, 5, 10)
    s = 1000

    def run():
        rng = np.random.default_rng(5)
        queries = uniform_area_queries(
            network_data.domain, 30, 25, max_fraction=0.12, rng=rng
        )
        truths = ground_truths(network_data, queries)
        result = FigureResult(
            "Ablation: s'/s",
            "two-pass guide-sample multiplier",
            "s_prime_factor",
            "absolute error / build seconds",
        )
        for factor in factors:
            errors = []
            seconds = 0.0
            for t in range(3):
                start = time.perf_counter()
                summary = two_pass_summary(
                    network_data, s, np.random.default_rng(t),
                    s_prime_factor=factor,
                )
                seconds += time.perf_counter() - start
                scores = evaluate_summary(
                    summary, queries, truths, network_data.total_weight
                )
                errors.append(scores["abs_error"])
            result.add_point("abs_error", factor, float(np.mean(errors)))
            result.add_point("build_seconds", factor, seconds / 3)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_figure(result)
    emit(results_dir, "ablation_guide_multiplier", text)
    errors = dict(result.series["abs_error"])
    # The paper's observation: going beyond 5 changes little (allow 2x
    # slack for noise).
    perf_assert(errors[10] < errors[5] * 2 + 1e-6)
