"""Ablation: kd-tree split rule (weighted median vs dyadic midpoint).

Algorithm 2 splits at the weighted median so cells carry equal
probability mass; a midpoint split is cheaper but can leave unbalanced
cells.  We compare the range-query error of the main-memory product
sampler under both rules.
"""

import numpy as np

from conftest import emit
from repro.aware.product_sampler import product_aware_summary
from repro.datagen.queries import uniform_area_queries
from repro.experiments.harness import evaluate_summary, ground_truths
from repro.experiments.report import FigureResult, render_figure


def test_kd_split_ablation(benchmark, network_data, results_dir):
    def run():
        rng = np.random.default_rng(6)
        queries = uniform_area_queries(
            network_data.domain, 30, 25, max_fraction=0.12, rng=rng
        )
        truths = ground_truths(network_data, queries)
        result = FigureResult(
            "Ablation: kd split rule",
            "median (Algorithm 2) vs midpoint splitting",
            "sample size",
            "absolute error",
        )
        for s in (300, 1000, 3000):
            for rule in ("median", "midpoint"):
                errors = []
                for t in range(3):
                    summary = product_aware_summary(
                        network_data, s, np.random.default_rng(t),
                        split_rule=rule,
                    )
                    scores = evaluate_summary(
                        summary, queries, truths,
                        network_data.total_weight,
                    )
                    errors.append(scores["abs_error"])
                result.add_point(rule, s, float(np.mean(errors)))
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_figure(result)
    emit(results_dir, "ablation_kd_split", text)
    assert set(result.series) == {"median", "midpoint"}
