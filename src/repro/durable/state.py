"""Bit-exact (de)serialization of *live* incremental summaries.

Sealed panes persist as plain summary frames
(:func:`repro.distributed.codec.to_bytes`).  Live builders need a
little more care, because resuming one mid-stream must continue the
exact update/snapshot trajectory the uninterrupted builder would have
taken:

* Native streamers (``obliv``/``exact``/``sketch``/``qdigest-stream``)
  already round-trip through the wire codec -- the VarOpt reservoir
  even carries its generator state, so a restored reservoir makes the
  same eviction decisions.  The one wrinkle is ``ExactSummary``, whose
  ``from_state`` resets the update counter; the counter feeds the
  stream engine's fold-seed derivation, so it is carried alongside the
  frame and restored explicitly.
* :class:`~repro.stream.incremental.BufferedRebuildSummary` persists
  its components (buffer store, last built summary, build counters);
  the rebuild schedule and rebuild seeds are pure functions of those.
"""

from __future__ import annotations

from repro.distributed import codec
from repro.stream.incremental import (
    BufferedRebuildSummary,
    incremental_summary,
)

__all__ = ["encode_incremental", "decode_incremental"]


def _frame_with_version(summary) -> dict:
    return {
        "frame": codec.to_bytes(summary),
        "version": int(summary.version),
    }


def _decode_with_version(spec: dict):
    summary = codec.from_bytes(spec["frame"])
    want = int(spec["version"])
    if summary.version != want:
        # ExactSummary (and anything else whose counter is not part of
        # its value state): restore the counter the codec dropped.
        summary._version = want
        if summary.version != want:
            raise ValueError(
                f"cannot restore version {want} on "
                f"{type(summary).__name__}"
            )
    return summary


def encode_incremental(inc) -> dict:
    """Persistable spec of one live incremental summary."""
    if isinstance(inc, BufferedRebuildSummary):
        return {
            "kind": "buffered",
            "buffer": _frame_with_version(inc._buffer),
            "built": (
                codec.to_bytes(inc._built)
                if inc._built is not None else None
            ),
            "built_n": int(inc._built_n),
            "rebuilds": int(inc._rebuilds),
        }
    return {"kind": "native", **_frame_with_version(inc)}


def decode_incremental(
    spec: dict,
    *,
    name: str,
    domain,
    size: int,
    seed: int,
    stale_fraction: float = 0.0,
):
    """Rebuild a live incremental summary from its persisted spec.

    ``name``/``domain``/``size``/``seed``/``stale_fraction`` are the
    constructor arguments the original summary was built with (the
    engine knows them; they are not duplicated per record).
    """
    if spec["kind"] == "native":
        return _decode_with_version(spec)
    inc = incremental_summary(
        name, domain, size, seed, stale_fraction=stale_fraction
    )
    if not isinstance(inc, BufferedRebuildSummary):
        raise ValueError(
            f"method {name!r} is native but was persisted as buffered"
        )
    inc._buffer = _decode_with_version(spec["buffer"])
    inc._built = (
        codec.from_bytes(spec["built"])
        if spec["built"] is not None else None
    )
    inc._built_n = int(spec["built_n"])
    inc._rebuilds = int(spec["rebuilds"])
    return inc
