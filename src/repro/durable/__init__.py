"""Durable state: checkpoint stores, crash recovery, fault injection.

See ``DURABILITY.md`` in this package for the on-disk frame layout,
the resume-state schema, the recovery state machine and the exactness
contract.
"""

from repro.durable.state import decode_incremental, encode_incremental
from repro.durable.store import (
    CheckpointStore,
    LogCheckpointStore,
    Record,
    SQLiteCheckpointStore,
    open_store,
)

__all__ = [
    "CheckpointStore",
    "LogCheckpointStore",
    "SQLiteCheckpointStore",
    "Record",
    "open_store",
    "encode_incremental",
    "decode_incremental",
    "FaultyTransport",
]


def __getattr__(name):
    # FaultyTransport pulls in the transport stack; load it lazily so
    # `repro.durable` stays importable from the stream engine without
    # dragging the distributed tier along.
    if name == "FaultyTransport":
        from repro.durable.faults import FaultyTransport

        return FaultyTransport
    raise AttributeError(name)
