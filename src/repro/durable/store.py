"""Durable checkpoint store: append-only log and WAL-mode SQLite backends.

A :class:`CheckpointStore` persists the streaming tier's recovery
state as an ordered sequence of *records* per stream.  Each record is
``(seq, kind, pane, payload)`` where ``payload`` is any value the wire
codec (:mod:`repro.distributed.codec`) encodes -- so persisted pane
summaries are exactly the frames the distributed tier already ships,
bit-exact and compressed for free.

Record kinds (the engine's contract, see ``DURABILITY.md``):

* ``open`` -- stream configuration (methods, size, seed, window,
  domain spec).  Written once, survives every truncation.
* ``batch`` -- one ingested micro-batch *plus the pre-ingest counter
  state*, logged before processing (write-ahead).  ``pane`` is the
  batch's last destination pane.
* ``seal`` -- a sealed pane's frozen summary frames.  ``pane`` is the
  pane index.
* ``state`` -- a full engine checkpoint (all retained panes + clocks).

Two interchangeable backends:

* :class:`LogCheckpointStore` -- one append-only file per stream,
  length-prefixed CRC-framed records; a torn tail (partial write at
  crash) is detected and truncated on open.
* :class:`SQLiteCheckpointStore` -- a single WAL-mode database with
  resume-state tables (per-stream high-water mark, pane index,
  checkpoint version) maintained transactionally with every append.

Both expose the same API and the same semantics; every recovery test
runs against both.
"""

from __future__ import annotations

import os
import sqlite3
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.distributed import codec

__all__ = [
    "Record",
    "CheckpointStore",
    "LogCheckpointStore",
    "SQLiteCheckpointStore",
    "open_store",
]

#: Valid record kinds, in no particular order.
RECORD_KINDS = ("open", "batch", "seal", "state")


@dataclass(frozen=True)
class Record:
    """One persisted record of a stream's history."""

    stream: str
    seq: int
    kind: str
    pane: int
    payload: object


class CheckpointStore:
    """Common surface of both durable backends.

    ``append`` returns the record's per-stream sequence number
    (monotone from 0).  ``compress=False`` skips array compression --
    the hot ingest path logs raw for speed; seal and state records
    compress (their summary frames are already compressed by the
    summary codec regardless).
    """

    def append(
        self,
        stream: str,
        kind: str,
        payload,
        *,
        pane: int = -1,
        compress: bool = True,
    ) -> int:
        raise NotImplementedError

    def records(self, stream: str, *, min_seq: int = 0) -> List[Record]:
        """All retained records of ``stream``, in seq order."""
        raise NotImplementedError

    def streams(self) -> List[str]:
        """Names of every stream with at least one record."""
        raise NotImplementedError

    def truncate(self, stream: str, below_seq: int) -> int:
        """Drop every non-``open`` record with ``seq < below_seq``.

        Called after a ``state`` checkpoint: everything before it is
        embedded in the checkpoint.  Returns the number dropped.
        """
        raise NotImplementedError

    def prune(
        self,
        stream: str,
        kind: str,
        *,
        max_pane: Optional[int] = None,
        below_seq: Optional[int] = None,
    ) -> int:
        """Drop records of one ``kind`` matching the given bounds.

        ``max_pane`` drops records with ``pane <= max_pane`` (seal-time
        compaction of the batch replay log); ``below_seq`` drops
        records with ``seq < below_seq``.  Returns the number dropped.
        """
        raise NotImplementedError

    def resume_state(self, stream: str) -> Dict[str, int]:
        """The stream's high-water marks.

        ``next_seq`` (first unused sequence number),
        ``last_sealed_pane`` (-1 if none), ``checkpoint_seq`` (seq of
        the latest ``state`` record, -1 if none) and ``checkpoints``
        (how many checkpoints were ever taken -- the snapshot version).
        """
        raise NotImplementedError

    def sync(self) -> None:
        """Force durability of everything appended so far."""

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # Shared validation -------------------------------------------------
    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in RECORD_KINDS:
            raise ValueError(
                f"unknown record kind {kind!r}; have {RECORD_KINDS}"
            )


# ----------------------------------------------------------------------
# Append-only log backend
# ----------------------------------------------------------------------

_LOG_MAGIC = b"RDUR"
_LOG_VERSION = 1
_HEADER = struct.Struct("<IIqI")  # body length, seq, pane, crc32(body)
_KIND_CODES = {kind: i for i, kind in enumerate(RECORD_KINDS)}
_KIND_NAMES = {i: kind for kind, i in _KIND_CODES.items()}


def _stream_filename(stream: str) -> str:
    """A filesystem-safe, collision-free file name for a stream id."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in stream
    )
    return f"{safe}-{zlib.crc32(stream.encode('utf-8')):08x}.rdur"


class LogCheckpointStore(CheckpointStore):
    """One append-only CRC-framed log file per stream.

    Layout: a 5-byte header (``RDUR`` + format version), then records
    ``<u32 body_len><u32 seq'...><record body><...crc>`` -- see
    ``_HEADER``; the body is ``<u8 kind>`` + the codec-encoded payload.
    A torn tail (header or body cut short, or CRC mismatch -- the
    signature of a crash mid-append) truncates the file back to the
    last whole record on open; everything before it is intact by CRC.

    Records are mirrored in memory (the compaction machinery keeps
    them bounded), so reads never touch the disk after open and
    ``prune``/``truncate`` rewrite the file atomically via a temp file
    + ``os.replace``.
    """

    def __init__(self, directory: str):
        self._dir = str(directory)
        os.makedirs(self._dir, exist_ok=True)
        self._lock = threading.Lock()
        #: stream -> list[Record]; mirrors the on-disk files.
        self._records: Dict[str, List[Record]] = {}
        #: stream -> open append handle.
        self._handles: Dict[str, object] = {}
        self._next_seq: Dict[str, int] = {}
        self._closed = False
        for name in sorted(os.listdir(self._dir)):
            if name.endswith(".rdur"):
                self._load(os.path.join(self._dir, name))

    # -- file plumbing --------------------------------------------------
    def _path(self, stream: str) -> str:
        return os.path.join(self._dir, _stream_filename(stream))

    def _load(self, path: str) -> None:
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < 5 or data[:4] != _LOG_MAGIC:
            raise ValueError(f"{path}: not a checkpoint log")
        if data[4] != _LOG_VERSION:
            raise ValueError(
                f"{path}: log version {data[4]} != {_LOG_VERSION}"
            )
        pos, good = 5, 5
        records: List[Record] = []
        stream = None
        while True:
            header = data[pos:pos + _HEADER.size]
            if len(header) < _HEADER.size:
                break  # torn or clean EOF
            body_len, seq, pane, crc = _HEADER.unpack(header)
            body = data[pos + _HEADER.size:pos + _HEADER.size + body_len]
            if len(body) < body_len or zlib.crc32(body) != crc:
                break  # torn tail: truncate back to `good`
            kind = _KIND_NAMES.get(body[0])
            if kind is None:
                break
            value = codec.decode_value(body[1:])
            stream = value["stream"]
            records.append(
                Record(stream, seq, kind, pane, value["payload"])
            )
            pos += _HEADER.size + body_len
            good = pos
        if good < len(data):
            with open(path, "r+b") as fh:
                fh.truncate(good)
        if stream is None and records == []:
            # Header-only (or fully torn) file: nothing to resume.
            os.remove(path)
            return
        self._records[stream] = records
        self._next_seq[stream] = (records[-1].seq + 1) if records else 0

    def _handle(self, stream: str):
        fh = self._handles.get(stream)
        if fh is None:
            path = self._path(stream)
            fresh = not os.path.exists(path)
            fh = open(path, "ab")
            if fresh:
                fh.write(_LOG_MAGIC + bytes([_LOG_VERSION]))
            self._handles[stream] = fh
        return fh

    @staticmethod
    def _frame(record: Record, *, compress: bool) -> bytes:
        body = bytes([_KIND_CODES[record.kind]]) + codec.encode_value(
            {"stream": record.stream, "payload": record.payload},
            compress=compress,
        )
        header = _HEADER.pack(
            len(body), record.seq, record.pane, zlib.crc32(body)
        )
        return header + body

    def _rewrite(self, stream: str) -> None:
        """Atomically replace the stream's file with its live records."""
        fh = self._handles.pop(stream, None)
        if fh is not None:
            fh.close()
        path = self._path(stream)
        tmp = path + ".tmp"
        with open(tmp, "wb") as out:
            out.write(_LOG_MAGIC + bytes([_LOG_VERSION]))
            for record in self._records[stream]:
                out.write(self._frame(record, compress=True))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)

    # -- CheckpointStore API --------------------------------------------
    def append(self, stream, kind, payload, *, pane=-1, compress=True):
        self._check_kind(kind)
        with self._lock:
            seq = self._next_seq.get(stream, 0)
            record = Record(stream, seq, kind, int(pane), payload)
            fh = self._handle(stream)
            fh.write(self._frame(record, compress=compress))
            fh.flush()
            self._records.setdefault(stream, []).append(record)
            self._next_seq[stream] = seq + 1
            return seq

    def records(self, stream, *, min_seq=0):
        with self._lock:
            return [
                r for r in self._records.get(stream, ())
                if r.seq >= min_seq
            ]

    def streams(self):
        with self._lock:
            return sorted(self._records)

    def truncate(self, stream, below_seq):
        with self._lock:
            return self._filter(
                stream,
                lambda r: r.kind == "open" or r.seq >= below_seq,
            )

    def prune(self, stream, kind, *, max_pane=None, below_seq=None):
        self._check_kind(kind)

        def keep(r: Record) -> bool:
            if r.kind != kind:
                return True
            if max_pane is not None and r.pane > max_pane:
                return True
            if below_seq is not None and r.seq >= below_seq:
                return True
            return False

        with self._lock:
            return self._filter(stream, keep)

    def _filter(self, stream, keep) -> int:
        old = self._records.get(stream)
        if not old:
            return 0
        new = [r for r in old if keep(r)]
        dropped = len(old) - len(new)
        if dropped:
            self._records[stream] = new
            self._rewrite(stream)
        return dropped

    def resume_state(self, stream):
        with self._lock:
            records = self._records.get(stream, [])
            sealed = [r.pane for r in records if r.kind == "seal"]
            states = [r.seq for r in records if r.kind == "state"]
            return {
                "next_seq": self._next_seq.get(stream, 0),
                "last_sealed_pane": max(sealed, default=-1),
                "checkpoint_seq": max(states, default=-1),
                "checkpoints": len(states),
            }

    def sync(self):
        with self._lock:
            for fh in self._handles.values():
                fh.flush()
                os.fsync(fh.fileno())

    def close(self):
        with self._lock:
            if self._closed:
                return
            for fh in self._handles.values():
                fh.flush()
                os.fsync(fh.fileno())
                fh.close()
            self._handles.clear()
            self._closed = True


# ----------------------------------------------------------------------
# WAL-mode SQLite backend
# ----------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    stream  TEXT    NOT NULL,
    seq     INTEGER NOT NULL,
    kind    TEXT    NOT NULL,
    pane    INTEGER NOT NULL,
    payload BLOB    NOT NULL,
    PRIMARY KEY (stream, seq)
);
CREATE TABLE IF NOT EXISTS stream_state (
    stream           TEXT PRIMARY KEY,
    next_seq         INTEGER NOT NULL,
    last_sealed_pane INTEGER NOT NULL DEFAULT -1,
    checkpoint_seq   INTEGER NOT NULL DEFAULT -1,
    checkpoints      INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS pane_index (
    stream TEXT    NOT NULL,
    pane   INTEGER NOT NULL,
    seq    INTEGER NOT NULL,
    PRIMARY KEY (stream, pane)
);
"""


class SQLiteCheckpointStore(CheckpointStore):
    """All streams in one WAL-mode SQLite database.

    ``records`` is the log; ``stream_state`` keeps the per-stream
    high-water mark (next seq, last sealed pane, latest checkpoint seq
    and count) and ``pane_index`` maps each sealed pane to its record
    -- the resume-state tables that make recovery a couple of indexed
    reads rather than a full log scan.  Appends update the log and the
    state tables in one transaction, so a crash between them is
    impossible by construction.
    """

    def __init__(self, path: str):
        self._path = str(path)
        self._lock = threading.Lock()
        self._db = sqlite3.connect(self._path, check_same_thread=False)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA foreign_keys=ON")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._db.executescript(_SCHEMA)
        self._db.commit()
        self._closed = False

    def append(self, stream, kind, payload, *, pane=-1, compress=True):
        self._check_kind(kind)
        blob = codec.encode_value(payload, compress=compress)
        with self._lock:
            cur = self._db.cursor()
            row = cur.execute(
                "SELECT next_seq FROM stream_state WHERE stream=?",
                (stream,),
            ).fetchone()
            seq = row[0] if row else 0
            cur.execute(
                "INSERT INTO records (stream, seq, kind, pane, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (stream, seq, kind, int(pane), blob),
            )
            if row:
                cur.execute(
                    "UPDATE stream_state SET next_seq=? WHERE stream=?",
                    (seq + 1, stream),
                )
            else:
                cur.execute(
                    "INSERT INTO stream_state (stream, next_seq) "
                    "VALUES (?, ?)",
                    (stream, seq + 1),
                )
            if kind == "seal":
                cur.execute(
                    "UPDATE stream_state SET last_sealed_pane=? "
                    "WHERE stream=? AND last_sealed_pane<?",
                    (int(pane), stream, int(pane)),
                )
                cur.execute(
                    "INSERT OR REPLACE INTO pane_index (stream, pane, seq)"
                    " VALUES (?, ?, ?)",
                    (stream, int(pane), seq),
                )
            elif kind == "state":
                cur.execute(
                    "UPDATE stream_state SET checkpoint_seq=?, "
                    "checkpoints=checkpoints+1 WHERE stream=?",
                    (seq, stream),
                )
            self._db.commit()
            return seq

    def records(self, stream, *, min_seq=0):
        with self._lock:
            rows = self._db.execute(
                "SELECT seq, kind, pane, payload FROM records "
                "WHERE stream=? AND seq>=? ORDER BY seq",
                (stream, min_seq),
            ).fetchall()
        return [
            Record(stream, seq, kind, pane, codec.decode_value(blob))
            for seq, kind, pane, blob in rows
        ]

    def streams(self):
        with self._lock:
            rows = self._db.execute(
                "SELECT stream FROM stream_state ORDER BY stream"
            ).fetchall()
        return [row[0] for row in rows]

    def truncate(self, stream, below_seq):
        with self._lock:
            cur = self._db.execute(
                "DELETE FROM records WHERE stream=? AND seq<? "
                "AND kind!='open'",
                (stream, below_seq),
            )
            self._db.execute(
                "DELETE FROM pane_index WHERE stream=? AND seq<?",
                (stream, below_seq),
            )
            self._db.commit()
            return cur.rowcount

    def prune(self, stream, kind, *, max_pane=None, below_seq=None):
        self._check_kind(kind)
        clauses, params = ["stream=?", "kind=?"], [stream, kind]
        if max_pane is not None:
            clauses.append("pane<=?")
            params.append(int(max_pane))
        if below_seq is not None:
            clauses.append("seq<?")
            params.append(int(below_seq))
        with self._lock:
            cur = self._db.execute(
                f"DELETE FROM records WHERE {' AND '.join(clauses)}",
                params,
            )
            if kind == "seal" and max_pane is not None:
                self._db.execute(
                    "DELETE FROM pane_index WHERE stream=? AND pane<=?",
                    (stream, int(max_pane)),
                )
            self._db.commit()
            return cur.rowcount

    def resume_state(self, stream):
        with self._lock:
            row = self._db.execute(
                "SELECT next_seq, last_sealed_pane, checkpoint_seq, "
                "checkpoints FROM stream_state WHERE stream=?",
                (stream,),
            ).fetchone()
        if row is None:
            return {
                "next_seq": 0,
                "last_sealed_pane": -1,
                "checkpoint_seq": -1,
                "checkpoints": 0,
            }
        return {
            "next_seq": row[0],
            "last_sealed_pane": row[1],
            "checkpoint_seq": row[2],
            "checkpoints": row[3],
        }

    def sync(self):
        with self._lock:
            self._db.commit()
            self._db.execute("PRAGMA wal_checkpoint(PASSIVE)")

    def close(self):
        with self._lock:
            if self._closed:
                return
            self._db.commit()
            self._db.close()
            self._closed = True


def open_store(spec: str) -> CheckpointStore:
    """Resolve a store spec to a backend.

    ``"log:<directory>"`` or a bare directory path opens the
    append-only log backend; ``"sqlite:<file>"`` or a ``.db``/
    ``.sqlite`` path opens the SQLite backend.  An already-open store
    passes through unchanged.
    """
    if isinstance(spec, CheckpointStore):
        return spec
    if spec.startswith("log:"):
        return LogCheckpointStore(spec[4:])
    if spec.startswith("sqlite:"):
        return SQLiteCheckpointStore(spec[7:])
    if spec.endswith((".db", ".sqlite", ".sqlite3")):
        return SQLiteCheckpointStore(spec)
    return LogCheckpointStore(spec)
