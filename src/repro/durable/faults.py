"""Deterministic fault injection for the distributed tier.

:class:`FaultyTransport` wraps any real transport and perturbs its
traffic on a *send-count schedule*: kill worker ``w`` at its ``n``-th
outbound frame, drop specific frames, or delay replies.  Because the
async dispatcher ships frames from one selector thread in per-worker
FIFO order, send ordinals are deterministic for a given program -- the
same test run injects the same fault at the same point every time, on
every transport.

A "kill" models a crash/partition, not a clean shutdown: the
triggering frame is *lost* (as if the worker died mid-receive), every
later send raises :class:`TransportError`, pending replies from the
worker are swallowed, and ``alive()`` reports it dead.  For process
transports the real process may keep running unreachable -- exactly a
network partition -- and is cleaned up by the inner transport's
``stop``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.distributed.transport import (
    BaseTransport,
    TransportError,
    make_transport,
)

__all__ = ["FaultyTransport"]


class FaultyTransport(BaseTransport):
    """Wrap a transport with a deterministic drop/kill schedule.

    Parameters
    ----------
    inner:
        Transport name or instance (not yet started) to wrap.
    kill_after:
        ``{worker_id: n}`` -- the worker dies on its ``n``-th outbound
        frame (1-based); that frame is lost.
    drop_sends:
        ``{worker_id: ordinals}`` -- those outbound frames (1-based
        ordinals) are silently lost without killing the worker.
    """

    def __init__(
        self,
        inner,
        *,
        kill_after: Optional[Dict[int, int]] = None,
        drop_sends: Optional[Dict[int, Iterable[int]]] = None,
    ):
        # No super().__init__(): the wrapper shares the inner
        # transport's WireStats rather than attaching a second one.
        self._inner = make_transport(inner)
        self.stats = self._inner.stats
        self.name = f"faulty({self._inner.name})"
        self._kill_after = dict(kill_after or {})
        self._drop_sends = {
            worker: frozenset(ordinals)
            for worker, ordinals in (drop_sends or {}).items()
        }
        self._sends: Dict[int, int] = {}
        self._killed: set = set()

    @property
    def zero_copy(self) -> bool:
        return self._inner.zero_copy

    @property
    def killed(self) -> frozenset:
        """Workers the schedule has killed so far."""
        return frozenset(self._killed)

    def start(self, num_workers: int) -> None:
        self._inner.start(num_workers)

    def send(
        self, worker_id: int, frame: bytes, *, reply_expected: bool = True
    ) -> None:
        if worker_id in self._killed:
            raise TransportError(f"worker {worker_id} is dead (injected)")
        ordinal = self._sends.get(worker_id, 0) + 1
        self._sends[worker_id] = ordinal
        kill_at = self._kill_after.get(worker_id)
        if kill_at is not None and ordinal >= kill_at:
            # Crash mid-receive: the frame is lost with the worker.
            self._killed.add(worker_id)
            return
        if ordinal in self._drop_sends.get(worker_id, ()):
            return
        self._inner.send(worker_id, frame, reply_expected=reply_expected)

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        return [
            (worker_id, reply)
            for worker_id, reply in self._inner.poll(timeout)
            if worker_id not in self._killed
        ]

    def alive(self, worker_id: int) -> bool:
        return (
            worker_id not in self._killed
            and self._inner.alive(worker_id)
        )

    @property
    def num_workers(self) -> int:
        return self._inner.num_workers

    def stop(self) -> None:
        self._inner.stop()
