"""repro: structure-aware VarOpt sampling.

A full reproduction of Cohen, Cormode, Duffield, *Structure-Aware
Sampling: Flexible and Accurate Summarization* (VLDB 2011 /
arXiv:1102.5146): variance-optimal weighted sampling whose samples are
spread over an order, hierarchy, or multi-dimensional product structure
so that range queries see near-zero discrepancy -- while keeping every
benefit of plain samples (unbiased arbitrary subset sums, tail bounds,
representative keys).

Quick start::

    import numpy as np
    from repro import Dataset, two_pass_summary
    from repro.datagen import generate_network_flows

    data = generate_network_flows()
    sample = two_pass_summary(data, s=1000, rng=np.random.default_rng(0))
    estimate = sample.query(some_box)
"""

from repro.core import (
    Dataset,
    SampleSummary,
    StreamVarOpt,
    StreamingThreshold,
    ipps_probabilities,
    ipps_threshold,
    pair_aggregate,
    pair_aggregate_values,
    poisson_summary,
    stream_varopt_summary,
    varopt_sample,
    varopt_summary,
)
from repro.aware import (
    build_kd_hierarchy,
    deterministic_order_sample,
    disjoint_aware_summary,
    hierarchy_aware_summary,
    order_aware_summary,
    product_aware_summary,
    systematic_summary,
    uniform_grid_sample,
)
from repro.twopass import TwoPassSampler, two_pass_summary
from repro.structures import (
    BitHierarchy,
    Box,
    ExplicitHierarchy,
    MultiRangeQuery,
    OrderedDomain,
    ProductDomain,
)
from repro.summaries import (
    DyadicSketchSummary,
    ExactSummary,
    QDigestSummary,
    StreamingQDigest,
    WaveletSummary,
)
from repro.engine import ShardedBuild, build_sharded, shard_dataset
from repro.engine import registry as method_registry
from repro.stream import (
    BufferedRebuildSummary,
    MicroBatch,
    StreamEngine,
    sliding,
    tumbling,
)
from repro.distributed import (
    Coordinator,
    DistributedBuild,
    DistributedIngest,
    QueryFrontend,
    distributed_build,
)

__version__ = "1.3.0"

__all__ = [
    "Dataset",
    "SampleSummary",
    "StreamVarOpt",
    "StreamingThreshold",
    "ipps_probabilities",
    "ipps_threshold",
    "pair_aggregate",
    "pair_aggregate_values",
    "poisson_summary",
    "stream_varopt_summary",
    "varopt_sample",
    "varopt_summary",
    "build_kd_hierarchy",
    "deterministic_order_sample",
    "uniform_grid_sample",
    "StreamingQDigest",
    "disjoint_aware_summary",
    "hierarchy_aware_summary",
    "order_aware_summary",
    "product_aware_summary",
    "systematic_summary",
    "TwoPassSampler",
    "two_pass_summary",
    "BitHierarchy",
    "Box",
    "ExplicitHierarchy",
    "MultiRangeQuery",
    "OrderedDomain",
    "ProductDomain",
    "DyadicSketchSummary",
    "ExactSummary",
    "QDigestSummary",
    "WaveletSummary",
    "ShardedBuild",
    "build_sharded",
    "method_registry",
    "shard_dataset",
    "BufferedRebuildSummary",
    "MicroBatch",
    "StreamEngine",
    "sliding",
    "tumbling",
    "Coordinator",
    "DistributedBuild",
    "DistributedIngest",
    "QueryFrontend",
    "distributed_build",
    "__version__",
]
