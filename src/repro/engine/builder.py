"""Shard-parallel summary construction folded with mergeable summaries.

``build_sharded`` is the engine's entry point: partition a dataset
(:mod:`repro.engine.shard`), build one summary per shard -- in a
process pool when possible, serially otherwise -- and fold the shard
summaries into one with the mergeable-summary protocol
(``merge`` / ``from_shards``).  Because every merge preserves
Horvitz-Thompson unbiasedness (see
:meth:`repro.core.estimator.SampleSummary.merge`), the folded summary
is statistically equivalent to a monolithic build while the build
itself scales with the number of cores.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.estimator import SampleSummary
from repro.core.types import Dataset
from repro.engine import registry
from repro.engine.shard import shard_dataset

#: Upper bound on worker processes (leave headroom for the parent).
_MAX_DEFAULT_WORKERS = 8


def _build_shard_task(args):
    """Top-level (picklable) per-shard build used by the process pool."""
    name, shard, size, seed = args
    rng = np.random.default_rng(seed)
    return registry.build(name, shard, size, rng)


def fold_merge(
    summaries: Sequence,
    s: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
):
    """Fold shard summaries into one via the mergeable protocol.

    Samples get the size-targeted fold (each merge re-aggregates down
    to ``s`` keys); other summary types fold with plain ``merge``.
    """
    summaries = list(summaries)
    if not summaries:
        raise ValueError("nothing to merge")
    if all(isinstance(summary, SampleSummary) for summary in summaries):
        return SampleSummary.from_shards(summaries, s=s, rng=rng)
    merged = summaries[0]
    for summary in summaries[1:]:
        merged = merged.merge(summary)
    return merged


def fold_snapshots(
    snapshots: Sequence,
    *,
    size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
):
    """Fold per-pane / per-worker snapshots into one queryable summary.

    The shared fold used by the stream engine's window folds and the
    distributed coordinator's snapshot collection.  Empty snapshots
    are the merge identity -- and their placeholders (an empty exact
    store for buffered methods) need not even share the non-empty
    snapshots' summary type -- so they are dropped before folding; an
    all-empty fold returns the first snapshot unchanged.  Sample
    summaries fold with the size-targeted merge (re-aggregated down to
    ``size`` keys).
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise ValueError("nothing to fold")
    non_empty = [
        snap for snap in snapshots if getattr(snap, "size", 0) > 0
    ]
    if not non_empty:
        return snapshots[0]
    if len(non_empty) == 1:
        return non_empty[0]
    if all(isinstance(snap, SampleSummary) for snap in non_empty):
        return SampleSummary.from_shards(non_empty, s=size, rng=rng)
    return fold_merge(non_empty)


@dataclass
class ShardedBuild:
    """Outcome of a sharded build: the folded summary plus provenance."""

    summary: object
    num_shards: int
    shard_sizes: List[int] = field(default_factory=list)
    used_processes: bool = False


def build_sharded(
    method: Union[str, Callable],
    dataset: Dataset,
    s: int,
    rng: Optional[np.random.Generator] = None,
    *,
    num_shards: Optional[int] = None,
    strategy: str = "contiguous",
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> ShardedBuild:
    """Partition, build per shard (in parallel), and merge.

    Parameters
    ----------
    method:
        A registry name (required for process-parallel builds, since
        only the name crosses the process boundary) or a raw builder
        callable ``(dataset, s, rng) -> summary`` (built serially).
    dataset:
        The full dataset; each shard sees a row-disjoint subset over
        the same domain.
    s:
        Per-shard summary size, and the size the folded sample is
        re-aggregated down to.
    rng:
        Seeds the per-shard generators and the merge; omit for a
        nondeterministic build.
    num_shards:
        Defaults to the available parallelism (capped at 8).
    strategy:
        Sharding strategy (see :mod:`repro.engine.shard`).
    parallel:
        When False, or when ``method`` is a callable, shards build
        serially in-process.  Process-pool failures (restricted
        environments, unpicklable payloads) degrade to the serial path
        instead of erroring.
    """
    if rng is None:
        rng = np.random.default_rng()
    if num_shards is None:
        num_shards = max(1, min(os.cpu_count() or 1, _MAX_DEFAULT_WORKERS))
    shards = shard_dataset(dataset, num_shards, strategy=strategy)
    if not shards:
        shards = [dataset]
    if (
        len(shards) > 1
        and isinstance(method, str)
        and not registry.is_mergeable(method)
    ):
        raise ValueError(
            f"method {method!r} does not build mergeable summaries; "
            "use num_shards=1 or a mergeable method"
        )
    seeds = [int(seed) for seed in rng.integers(0, 2**63, size=len(shards))]

    builder: Optional[Callable] = None if isinstance(method, str) else method
    summaries = None
    used_processes = False
    if parallel and builder is None and len(shards) > 1:
        tasks = [
            (method, shard, s, seed) for shard, seed in zip(shards, seeds)
        ]
        workers = max_workers or min(len(shards), _MAX_DEFAULT_WORKERS)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                summaries = list(pool.map(_build_shard_task, tasks))
            used_processes = True
        except (BrokenProcessPool, pickle.PicklingError, OSError,
                ImportError, KeyError):
            # Pool infrastructure unavailable (restricted sandbox,
            # unpicklable payload), or a spawn-started worker missing a
            # parent-only registration (unknown names were already
            # rejected above, so a worker KeyError means registry
            # divergence): degrade to the serial path.  Builder errors
            # raised inside a worker propagate as-is.
            summaries = None
    if summaries is None:
        if builder is None:
            builder = registry.get(method)
        summaries = [
            builder(shard, s, np.random.default_rng(seed))
            for shard, seed in zip(shards, seeds)
        ]

    shard_sizes = [getattr(summary, "size", 0) for summary in summaries]
    merged = fold_merge(summaries, s=s, rng=rng)
    return ShardedBuild(
        summary=merged,
        num_shards=len(shards),
        shard_sizes=shard_sizes,
        used_processes=used_processes,
    )
