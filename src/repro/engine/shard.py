"""Dataset sharding: split a :class:`Dataset` into build partitions.

Shards are themselves datasets over the *same* domain, so any
registered builder runs on a shard unchanged.  Because the mergeable
summaries (:mod:`repro.summaries.base`) only require shard-disjoint
key *rows*, every strategy here partitions the row set:

* ``contiguous`` -- equal slices in storage order (best locality; the
  right choice when rows arrive pre-clustered by time or key).
* ``hashed`` -- rows assigned by a stable mix of their coordinates
  (balances skewed inputs; deterministic across runs and processes).
* ``interleaved`` -- round-robin by row index (cheap and balanced when
  storage order is already random).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.types import Dataset

STRATEGIES = ("contiguous", "hashed", "interleaved")

#: Odd 64-bit multipliers for the coordinate mix (splitmix64 constants).
_MIX_MULT = np.uint64(0x9E3779B97F4A7C15)
_MIX_MULT2 = np.uint64(0xBF58476D1CE4E5B9)


def _hash_rows(coords: np.ndarray, seed: int) -> np.ndarray:
    """Stable 64-bit mix of each coordinate row (vectorized)."""
    with np.errstate(over="ignore"):
        acc = np.full(coords.shape[0], np.uint64(seed) * _MIX_MULT2 + _MIX_MULT)
        for axis in range(coords.shape[1]):
            column = coords[:, axis].astype(np.uint64)
            acc ^= (column + _MIX_MULT) * _MIX_MULT2
            acc ^= acc >> np.uint64(31)
            acc *= _MIX_MULT
        acc ^= acc >> np.uint64(29)
    return acc


def shard_indices(
    dataset: Dataset,
    num_shards: int,
    strategy: str = "contiguous",
    seed: int = 0,
) -> List[np.ndarray]:
    """Row-index arrays of each shard (some may be empty)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; have {STRATEGIES}"
        )
    n = dataset.n
    if strategy == "contiguous":
        return [idx for idx in np.array_split(np.arange(n), num_shards)]
    if strategy == "interleaved":
        return [np.arange(k, n, num_shards) for k in range(num_shards)]
    assignment = _hash_rows(dataset.coords, seed) % np.uint64(num_shards)
    return [np.flatnonzero(assignment == k) for k in range(num_shards)]


def shard_dataset(
    dataset: Dataset,
    num_shards: int,
    strategy: str = "contiguous",
    seed: int = 0,
    drop_empty: bool = True,
) -> List[Dataset]:
    """Partition a dataset into shard datasets over the same domain.

    Contiguous shards are materialized as slices -- zero-copy views of
    the (already validated, contiguous) parent arrays -- instead of
    gathering through an index array per shard.
    """
    if strategy == "contiguous":
        # Same split points as np.array_split(arange(n), num_shards).
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        base, extra = divmod(dataset.n, num_shards)
        sizes = np.full(num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        cuts = np.concatenate(([0], np.cumsum(sizes)))
        shards = [
            dataset.subset(slice(int(lo), int(hi)))
            for lo, hi in zip(cuts[:-1], cuts[1:])
        ]
    else:
        shards = [
            dataset.subset(idx)
            for idx in shard_indices(dataset, num_shards, strategy, seed)
        ]
    if drop_empty:
        shards = [shard for shard in shards if shard.n]
    return shards
