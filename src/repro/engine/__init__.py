"""Sharded build/merge engine and method registry.

The engine turns the repo's summaries into scalable infrastructure:

* :mod:`repro.engine.registry` -- declarative name -> builder registry
  shared by the harness, examples and benchmarks.
* :mod:`repro.engine.shard` -- partition a dataset into build shards.
* :mod:`repro.engine.builder` -- build per-shard summaries in parallel
  and fold them with the mergeable-summary protocol.
"""

from repro.engine import registry
from repro.engine.builder import ShardedBuild, build_sharded, fold_merge
from repro.engine.registry import available, build, get, register
from repro.engine.shard import shard_dataset, shard_indices

__all__ = [
    "ShardedBuild",
    "available",
    "build",
    "build_sharded",
    "fold_merge",
    "get",
    "register",
    "registry",
    "shard_dataset",
    "shard_indices",
]
