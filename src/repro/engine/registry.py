"""Declarative name -> summary-builder registry.

Every summarization method the repo knows is registered here under a
stable string name with the uniform signature
``builder(dataset, size, rng) -> summary``.  The experiment harness,
the examples, the benchmarks and the sharded build engine all resolve
methods through this registry instead of hand-wiring imports, and the
process-pool builder ships only the *name* across process boundaries
(builders themselves are often lambdas/closures and need not pickle).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.types import Dataset

#: A summary factory: (dataset, size, rng) -> summary object.
Builder = Callable[[Dataset, int, np.random.Generator], object]

_REGISTRY: Dict[str, Builder] = {}
_MERGEABLE: Dict[str, bool] = {}
# Wire codecs: stable tag <-> summary class, used by the distributed
# subsystem to frame summaries for transport (repro.distributed.codec).
_CODEC_CLASSES: Dict[str, type] = {}
_CODEC_TAGS: Dict[type, str] = {}

#: Read-only live view of the registry (what the harness exposes as
#: ``METHODS``).
REGISTRY = MappingProxyType(_REGISTRY)


def register(
    name: str,
    builder: Optional[Builder] = None,
    *,
    overwrite: bool = False,
    mergeable: bool = True,
):
    """Register a builder under ``name``; usable as a decorator.

    ``mergeable`` declares whether the built summaries implement the
    mergeable-summary protocol; the sharded build engine consults it
    to fail fast instead of after an expensive multi-shard build.

    >>> @register("my-method")
    ... def build(dataset, size, rng): ...
    """
    def _add(fn: Builder) -> Builder:
        if not overwrite and name in _REGISTRY:
            raise KeyError(f"method {name!r} is already registered")
        _REGISTRY[name] = fn
        _MERGEABLE[name] = bool(mergeable)
        return fn

    if builder is None:
        return _add
    return _add(builder)


def is_mergeable(name: str) -> bool:
    """Whether summaries built by ``name`` support ``merge``."""
    get(name)  # raise the standard KeyError for unknown names
    return _MERGEABLE.get(name, True)


def get(name: str) -> Builder:
    """Look up a builder by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; have {available()}"
        ) from None


def available() -> List[str]:
    """Sorted names of all registered methods."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Wire-codec registration (summary serialization for repro.distributed)
# ----------------------------------------------------------------------

def register_codec(tag: str, cls: type, *, overwrite: bool = False) -> None:
    """Register a summary class under a stable wire tag.

    The class must implement the codec hooks ``to_state()`` /
    ``from_state(state)`` (bit-exact round trip).  The tag is what goes
    on the wire, so it must stay stable across versions and processes.
    """
    if not overwrite and tag in _CODEC_CLASSES:
        raise KeyError(f"codec tag {tag!r} is already registered")
    if not hasattr(cls, "to_state") or not hasattr(cls, "from_state"):
        raise TypeError(
            f"{cls.__name__} lacks the to_state/from_state codec hooks"
        )
    _CODEC_CLASSES[tag] = cls
    _CODEC_TAGS[cls] = tag


def codec_class(tag: str) -> type:
    """The summary class registered under a wire tag."""
    try:
        return _CODEC_CLASSES[tag]
    except KeyError:
        raise KeyError(
            f"unknown codec tag {tag!r}; have {codecs_available()}"
        ) from None


def codec_tag(summary) -> str:
    """The wire tag of a summary instance (or class).

    Looks up the *exact* type -- a subclass with different state must
    register its own tag.
    """
    cls = summary if isinstance(summary, type) else type(summary)
    try:
        return _CODEC_TAGS[cls]
    except KeyError:
        raise KeyError(
            f"no codec registered for {cls.__name__}; "
            f"have {codecs_available()}"
        ) from None


def codecs_available() -> List[str]:
    """Sorted wire tags of all registered codecs."""
    return sorted(_CODEC_CLASSES)


def build(
    name: str, dataset: Dataset, size: int, rng: np.random.Generator
):
    """Build one summary by method name."""
    return get(name)(dataset, size, rng)


def _register_defaults() -> None:
    """Register the repo's built-in methods (import-cycle safe)."""
    from repro.aware.product_sampler import product_aware_summary
    from repro.core.poisson import poisson_summary
    from repro.core.varopt import stream_varopt_summary, varopt_summary
    from repro.summaries.exact import ExactSummary
    from repro.summaries.qdigest import QDigestSummary
    from repro.summaries.qdigest_stream import StreamingQDigest
    from repro.summaries.sketch import DEFAULT_HASH_SEED, DyadicSketchSummary
    from repro.summaries.wavelet import WaveletSummary
    from repro.twopass.two_pass import two_pass_summary

    def _qdigest_stream(data, s, rng):
        """Classic streaming 1-D q-digest, fed in storage order."""
        digest = StreamingQDigest.for_domain(data.domain, s)
        digest.update(data.coords, data.weights)
        return digest

    # The paper's `aware`: two passes, guide sample 5s, kd partition.
    register("aware", lambda data, s, rng: two_pass_summary(data, s, rng))
    # Main-memory structure-aware variant (Section 4).
    register("aware-mm",
             lambda data, s, rng: product_aware_summary(data, s, rng))
    # The paper's `obliv`: one-pass stream VarOpt.
    register("obliv", lambda data, s, rng: stream_varopt_summary(data, s, rng))
    # Offline (random-order pair aggregation) VarOpt.
    register("varopt", lambda data, s, rng: varopt_summary(data, s, rng))
    register("poisson", lambda data, s, rng: poisson_summary(data, s, rng))
    register("wavelet", lambda data, s, rng: WaveletSummary(data, s))
    register("qdigest", lambda data, s, rng: QDigestSummary(data, s))
    # The classic streaming q-digest [22] (1-D), deterministic and
    # natively incremental; the stream engine's q-digest of choice.
    register("qdigest-stream", _qdigest_stream)
    # Sketch hash functions come from the shared default seed, so
    # independently built shard/pane sketches merge by table addition.
    register("sketch",
             lambda data, s, rng: DyadicSketchSummary(
                 data, s, hash_seed=DEFAULT_HASH_SEED))
    # Ground truth, for harness uniformity ("size" is the full data).
    register("exact", lambda data, s, rng: ExactSummary(data))

    # Wire codecs: one stable tag per summary class the repo ships.
    # Every sampling method (aware, obliv, varopt, poisson, ...) builds
    # a SampleSummary, so one "sample" codec covers them all.
    from repro.core.estimator import SampleSummary
    from repro.core.varopt import StreamVarOpt

    register_codec("sample", SampleSummary)
    register_codec("varopt-reservoir", StreamVarOpt)
    register_codec("exact", ExactSummary)
    register_codec("qdigest", QDigestSummary)
    register_codec("qdigest-stream", StreamingQDigest)
    register_codec("wavelet", WaveletSummary)
    register_codec("sketch", DyadicSketchSummary)
    # Telemetry histograms ship worker -> coordinator over the same
    # wire as summaries (merge = bucket-count addition).
    from repro.obs.metrics import Histogram as _ObsHistogram

    register_codec("obs-hist", _ObsHistogram)
    # Flat interval tables (the shared hierarchy/q-digest store) ship
    # over the same transports, column-exact.
    from repro.structures.intervals import IntervalTable

    register_codec("interval-table", IntervalTable)


_register_defaults()
