"""Streaming ingestion subsystem.

Everything needed to summarize a live feed:

* :mod:`repro.stream.types` -- the :class:`MicroBatch` container.
* :mod:`repro.stream.incremental` -- incremental builders for every
  registry method (native streamers + the buffered-rebuild adapter)
  and deterministic per-pane seed derivation.
* :mod:`repro.stream.engine` -- :class:`StreamEngine`: micro-batch
  ingestion, landmark / tumbling / sliding event-time windows built
  from mergeable per-pane summaries, and live (batched) range-sum
  queries.
"""

from repro.stream.engine import StreamEngine, Window, sliding, tumbling
from repro.stream.incremental import (
    NATIVE_STREAMERS,
    BufferedRebuildSummary,
    derive_seed,
    incremental_summary,
)
from repro.stream.types import MicroBatch

__all__ = [
    "BufferedRebuildSummary",
    "MicroBatch",
    "NATIVE_STREAMERS",
    "StreamEngine",
    "Window",
    "derive_seed",
    "incremental_summary",
    "sliding",
    "tumbling",
]
