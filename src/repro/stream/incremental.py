"""Incremental summary construction: native streamers + buffered rebuilds.

Two ways to keep a summary of a live feed:

* **Native** -- the structure itself is updatable: the VarOpt reservoir
  (``obliv``), the exact store (``exact``), Count-Sketch tables
  (``sketch``), and the classic streaming q-digest
  (``qdigest-stream``).  Updates are cheap and snapshots are
  effectively free.
* **Buffered rebuild** -- batch-only builders (the structure-aware
  samplers, wavelets, the 2-D q-digest) stream through
  :class:`BufferedRebuildSummary`, which buffers the feed and re-runs
  the batch build with *geometric amortization*: an automatic rebuild
  fires when the buffered data has grown by ``growth`` (default 2x)
  since the last build, so total rebuild work over a stream of n items
  is ``O(build(n) * growth / (growth - 1))`` -- a constant factor over
  one monolithic build -- instead of one build per batch.

:func:`incremental_summary` resolves a registry method name to the
right one of the two, so the stream engine routes *every* registered
method without knowing which camp it is in.

Seed derivation
---------------
Streaming reproducibility requires that no two consumers share one
``Generator`` (shared state makes "identically seeded" engines
diverge; see :class:`repro.core.varopt.StreamVarOpt`).  Every
randomized component therefore derives an independent child seed with
:func:`derive_seed` from the engine's root seed and a stable path --
``(method, pane_index)`` for pane samplers, ``("fold", method, ...)``
for merge randomness -- so two engines built from the same root seed
and fed the same stream are reproducibly identical.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Union

import numpy as np

from repro.core.types import Dataset
from repro.core.varopt import StreamVarOpt
from repro.engine import registry
from repro.summaries.base import IncrementalSummary
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest_stream import StreamingQDigest
from repro.summaries.sketch import DEFAULT_HASH_SEED, DyadicSketchSummary

_SEED_MASK = (1 << 63) - 1


def derive_seed(root: int, *path) -> int:
    """Deterministic 64-bit child seed from a root seed and a path.

    ``path`` elements may be ints or strings (strings are CRC32-mixed,
    so the derivation is stable across processes and Python versions).
    Distinct paths give statistically independent seeds
    (:class:`numpy.random.SeedSequence` underneath).
    """
    words = [int(root) & _SEED_MASK]
    for part in path:
        if isinstance(part, str):
            words.append(zlib.crc32(part.encode("utf-8")))
        else:
            words.append(int(part) & _SEED_MASK)
    state = np.random.SeedSequence(words).generate_state(1, dtype=np.uint64)
    return int(state[0])


class BufferedRebuildSummary(IncrementalSummary):
    """Stream adapter for batch-only builders with geometric rebuilds.

    Parameters
    ----------
    builder:
        A registry method name or a raw builder callable
        ``(dataset, size, rng) -> summary``.
    domain:
        The key domain of the stream (shards of one stream share it).
    size:
        Summary size target passed to every rebuild.
    seed:
        Root seed; rebuild ``k`` uses the derived child seed
        ``derive_seed(seed, "rebuild", k)``, so the adapter is
        reproducible under identical update sequences.
    growth:
        Automatic-rebuild spacing: rebuild when the buffer exceeds
        ``growth`` times the size at the last build.
    min_buffer:
        No automatic rebuild before this many items (snapshot-forced
        rebuilds ignore it).
    stale_fraction:
        Staleness :meth:`snapshot` tolerates: a snapshot reuses the
        last build while the unbuilt tail is at most this fraction of
        the built size.  0 (default) means snapshots are always fresh;
        raising it trades bounded staleness for fewer rebuilds under
        frequent queries.
    """

    def __init__(
        self,
        builder: Union[str, Callable],
        domain,
        size: int,
        seed: int = 0,
        *,
        growth: float = 2.0,
        min_buffer: int = 1024,
        stale_fraction: float = 0.0,
    ):
        if growth <= 1.0:
            raise ValueError("growth must be > 1 for geometric amortization")
        if stale_fraction < 0:
            raise ValueError("stale_fraction must be non-negative")
        self._builder = (
            registry.get(builder) if isinstance(builder, str) else builder
        )
        self._domain = domain
        self._size = int(size)
        self._seed = int(seed)
        self._growth = float(growth)
        self._min_buffer = int(min_buffer)
        self._stale_fraction = float(stale_fraction)
        # The buffered stream itself is an incremental exact store.
        self._buffer = ExactSummary.empty(domain.dims)
        self._built = None
        self._built_n = 0
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Incremental summary protocol
    # ------------------------------------------------------------------
    def update(self, keys, weights) -> None:
        """Buffer one micro-batch; rebuild when the buffer has doubled."""
        self._buffer.update(keys, weights)
        threshold = max(self._min_buffer, int(self._growth * self._built_n))
        if self.items_buffered >= threshold:
            self._rebuild()

    def snapshot(self):
        """The batch summary of (almost) everything buffered so far.

        Rebuilds first when the unbuilt tail exceeds the configured
        ``stale_fraction``; with the default 0 the snapshot always
        reflects every update.  An empty stream snapshots to an empty
        exact store (zero on every query).
        """
        if self.items_buffered == 0:
            return ExactSummary.empty(self._domain.dims)
        tail = self.items_buffered - self._built_n
        if self._built is None or tail > self._stale_fraction * self._built_n:
            self._rebuild()
        return self._built

    @property
    def version(self) -> int:
        """Counter bumped on every buffered batch (the buffer's)."""
        return self._buffer.version

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def items_buffered(self) -> int:
        """Total items buffered (built + unbuilt tail)."""
        return self._buffer.size

    @property
    def rebuild_count(self) -> int:
        """Number of batch builds run so far (the amortization metric)."""
        return self._rebuilds

    def _rebuild(self) -> None:
        dataset = Dataset(
            coords=self._buffer.coords,
            weights=self._buffer.weights,
            domain=self._domain,
        )
        rng = np.random.default_rng(
            derive_seed(self._seed, "rebuild", self._rebuilds)
        )
        self._built = self._builder(dataset, self._size, rng)
        self._built_n = dataset.n
        self._rebuilds += 1


# ----------------------------------------------------------------------
# Method-name resolution
# ----------------------------------------------------------------------

def _make_obliv(domain, size: int, seed: int) -> StreamVarOpt:
    return StreamVarOpt(size, np.random.default_rng(seed))


def _make_exact(domain, size: int, seed: int) -> ExactSummary:
    return ExactSummary.empty(domain.dims)


def _make_sketch(domain, size: int, seed: int) -> DyadicSketchSummary:
    # Hash functions come from the global default seed -- NOT from the
    # pane seed -- so panes, shards and batch builds all merge.
    return DyadicSketchSummary.for_domain(
        domain, size, hash_seed=DEFAULT_HASH_SEED
    )


def _make_qdigest_stream(domain, size: int, seed: int) -> StreamingQDigest:
    return StreamingQDigest.for_domain(domain, size)


#: Registry method names with a native streaming implementation.
NATIVE_STREAMERS: Dict[str, Callable] = {
    "obliv": _make_obliv,
    "exact": _make_exact,
    "sketch": _make_sketch,
    "qdigest-stream": _make_qdigest_stream,
}


def incremental_summary(
    name: str,
    domain,
    size: int,
    seed: int = 0,
    *,
    stale_fraction: float = 0.0,
    growth: float = 2.0,
) -> IncrementalSummary:
    """An incremental summary for any registered method name.

    Natively streaming methods get their dedicated structure; every
    other registered method streams through the buffered-rebuild
    adapter.  Unknown names raise the registry's standard ``KeyError``.
    """
    if name in NATIVE_STREAMERS:
        registry.get(name)  # uniform unknown-name behavior
        return NATIVE_STREAMERS[name](domain, size, seed)
    return BufferedRebuildSummary(
        registry.get(name),
        domain,
        size,
        seed=seed,
        stale_fraction=stale_fraction,
        growth=growth,
    )
