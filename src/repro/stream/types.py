"""Micro-batch container for the streaming layer.

The dataclass itself needs only NumPy and the shared batch-coercion
helper.  (Importing it still runs ``repro.stream.__init__`` and hence
the engine module, like any submodule import -- the split buys a small
surface, not import isolation.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.summaries.base import coerce_batch


@dataclass(frozen=True)
class MicroBatch:
    """One micro-batch of weighted keys, optionally timestamped.

    Attributes
    ----------
    coords:
        ``(n, d)`` integer coordinates of the batch's keys.
    weights:
        ``(n,)`` non-negative weights.
    timestamp:
        Event time of the batch (its latest event), used for window
        assignment.  ``None`` means "no event time": the engine falls
        back to arrival time (one time unit per batch).  A batch with
        only a batch-level timestamp is assigned to a window pane
        whole.
    timestamps:
        Optional per-item event times (``(n,)``, non-decreasing).
        When present, the engine splits a batch that straddles a pane
        boundary at the boundary instead of assigning it wholesale, so
        window edges are item-granular.  ``timestamp`` defaults to the
        last entry.
    """

    coords: np.ndarray
    weights: np.ndarray
    timestamp: Optional[float] = None
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self):
        coords, weights = coerce_batch(self.coords, self.weights)
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "weights", weights)
        if self.timestamps is not None:
            stamps = np.atleast_1d(
                np.asarray(self.timestamps, dtype=float)
            )
            if stamps.shape[0] != weights.shape[0]:
                raise ValueError(
                    "timestamps and weights must have matching length"
                )
            if stamps.size > 1 and np.any(np.diff(stamps) < 0):
                raise ValueError(
                    "per-item timestamps must be non-decreasing"
                )
            object.__setattr__(self, "timestamps", stamps)
            if self.timestamp is None and stamps.size:
                object.__setattr__(
                    self, "timestamp", float(stamps[-1])
                )

    @classmethod
    def coerce(cls, batch) -> "MicroBatch":
        """Normalize any accepted batch shape to a :class:`MicroBatch`.

        Accepts a ``MicroBatch`` (returned as-is), a
        :class:`~repro.core.types.Dataset` (no event time), or a
        ``(coords, weights[, timestamp])`` tuple.  The single
        batch-shape contract shared by the stream engine and the
        distributed ingest path.
        """
        from repro.core.types import Dataset

        if isinstance(batch, cls):
            return batch
        if isinstance(batch, Dataset):
            return cls(batch.coords, batch.weights)
        if isinstance(batch, tuple) and len(batch) in (2, 3):
            ts = float(batch[2]) if len(batch) == 3 else None
            return cls(batch[0], batch[1], ts)
        raise TypeError(
            "batch must be a MicroBatch, a Dataset, or a "
            "(coords, weights[, timestamp]) tuple"
        )

    @property
    def n(self) -> int:
        """Number of items in the batch."""
        return self.weights.shape[0]

    def __len__(self) -> int:
        return self.n
