"""Micro-batch container for the streaming layer.

The dataclass itself needs only NumPy and the shared batch-coercion
helper.  (Importing it still runs ``repro.stream.__init__`` and hence
the engine module, like any submodule import -- the split buys a small
surface, not import isolation.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.summaries.base import coerce_batch


@dataclass(frozen=True)
class MicroBatch:
    """One micro-batch of weighted keys, optionally timestamped.

    Attributes
    ----------
    coords:
        ``(n, d)`` integer coordinates of the batch's keys.
    weights:
        ``(n,)`` non-negative weights.
    timestamp:
        Event time of the batch (its latest event), used for window
        assignment.  ``None`` means "no event time": the engine falls
        back to arrival time (one time unit per batch).  Batches are
        assigned to window panes whole, so emit batches that do not
        straddle pane boundaries when exact window edges matter.
    """

    coords: np.ndarray
    weights: np.ndarray
    timestamp: Optional[float] = None

    def __post_init__(self):
        coords, weights = coerce_batch(self.coords, self.weights)
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "weights", weights)

    @property
    def n(self) -> int:
        """Number of items in the batch."""
        return self.weights.shape[0]

    def __len__(self) -> int:
        return self.n
