"""The streaming ingestion engine: micro-batches in, live answers out.

:class:`StreamEngine` consumes micro-batches from any iterable or
generator source, routes them to one or more registered summarization
methods (resolved through :mod:`repro.engine.registry` via
:func:`repro.stream.incremental.incremental_summary`), and answers
range-sum queries *live* -- over everything seen (landmark mode) or
over tumbling / sliding event-time windows.

Windows are built from the mergeable-summary protocol and nothing
else: a window is a list of per-pane summaries, each pane ingesting
its slice of the stream incrementally, folded with ``from_shards`` /
``merge`` at query time.  That is the same statistical machinery as
the sharded batch engine -- panes are time-shards -- so every fold
keeps the Horvitz-Thompson unbiasedness of sample summaries and the
exactness/error guarantees of the dedicated ones.

Reproducibility: the engine owns a root seed and derives an
independent child seed per (method, pane) and per fold (see
:func:`repro.stream.incremental.derive_seed`), so two engines built
from the same seed and fed the same stream report identical answers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import obs as _obs
from repro.engine.builder import fold_snapshots
from repro.stream.incremental import derive_seed, incremental_summary
from repro.stream.types import MicroBatch
from repro.structures.ranges import Box, compile_query_plan


@dataclass(frozen=True)
class Window:
    """An event-time window policy.

    ``width`` is the window length; ``pane`` the pane length (the
    granularity at which per-pane summaries are kept and folded).
    Batches are assigned to panes whole, by their timestamp.
    """

    kind: str  # "tumbling" | "sliding"
    width: float
    pane: float

    def __post_init__(self):
        if self.kind not in ("tumbling", "sliding"):
            raise ValueError(f"unknown window kind: {self.kind!r}")
        if self.width <= 0 or self.pane <= 0:
            raise ValueError("window width and pane must be positive")
        if self.pane > self.width:
            raise ValueError("pane must not exceed the window width")

    @property
    def panes_per_window(self) -> int:
        """Number of panes a full window folds over."""
        return max(1, int(math.ceil(self.width / self.pane - 1e-9)))


def tumbling(width: float) -> Window:
    """A tumbling window: the stream is cut into [k*w, (k+1)*w) spans.

    ``query_now`` covers the *current* (in-progress) window;
    :meth:`StreamEngine.last_window` exposes the most recently
    completed one.
    """
    return Window("tumbling", float(width), float(width))


def sliding(width: float, slide: float) -> Window:
    """A sliding window of length ``width`` advancing by ``slide``.

    Implemented with the classic panes decomposition: per-``slide``
    pane summaries, folded over the last ``ceil(width / slide)`` panes
    at query time.  The window edge is pane-granular: the oldest pane
    contributes whole once any part of it is inside ``(now - width,
    now]``.
    """
    return Window("sliding", float(width), float(slide))


class _Pane:
    """One time-slice of the stream: live builders, then frozen snaps."""

    __slots__ = ("index", "start", "end", "incs", "sealed", "_snap_cache")

    def __init__(self, index: int, start: float, end: float, incs: Dict):
        self.index = index
        self.start = start
        self.end = end  # inf for the landmark pane
        self.incs = incs
        self.sealed: Optional[Dict[str, object]] = None
        self._snap_cache: Dict[str, tuple] = {}

    def snapshot(self, method: str):
        """The pane's summary for ``method`` (cached per inc version)."""
        if self.sealed is not None:
            return self.sealed[method]
        inc = self.incs[method]
        cached = self._snap_cache.get(method)
        if cached is not None and cached[0] == inc.version:
            return cached[1]
        snap = inc.snapshot()
        self._snap_cache[method] = (inc.version, snap)
        return snap

    def seal(self) -> None:
        """Freeze every method's snapshot and drop the live builders."""
        if self.sealed is not None:
            return
        self.sealed = {name: self.snapshot(name) for name in self.incs}
        self.incs = {}
        self._snap_cache = {}


class StreamEngine:
    """Live summarization of a micro-batch stream.

    Parameters
    ----------
    domain:
        The :class:`~repro.structures.product.ProductDomain` the
        stream's keys live in.
    methods:
        One registry method name or a sequence of names; every batch is
        routed to all of them.
    size:
        Per-method summary size (per pane; window folds re-aggregate
        sample summaries back down to it).
    window:
        ``None`` for landmark mode (one summary over everything seen),
        or a :func:`tumbling` / :func:`sliding` window.
    seed:
        Root seed for all randomness (pane samplers, fold merges);
        engines sharing a seed and a stream are identical.
    stale_fraction:
        Snapshot staleness tolerated by buffered-rebuild methods (see
        :class:`~repro.stream.incremental.BufferedRebuildSummary`).
    on_pane_sealed:
        Optional hand-off hook ``(pane_index, {method: summary})``
        invoked whenever a pane is sealed (the stream clock left it
        for good).  Sealed summaries are frozen and mergeable, so the
        hook is the natural shipping point for distributed pane
        aggregation: serialize them with
        :func:`repro.distributed.codec.to_bytes` and fold upstream.
        A pane that received no data seals with empty summaries.

    Timestamps
    ----------
    Batches may carry event-time stamps (non-decreasing; out-of-order
    batches are rejected).  Unstamped batches tick an arrival clock of
    one time unit per batch, so window widths are then measured in
    batches.  A windowed batch with *per-item* timestamps
    (:attr:`~repro.stream.types.MicroBatch.timestamps`) that straddles
    a pane boundary is split at the boundary, so window edges are
    item-granular; with only a batch-level stamp it is assigned to its
    pane whole.
    """

    def __init__(
        self,
        domain,
        methods: Union[str, Sequence[str]],
        size: int,
        *,
        window: Optional[Window] = None,
        seed: int = 0,
        stale_fraction: float = 0.0,
        on_pane_sealed=None,
        registry=None,
    ):
        if isinstance(methods, str):
            methods = [methods]
        self._methods = list(methods)
        if not self._methods:
            raise ValueError("need at least one method")
        self._domain = domain
        self._size = int(size)
        self._window = window
        self._seed = int(seed)
        self._stale_fraction = float(stale_fraction)
        self._on_pane_sealed = on_pane_sealed
        self._panes: List[_Pane] = []
        self._last_completed: Optional[List[_Pane]] = None
        self._now: Optional[float] = None
        self._items = 0
        self._batches = 0
        self._fold_cache: Dict[str, tuple] = {}
        # Telemetry (repro.obs): the ingest hot path pays one enabled
        # branch per batch; everything else records only when the
        # registry is enabled.
        self._obs = registry if registry is not None else _obs.get_registry()
        self._obs_enabled = self._obs.enabled
        self._items_ctr = self._obs.counter("stream.items_ingested")
        self._batches_ctr = self._obs.counter("stream.batches_ingested")
        self._ingest_hist = self._obs.histogram("stream.ingest_seconds")
        self._seal_hist = self._obs.histogram("stream.pane_seal_seconds")
        self._seals_ctr = self._obs.counter("stream.panes_sealed")
        self._panes_gauge = self._obs.gauge("stream.panes_retained")
        # Fail fast on unknown names (and 1-D-only methods on 2-D
        # domains) by building pane 0's summaries eagerly.
        self._panes.append(self._new_pane(0))

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def process(self, batch) -> None:
        """Ingest one micro-batch.

        A windowed batch carrying per-item timestamps is split at pane
        boundaries (each slice lands in its own pane); otherwise the
        batch is assigned to one pane by its batch timestamp.
        """
        if not self._obs_enabled:
            self._process(batch)
            return
        started = time.perf_counter()
        items_before = self._items
        self._process(batch)
        self._ingest_hist.observe(time.perf_counter() - started)
        self._items_ctr.inc(self._items - items_before)
        self._batches_ctr.inc()

    def _process(self, batch) -> None:
        coords, weights, ts, item_ts = self._coerce(batch)
        if (
            item_ts is not None
            and self._window is not None
            and item_ts.size
        ):
            self._process_split(coords, weights, item_ts)
            return
        if ts is None:
            ts = float(self._batches)  # arrival clock: 1 unit per batch
        if self._now is not None and ts < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: {ts} after {self._now}"
            )
        self._now = ts
        pane = self._pane_for(ts)
        for inc in pane.incs.values():
            inc.update(coords, weights)
        self._items += weights.shape[0]
        self._batches += 1

    def _process_split(
        self,
        coords: np.ndarray,
        weights: np.ndarray,
        item_ts: np.ndarray,
    ) -> None:
        """Route one per-item-stamped batch, slicing at pane boundaries.

        Items are grouped into runs that share a pane (stamps are
        non-decreasing, so runs are contiguous) and each run updates
        its own pane -- the pane roll/seal machinery sees exactly the
        sequence of events it would have seen had the source emitted
        pane-aligned batches in the first place.
        """
        if self._now is not None and float(item_ts[0]) < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: {float(item_ts[0])} "
                f"after {self._now}"
            )
        pane_index = np.floor_divide(
            item_ts, self._window.pane
        ).astype(np.int64)
        boundaries = np.flatnonzero(np.diff(pane_index)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [pane_index.shape[0]]))
        for start, end in zip(starts, ends):
            run_ts = float(item_ts[end - 1])
            self._now = run_ts
            pane = self._pane_for(run_ts)
            for inc in pane.incs.values():
                inc.update(coords[start:end], weights[start:end])
            self._items += end - start
        self._batches += 1

    def ingest(self, source: Iterable, limit: Optional[int] = None) -> int:
        """Consume micro-batches from any iterable/generator source.

        Returns the number of items ingested from this call.  ``limit``
        caps the number of batches drawn (for endless sources).
        """
        before = self._items
        for count, batch in enumerate(source, start=1):
            self.process(batch)
            if limit is not None and count >= limit:
                break
        return self._items - before

    def _coerce(self, batch):
        normalized = MicroBatch.coerce(batch)
        return (normalized.coords, normalized.weights,
                normalized.timestamp, normalized.timestamps)

    def _new_pane(self, index: int) -> _Pane:
        if self._window is None:
            start, end = 0.0, math.inf
        else:
            start = index * self._window.pane
            end = start + self._window.pane
        incs = {
            name: incremental_summary(
                name,
                self._domain,
                self._size,
                seed=derive_seed(self._seed, name, index),
                stale_fraction=self._stale_fraction,
            )
            for name in self._methods
        }
        return _Pane(index, start, end, incs)

    def _pane_for(self, ts: float) -> _Pane:
        if self._window is None:
            return self._panes[0]
        index = int(ts // self._window.pane)
        current = self._panes[-1]
        if index == current.index:
            return current
        # Time advanced past the current pane: seal and roll forward.
        if self._obs_enabled:
            started = time.perf_counter()
            with self._obs.span("stream.pane_seal", pane=current.index):
                current.seal()
                if self._on_pane_sealed is not None:
                    self._on_pane_sealed(current.index, dict(current.sealed))
            self._seal_hist.observe(time.perf_counter() - started)
            self._seals_ctr.inc()
        else:
            current.seal()
            if self._on_pane_sealed is not None:
                self._on_pane_sealed(current.index, dict(current.sealed))
        if self._window.kind == "tumbling":
            # Pane == window for tumbling: the sealed pane IS the
            # completed window -- but only when no empty windows
            # elapsed in between (a stream gap must not leave a stale
            # pane posing as the latest window).
            self._last_completed = (
                [current] if index == current.index + 1 else None
            )
        pane = self._new_pane(index)
        self._panes.append(pane)
        self._prune(ts)
        if self._obs_enabled:
            self._panes_gauge.set(len(self._panes))
        return pane

    def _prune(self, now: float) -> None:
        """Drop panes no query over the current window can touch."""
        if self._window is None:
            return
        if self._window.kind == "tumbling":
            self._panes = self._panes[-1:]
            return
        horizon = now - self._window.width
        keep = [p for p in self._panes if p.end > horizon]
        # Cap retention at a full window of panes plus the live one.
        max_panes = self._window.panes_per_window + 1
        self._panes = keep[-max_panes:]

    # ------------------------------------------------------------------
    # Live queries
    # ------------------------------------------------------------------
    def _relevant_panes(self) -> List[_Pane]:
        if self._window is None or self._window.kind == "tumbling":
            return self._panes[-1:]
        if self._now is None:
            return self._panes[-1:]
        horizon = self._now - self._window.width
        return [p for p in self._panes if p.end > horizon]

    def snapshot(self, method: str):
        """The queryable summary for ``method`` over the current window.

        Folds the window's per-pane snapshots with the mergeable
        summary protocol; the fold is cached until a pane changes, so
        repeated query batteries between batches reuse both the folded
        summary and (through it) its sort orders.
        """
        if method not in self._methods:
            raise KeyError(f"method {method!r} not registered; "
                           f"have {self._methods}")
        panes = self._relevant_panes()
        state_key = tuple(
            (pane.index, -1 if pane.sealed is not None
             else pane.incs[method].version)
            for pane in panes
        )
        cached = self._fold_cache.get(method)
        if cached is not None and cached[0] == state_key:
            return cached[1]
        snaps = [pane.snapshot(method) for pane in panes]
        folded = self._fold(method, snaps, state_key)
        self._fold_cache[method] = (state_key, folded)
        return folded

    def _fold(self, method: str, snaps: List, state_key: tuple):
        rng = np.random.default_rng(
            derive_seed(self._seed, "fold", method, hash(state_key))
        )
        return fold_snapshots(snaps, size=self._size, rng=rng)

    def query_now(self, query) -> Dict[str, float]:
        """Live range-sum estimates for one query, per method."""
        out = {}
        for method in self._methods:
            snap = self.snapshot(method)
            if isinstance(query, Box):
                out[method] = float(snap.query(query))
            else:
                out[method] = float(snap.query_multi(query))
        return out

    def query_many_now(self, queries: Sequence) -> Dict[str, List[float]]:
        """Live estimates for a whole query battery, per method.

        The battery is compiled into one
        :class:`~repro.structures.ranges.QueryPlan` and every method's
        vectorized ``query_many`` consumes that same plan, so the
        bounds stacking is paid once per battery rather than once per
        method.  Between batches both the fold and each snapshot's
        sort orders are cached, so repeated batteries cost only the
        per-battery sweep.
        """
        plan = compile_query_plan(queries)
        return {
            method: list(self.snapshot(method).query_many(plan))
            for method in self._methods
        }

    def last_window(self) -> Optional[Dict[str, object]]:
        """Summaries of the most recently *completed* tumbling window.

        ``None`` when no window has completed yet -- or when the most
        recently completed window received no data (stream gap).
        """
        if self._window is None or self._window.kind != "tumbling":
            raise ValueError("last_window applies to tumbling windows only")
        if self._last_completed is None:
            return None
        (pane,) = self._last_completed
        return dict(pane.sealed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def methods(self) -> List[str]:
        """The registered method names."""
        return list(self._methods)

    @property
    def items_seen(self) -> int:
        """Total items ingested."""
        return self._items

    @property
    def batches_seen(self) -> int:
        """Total micro-batches ingested."""
        return self._batches

    @property
    def now(self) -> Optional[float]:
        """The stream clock (last timestamp seen)."""
        return self._now

    @property
    def num_panes(self) -> int:
        """Panes currently retained."""
        return len(self._panes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "landmark" if self._window is None else self._window.kind
        return (
            f"StreamEngine(methods={self._methods}, mode={mode}, "
            f"items={self._items}, panes={len(self._panes)})"
        )
