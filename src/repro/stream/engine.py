"""The streaming ingestion engine: micro-batches in, live answers out.

:class:`StreamEngine` consumes micro-batches from any iterable or
generator source, routes them to one or more registered summarization
methods (resolved through :mod:`repro.engine.registry` via
:func:`repro.stream.incremental.incremental_summary`), and answers
range-sum queries *live* -- over everything seen (landmark mode) or
over tumbling / sliding event-time windows.

Windows are built from the mergeable-summary protocol and nothing
else: a window is a list of per-pane summaries, each pane ingesting
its slice of the stream incrementally, folded with ``from_shards`` /
``merge`` at query time.  That is the same statistical machinery as
the sharded batch engine -- panes are time-shards -- so every fold
keeps the Horvitz-Thompson unbiasedness of sample summaries and the
exactness/error guarantees of the dedicated ones.

Reproducibility: the engine owns a root seed and derives an
independent child seed per (method, pane) and per fold (see
:func:`repro.stream.incremental.derive_seed`), so two engines built
from the same seed and fed the same stream report identical answers.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import obs as _obs
from repro.engine.builder import fold_snapshots
from repro.stream.incremental import derive_seed, incremental_summary
from repro.stream.types import MicroBatch
from repro.structures.ranges import Box, compile_query_plan


@dataclass(frozen=True)
class Window:
    """An event-time window policy.

    ``width`` is the window length; ``pane`` the pane length (the
    granularity at which per-pane summaries are kept and folded).
    Batches are assigned to panes whole, by their timestamp.
    """

    kind: str  # "tumbling" | "sliding"
    width: float
    pane: float

    def __post_init__(self):
        if self.kind not in ("tumbling", "sliding"):
            raise ValueError(f"unknown window kind: {self.kind!r}")
        if self.width <= 0 or self.pane <= 0:
            raise ValueError("window width and pane must be positive")
        if self.pane > self.width:
            raise ValueError("pane must not exceed the window width")

    @property
    def panes_per_window(self) -> int:
        """Number of panes a full window folds over."""
        return max(1, int(math.ceil(self.width / self.pane - 1e-9)))


def tumbling(width: float) -> Window:
    """A tumbling window: the stream is cut into [k*w, (k+1)*w) spans.

    ``query_now`` covers the *current* (in-progress) window;
    :meth:`StreamEngine.last_window` exposes the most recently
    completed one.
    """
    return Window("tumbling", float(width), float(width))


def sliding(width: float, slide: float) -> Window:
    """A sliding window of length ``width`` advancing by ``slide``.

    Implemented with the classic panes decomposition: per-``slide``
    pane summaries, folded over the last ``ceil(width / slide)`` panes
    at query time.  The window edge is pane-granular: the oldest pane
    contributes whole once any part of it is inside ``(now - width,
    now]``.
    """
    return Window("sliding", float(width), float(slide))


class _Pane:
    """One time-slice of the stream: live builders, then frozen snaps."""

    __slots__ = ("index", "start", "end", "incs", "sealed", "_snap_cache")

    def __init__(self, index: int, start: float, end: float, incs: Dict):
        self.index = index
        self.start = start
        self.end = end  # inf for the landmark pane
        self.incs = incs
        self.sealed: Optional[Dict[str, object]] = None
        self._snap_cache: Dict[str, tuple] = {}

    def snapshot(self, method: str):
        """The pane's summary for ``method`` (cached per inc version)."""
        if self.sealed is not None:
            return self.sealed[method]
        inc = self.incs[method]
        cached = self._snap_cache.get(method)
        if cached is not None and cached[0] == inc.version:
            return cached[1]
        snap = inc.snapshot()
        self._snap_cache[method] = (inc.version, snap)
        return snap

    def seal(self) -> None:
        """Freeze every method's snapshot and drop the live builders."""
        if self.sealed is not None:
            return
        self.sealed = {name: self.snapshot(name) for name in self.incs}
        self.incs = {}
        self._snap_cache = {}


class StreamEngine:
    """Live summarization of a micro-batch stream.

    Parameters
    ----------
    domain:
        The :class:`~repro.structures.product.ProductDomain` the
        stream's keys live in.
    methods:
        One registry method name or a sequence of names; every batch is
        routed to all of them.
    size:
        Per-method summary size (per pane; window folds re-aggregate
        sample summaries back down to it).
    window:
        ``None`` for landmark mode (one summary over everything seen),
        or a :func:`tumbling` / :func:`sliding` window.
    seed:
        Root seed for all randomness (pane samplers, fold merges);
        engines sharing a seed and a stream are identical.
    stale_fraction:
        Snapshot staleness tolerated by buffered-rebuild methods (see
        :class:`~repro.stream.incremental.BufferedRebuildSummary`).
    on_pane_sealed:
        Optional hand-off hook ``(pane_index, {method: summary})``
        invoked whenever a pane is sealed (the stream clock left it
        for good).  Sealed summaries are frozen and mergeable, so the
        hook is the natural shipping point for distributed pane
        aggregation: serialize them with
        :func:`repro.distributed.codec.to_bytes` and fold upstream.
        A pane that received no data seals with empty summaries.
    store / stream_id:
        Optional :class:`~repro.durable.CheckpointStore` making the
        stream durable under ``stream_id``: every batch is logged
        *before* it is processed (write-ahead), every sealed pane is
        persisted as compressed summary frames (compacting the batch
        log behind it), and :meth:`checkpoint` persists the full live
        state.  :meth:`restore` rebuilds an engine from the store that
        is bit-identical to one that never crashed -- see
        ``src/repro/durable/DURABILITY.md`` for the exactness
        contract.

    Timestamps
    ----------
    Batches may carry event-time stamps (non-decreasing; out-of-order
    batches are rejected).  Unstamped batches tick an arrival clock of
    one time unit per batch, so window widths are then measured in
    batches.  A windowed batch with *per-item* timestamps
    (:attr:`~repro.stream.types.MicroBatch.timestamps`) that straddles
    a pane boundary is split at the boundary, so window edges are
    item-granular; with only a batch-level stamp it is assigned to its
    pane whole.
    """

    def __init__(
        self,
        domain,
        methods: Union[str, Sequence[str]],
        size: int,
        *,
        window: Optional[Window] = None,
        seed: int = 0,
        stale_fraction: float = 0.0,
        on_pane_sealed=None,
        registry=None,
        store=None,
        stream_id: str = "stream",
        checkpoint_async: bool = False,
    ):
        if isinstance(methods, str):
            methods = [methods]
        self._methods = list(methods)
        if not self._methods:
            raise ValueError("need at least one method")
        self._domain = domain
        self._size = int(size)
        self._window = window
        self._seed = int(seed)
        self._stale_fraction = float(stale_fraction)
        self._on_pane_sealed = on_pane_sealed
        self._panes: List[_Pane] = []
        self._last_completed: Optional[List[_Pane]] = None
        self._now: Optional[float] = None
        self._items = 0
        self._batches = 0
        self._fold_cache: Dict[str, tuple] = {}
        # Telemetry (repro.obs): the ingest hot path pays one enabled
        # branch per batch; everything else records only when the
        # registry is enabled.
        self._obs = registry if registry is not None else _obs.get_registry()
        self._obs_enabled = self._obs.enabled
        self._items_ctr = self._obs.counter("stream.items_ingested")
        self._batches_ctr = self._obs.counter("stream.batches_ingested")
        self._ingest_hist = self._obs.histogram("stream.ingest_seconds")
        self._seal_hist = self._obs.histogram("stream.pane_seal_seconds")
        self._seals_ctr = self._obs.counter("stream.panes_sealed")
        self._panes_gauge = self._obs.gauge("stream.panes_retained")
        self._late_ctr = self._obs.counter("stream.late_items")
        # Fail fast on unknown names (and 1-D-only methods on 2-D
        # domains) by building pane 0's summaries eagerly.
        self._panes.append(self._new_pane(0))
        # Durability: log the stream's configuration up front so a
        # restore can rebuild the engine from the store alone.
        self._store = store
        self._stream_id = str(stream_id)
        # Async checkpoints: a single lock serializes the entire
        # checkpoint (freeze + encode + append + truncate + sync)
        # against ingestion, so an in-flight background checkpoint can
        # never interleave with `process()`/`ingest()`.  The lock only
        # exists when opted in -- the synchronous path stays
        # lock-free (the durable-smoke ingest-overhead gate).
        self._checkpoint_async = bool(checkpoint_async)
        self._ckpt_lock = threading.Lock() if checkpoint_async else None
        self._ckpt_handle: Optional[AsyncCheckpoint] = None
        if store is not None:
            if store.resume_state(self._stream_id)["next_seq"] > 0:
                raise ValueError(
                    f"stream {self._stream_id!r} already exists in the "
                    "store; use StreamEngine.restore() to resume it or "
                    "pick a fresh stream_id"
                )
            self._log_open()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def process(self, batch) -> None:
        """Ingest one micro-batch.

        A windowed batch carrying per-item timestamps is split at pane
        boundaries (each slice lands in its own pane); otherwise the
        batch is assigned to one pane by its batch timestamp.

        With a checkpoint store attached the batch is logged *before*
        it is processed: once this method has been entered, the batch
        is recoverable even if the process dies mid-update.  Late
        (out-of-order) batches are rejected before the log, so the
        write-ahead log replays cleanly.
        """
        if self._ckpt_lock is not None:
            with self._ckpt_lock:
                self._process_batch(batch)
            return
        self._process_batch(batch)

    def _process_batch(self, batch) -> None:
        batch = MicroBatch.coerce(batch)
        if self._store is not None:
            self._check_on_time(batch)
            self._log_batch(batch)
        if not self._obs_enabled:
            self._process(batch)
            return
        started = time.perf_counter()
        items_before = self._items
        self._process(batch)
        self._ingest_hist.observe(time.perf_counter() - started)
        self._items_ctr.inc(self._items - items_before)
        self._batches_ctr.inc()

    def _check_on_time(self, batch: MicroBatch) -> None:
        """Reject a late batch exactly as :meth:`_process` would."""
        if self._now is None:
            return
        if (
            batch.timestamps is not None
            and self._window is not None
            and batch.timestamps.size
        ):
            ts = float(batch.timestamps[0])
        elif batch.timestamp is not None:
            ts = float(batch.timestamp)
        else:
            ts = float(self._batches)
        if ts < self._now:
            self._reject_late(ts)

    def _reject_late(self, ts: float) -> None:
        """Raise the descriptive out-of-order error (and count it)."""
        if self._obs_enabled:
            self._late_ctr.inc()
        if self._window is None:
            where = "the landmark pane"
        else:
            width = self._window.pane
            pane = int(ts // width)
            where = (
                f"pane {pane} [{pane * width:g}, {(pane + 1) * width:g})"
            )
        raise ValueError(
            f"timestamps must be non-decreasing: batch timestamp {ts:g} "
            f"targets {where} but the stream clock already reached "
            f"{self._now:g}; the batch was rejected and counted in "
            f"stream.late_items"
        )

    def _process(self, batch) -> None:
        coords, weights, ts, item_ts = self._coerce(batch)
        if (
            item_ts is not None
            and self._window is not None
            and item_ts.size
        ):
            self._process_split(coords, weights, item_ts)
            return
        if ts is None:
            ts = float(self._batches)  # arrival clock: 1 unit per batch
        if self._now is not None and ts < self._now:
            self._reject_late(ts)
        self._now = ts
        pane = self._pane_for(ts)
        for inc in pane.incs.values():
            inc.update(coords, weights)
        self._items += weights.shape[0]
        self._batches += 1

    def _process_split(
        self,
        coords: np.ndarray,
        weights: np.ndarray,
        item_ts: np.ndarray,
    ) -> None:
        """Route one per-item-stamped batch, slicing at pane boundaries.

        Items are grouped into runs that share a pane (stamps are
        non-decreasing, so runs are contiguous) and each run updates
        its own pane -- the pane roll/seal machinery sees exactly the
        sequence of events it would have seen had the source emitted
        pane-aligned batches in the first place.
        """
        if self._now is not None and float(item_ts[0]) < self._now:
            self._reject_late(float(item_ts[0]))
        pane_index = np.floor_divide(
            item_ts, self._window.pane
        ).astype(np.int64)
        boundaries = np.flatnonzero(np.diff(pane_index)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [pane_index.shape[0]]))
        for start, end in zip(starts, ends):
            run_ts = float(item_ts[end - 1])
            self._now = run_ts
            pane = self._pane_for(run_ts)
            for inc in pane.incs.values():
                inc.update(coords[start:end], weights[start:end])
            self._items += end - start
        self._batches += 1

    def ingest(self, source: Iterable, limit: Optional[int] = None) -> int:
        """Consume micro-batches from any iterable/generator source.

        Returns the number of items ingested from this call.  ``limit``
        caps the number of batches drawn (for endless sources).
        """
        before = self._items
        for count, batch in enumerate(source, start=1):
            self.process(batch)
            if limit is not None and count >= limit:
                break
        return self._items - before

    def _coerce(self, batch):
        normalized = MicroBatch.coerce(batch)
        return (normalized.coords, normalized.weights,
                normalized.timestamp, normalized.timestamps)

    def _new_pane(self, index: int) -> _Pane:
        if self._window is None:
            start, end = 0.0, math.inf
        else:
            start = index * self._window.pane
            end = start + self._window.pane
        incs = {
            name: incremental_summary(
                name,
                self._domain,
                self._size,
                seed=derive_seed(self._seed, name, index),
                stale_fraction=self._stale_fraction,
            )
            for name in self._methods
        }
        return _Pane(index, start, end, incs)

    def _pane_for(self, ts: float) -> _Pane:
        if self._window is None:
            return self._panes[0]
        index = int(ts // self._window.pane)
        current = self._panes[-1]
        if index == current.index:
            return current
        # Time advanced past the current pane: seal and roll forward.
        # A pane restored from the store arrives already sealed (and
        # already persisted / shipped): only the roll bookkeeping runs
        # for it, never a second seal.
        if current.sealed is None:
            if self._obs_enabled:
                started = time.perf_counter()
                with self._obs.span("stream.pane_seal", pane=current.index):
                    self._seal_current(current)
                self._seal_hist.observe(time.perf_counter() - started)
                self._seals_ctr.inc()
            else:
                self._seal_current(current)
        if self._window.kind == "tumbling":
            # Pane == window for tumbling: the sealed pane IS the
            # completed window -- but only when no empty windows
            # elapsed in between (a stream gap must not leave a stale
            # pane posing as the latest window).
            self._last_completed = (
                [current] if index == current.index + 1 else None
            )
        pane = self._new_pane(index)
        self._panes.append(pane)
        self._prune(ts)
        if self._obs_enabled:
            self._panes_gauge.set(len(self._panes))
        return pane

    def _seal_current(self, current: _Pane) -> None:
        """Seal one pane: freeze, fire the hand-off hook, persist."""
        current.seal()
        if self._on_pane_sealed is not None:
            self._on_pane_sealed(current.index, dict(current.sealed))
        if self._store is not None:
            self._persist_seal(current)

    def _prune(self, now: float) -> None:
        """Drop panes no query over the current window can touch."""
        if self._window is None:
            return
        if self._window.kind == "tumbling":
            self._panes = self._panes[-1:]
            return
        horizon = now - self._window.width
        keep = [p for p in self._panes if p.end > horizon]
        # Cap retention at a full window of panes plus the live one.
        max_panes = self._window.panes_per_window + 1
        self._panes = keep[-max_panes:]

    # ------------------------------------------------------------------
    # Durability: write-ahead batch log, pane persistence, checkpoints
    # ------------------------------------------------------------------
    def _log_open(self) -> None:
        from repro.distributed import codec

        window = None
        if self._window is not None:
            window = {
                "kind": self._window.kind,
                "width": self._window.width,
                "pane": self._window.pane,
            }
        self._store.append(self._stream_id, "open", {
            "methods": list(self._methods),
            "size": self._size,
            "seed": self._seed,
            "stale_fraction": self._stale_fraction,
            "window": window,
            "domain": codec.encode_domain(self._domain),
        })

    def _log_batch(self, batch: MicroBatch) -> None:
        """Write-ahead: the batch plus the pre-ingest counter state.

        The counters make replay exact even after seal-time compaction
        dropped earlier batch records: the first surviving batch's
        pre-state re-anchors the clocks (see ``DURABILITY.md``).  The
        record's ``pane`` is the batch's *last* destination pane, so a
        boundary-straddling batch outlives the seal of the pane it
        started in.
        """
        if self._window is None:
            pane = 0
        elif batch.timestamps is not None and batch.timestamps.size:
            pane = int(float(batch.timestamps[-1]) // self._window.pane)
        elif batch.timestamp is not None:
            pane = int(float(batch.timestamp) // self._window.pane)
        else:
            pane = int(float(self._batches) // self._window.pane)
        self._store.append(self._stream_id, "batch", {
            "coords": batch.coords,
            "weights": batch.weights,
            "timestamp": batch.timestamp,
            "timestamps": batch.timestamps,
            "items": self._items,
            "batches": self._batches,
            "now": self._now,
        }, pane=pane, compress=False)

    def _persist_seal(self, pane: _Pane) -> None:
        """Persist a sealed pane's frames; compact the log behind it.

        Batches destined to this pane (or earlier ones) are embedded
        in the frozen summaries, so their replay records die here --
        this is what keeps the write-ahead log bounded on windowed
        streams.  Seal records behind the query horizon (a full window
        of panes plus one) die with them.
        """
        from repro.distributed import codec

        self._store.append(self._stream_id, "seal", {
            "start": pane.start,
            "end": pane.end,
            "summaries": {
                name: codec.to_bytes(summary)
                for name, summary in pane.sealed.items()
            },
        }, pane=pane.index)
        self._store.prune(self._stream_id, "batch", max_pane=pane.index)
        keep = self._window.panes_per_window + 1
        self._store.prune(
            self._stream_id, "seal", max_pane=pane.index - keep
        )

    def checkpoint(self):
        """Persist the full live state; truncate the log behind it.

        Synchronous engines (the default) return the checkpoint's
        sequence number.  With ``checkpoint_async=True`` the entire
        checkpoint runs on a background thread and an
        :class:`AsyncCheckpoint` handle is returned immediately;
        ``handle.result()`` joins and yields the sequence number.  The
        background checkpoint holds the ingest lock for its whole
        duration, so it can never interleave with a concurrent
        :meth:`process` -- ingestion simply waits, and every batch is
        either wholly before the checkpoint or wholly after it.
        Consecutive async checkpoints serialize against each other.

        On landmark streams checkpoints are the *only* thing that
        bounds the write-ahead log (no pane ever seals), so long-lived
        landmark streams should call this periodically.
        """
        if self._store is None:
            raise ValueError("engine has no checkpoint store attached")
        if not self._checkpoint_async:
            return self._checkpoint_now()
        if self._ckpt_handle is not None and not self._ckpt_handle.done:
            self._ckpt_handle.result()
        handle = AsyncCheckpoint(self)
        self._ckpt_handle = handle
        handle._start()
        return handle

    def _checkpoint_now(self) -> int:
        seq = self._store.append(
            self._stream_id, "state", self._checkpoint_payload(),
            pane=self._panes[-1].index,
        )
        self._store.truncate(self._stream_id, below_seq=seq)
        self._store.sync()
        return seq

    def _checkpoint_payload(self) -> dict:
        from repro.distributed import codec
        from repro.durable import encode_incremental

        def sealed_entry(pane: _Pane) -> dict:
            return {
                "index": pane.index,
                "start": pane.start,
                "end": pane.end,
                "sealed": {
                    name: codec.to_bytes(summary)
                    for name, summary in pane.sealed.items()
                },
            }

        panes = []
        for pane in self._panes:
            if pane.sealed is not None:
                panes.append(sealed_entry(pane))
            else:
                panes.append({
                    "index": pane.index,
                    "start": pane.start,
                    "end": pane.end,
                    "incs": {
                        name: encode_incremental(inc)
                        for name, inc in pane.incs.items()
                    },
                })
        last = None
        if self._last_completed is not None:
            (pane,) = self._last_completed
            last = sealed_entry(pane)
        return {
            "panes": panes,
            "last_completed": last,
            "items": self._items,
            "batches": self._batches,
            "now": self._now,
        }

    @classmethod
    def restore(
        cls,
        store,
        stream_id: str = "stream",
        *,
        on_pane_sealed=None,
        registry=None,
    ) -> "StreamEngine":
        """Rebuild an engine from its checkpoint store.

        The restored engine is bit-identical to one that never
        crashed: base state comes from the latest checkpoint (if any),
        sealed panes from their persisted frames, and everything after
        the last seal is replayed from the write-ahead batch log --
        including the update that was in flight when the process died.
        """
        records = store.records(stream_id)
        config = next((r for r in records if r.kind == "open"), None)
        if config is None:
            raise ValueError(
                f"stream {stream_id!r} has no open record in the store"
            )
        from repro.distributed import codec

        cfg = config.payload
        window = None
        if cfg["window"] is not None:
            spec = cfg["window"]
            window = Window(
                spec["kind"], float(spec["width"]), float(spec["pane"])
            )
        engine = cls(
            codec.decode_domain(cfg["domain"]),
            list(cfg["methods"]),
            int(cfg["size"]),
            window=window,
            seed=int(cfg["seed"]),
            stale_fraction=float(cfg["stale_fraction"]),
            on_pane_sealed=on_pane_sealed,
            registry=registry,
        )
        # Attach the store *after* construction: the open record is
        # already on disk and must not be duplicated.
        engine._store = store
        engine._stream_id = stream_id
        state = None
        for record in records:
            if record.kind == "state":
                state = record
        base_seq = state.seq if state is not None else -1
        if state is not None:
            engine._restore_from_payload(state.payload)
        floor = -1
        for record in records:
            if record.kind == "seal" and record.seq > base_seq:
                engine._apply_seal_record(record)
                floor = max(floor, record.pane)
        live = [
            r for r in records
            if r.kind == "batch" and r.seq > base_seq and r.pane > floor
        ]
        if live:
            # Re-anchor the clocks at the first surviving batch's
            # pre-state, then replay: each replayed batch re-applies
            # its own counter effects exactly as the first run did.
            first = live[0].payload
            engine._items = int(first["items"])
            engine._batches = int(first["batches"])
            engine._now = (
                None if first["now"] is None else float(first["now"])
            )
            for record in live:
                engine._replay_batch(record.payload)
        return engine

    def _restore_from_payload(self, payload: dict) -> None:
        """Load a checkpoint's panes, clocks and last-window marker."""
        from repro.distributed import codec
        from repro.durable import decode_incremental

        def sealed_pane(entry: dict) -> _Pane:
            pane = _Pane(
                int(entry["index"]), float(entry["start"]),
                float(entry["end"]), {},
            )
            pane.sealed = {
                name: codec.from_bytes(frame)
                for name, frame in entry["sealed"].items()
            }
            return pane

        panes = []
        for entry in payload["panes"]:
            if "sealed" in entry:
                panes.append(sealed_pane(entry))
                continue
            index = int(entry["index"])
            pane = _Pane(
                index, float(entry["start"]), float(entry["end"]),
                {
                    name: decode_incremental(
                        spec,
                        name=name,
                        domain=self._domain,
                        size=self._size,
                        seed=derive_seed(self._seed, name, index),
                        stale_fraction=self._stale_fraction,
                    )
                    for name, spec in entry["incs"].items()
                },
            )
            panes.append(pane)
        self._panes = sorted(panes, key=lambda p: p.index)
        last = payload["last_completed"]
        self._last_completed = None if last is None else [sealed_pane(last)]
        self._items = int(payload["items"])
        self._batches = int(payload["batches"])
        self._now = (
            None if payload["now"] is None else float(payload["now"])
        )
        self._fold_cache = {}

    def _apply_seal_record(self, record) -> None:
        """Merge one persisted sealed pane over the restored pane set."""
        from repro.distributed import codec

        pane = _Pane(
            int(record.pane), float(record.payload["start"]),
            float(record.payload["end"]), {},
        )
        pane.sealed = {
            name: codec.from_bytes(frame)
            for name, frame in record.payload["summaries"].items()
        }
        others = [p for p in self._panes if p.index != pane.index]
        self._panes = sorted(others + [pane], key=lambda p: p.index)

    def _replay_batch(self, payload: dict) -> None:
        """Re-process one logged batch (no re-logging, no obs timing)."""
        timestamps = payload["timestamps"]
        self._process(MicroBatch(
            np.asarray(payload["coords"]),
            np.asarray(payload["weights"]),
            None if payload["timestamp"] is None
            else float(payload["timestamp"]),
            None if timestamps is None else np.asarray(timestamps),
        ))

    @property
    def store(self):
        """The attached checkpoint store (``None`` if not durable)."""
        return self._store

    @property
    def stream_id(self) -> str:
        """The stream's identity inside the checkpoint store."""
        return self._stream_id

    # ------------------------------------------------------------------
    # Live queries
    # ------------------------------------------------------------------
    def _relevant_panes(self) -> List[_Pane]:
        if self._window is None or self._window.kind == "tumbling":
            return self._panes[-1:]
        if self._now is None:
            return self._panes[-1:]
        horizon = self._now - self._window.width
        return [p for p in self._panes if p.end > horizon]

    def snapshot(self, method: str):
        """The queryable summary for ``method`` over the current window.

        Folds the window's per-pane snapshots with the mergeable
        summary protocol; the fold is cached until a pane changes, so
        repeated query batteries between batches reuse both the folded
        summary and (through it) its sort orders.
        """
        if method not in self._methods:
            raise KeyError(f"method {method!r} not registered; "
                           f"have {self._methods}")
        panes = self._relevant_panes()
        state_key = tuple(
            (pane.index, -1 if pane.sealed is not None
             else pane.incs[method].version)
            for pane in panes
        )
        cached = self._fold_cache.get(method)
        if cached is not None and cached[0] == state_key:
            return cached[1]
        snaps = [pane.snapshot(method) for pane in panes]
        folded = self._fold(method, snaps, state_key)
        self._fold_cache[method] = (state_key, folded)
        return folded

    def _fold(self, method: str, snaps: List, state_key: tuple):
        rng = np.random.default_rng(
            derive_seed(self._seed, "fold", method, hash(state_key))
        )
        return fold_snapshots(snaps, size=self._size, rng=rng)

    def query_now(self, query) -> Dict[str, float]:
        """Live range-sum estimates for one query, per method."""
        out = {}
        for method in self._methods:
            snap = self.snapshot(method)
            if isinstance(query, Box):
                out[method] = float(snap.query(query))
            else:
                out[method] = float(snap.query_multi(query))
        return out

    def query_many_now(self, queries: Sequence) -> Dict[str, List[float]]:
        """Live estimates for a whole query battery, per method.

        The battery is compiled into one
        :class:`~repro.structures.ranges.QueryPlan` and every method's
        vectorized ``query_many`` consumes that same plan, so the
        bounds stacking is paid once per battery rather than once per
        method.  Between batches both the fold and each snapshot's
        sort orders are cached, so repeated batteries cost only the
        per-battery sweep.
        """
        plan = compile_query_plan(queries)
        return {
            method: list(self.snapshot(method).query_many(plan))
            for method in self._methods
        }

    def last_window(self) -> Optional[Dict[str, object]]:
        """Summaries of the most recently *completed* tumbling window.

        ``None`` when no window has completed yet -- or when the most
        recently completed window received no data (stream gap).
        """
        if self._window is None or self._window.kind != "tumbling":
            raise ValueError("last_window applies to tumbling windows only")
        if self._last_completed is None:
            return None
        (pane,) = self._last_completed
        return dict(pane.sealed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def methods(self) -> List[str]:
        """The registered method names."""
        return list(self._methods)

    @property
    def items_seen(self) -> int:
        """Total items ingested."""
        return self._items

    @property
    def batches_seen(self) -> int:
        """Total micro-batches ingested."""
        return self._batches

    @property
    def now(self) -> Optional[float]:
        """The stream clock (last timestamp seen)."""
        return self._now

    @property
    def num_panes(self) -> int:
        """Panes currently retained."""
        return len(self._panes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "landmark" if self._window is None else self._window.kind
        return (
            f"StreamEngine(methods={self._methods}, mode={mode}, "
            f"items={self._items}, panes={len(self._panes)})"
        )


class AsyncCheckpoint:
    """Handle for a checkpoint running on a background thread.

    Returned by :meth:`StreamEngine.checkpoint` when the engine was
    built with ``checkpoint_async=True``.  The worker thread holds the
    engine's ingest lock for the checkpoint's entire duration (freeze,
    encode, append, truncate, sync), so the persisted state is a
    consistent point-in-time cut: concurrent ``process()`` calls block
    until the checkpoint completes rather than interleaving with it.
    """

    def __init__(self, engine: StreamEngine):
        self._engine = engine
        self._seq: Optional[int] = None
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def _start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="stream-checkpoint", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            with self._engine._ckpt_lock:
                self._seq = self._engine._checkpoint_now()
        except BaseException as exc:  # surfaced by result()
            self._error = exc

    @property
    def done(self) -> bool:
        """Whether the background checkpoint has finished."""
        return self._thread is not None and not self._thread.is_alive()

    def result(self, timeout: Optional[float] = None) -> int:
        """Join the checkpoint; return its sequence number.

        Re-raises any exception the background thread hit.  Raises
        ``TimeoutError`` if ``timeout`` elapses first.
        """
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("checkpoint still running")
        if self._error is not None:
            raise self._error
        return self._seq
