"""Sparse standard Haar wavelet summaries (the ``wavelet`` baseline).

The standard (tensor-product) 2-D Haar transform of Section 6.1: each
input point contributes to ``(log X + 1) * (log Y + 1)`` orthonormal
basis coefficients; after the transform only the ``s`` largest
(normalized) coefficients are retained.  Range sums evaluate each
retained coefficient's basis-function integral over the query box in
O(1), so a query costs O(s).

With an orthonormal basis the "normalized coefficient" of the
literature is the coefficient itself, and keeping all coefficients
reconstructs the data exactly (tested).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.types import Dataset
from repro.structures.ranges import Box
from repro.summaries.base import Summary, battery_plans

#: Level code for the (constant) scaling function on an axis.
SCALING_LEVEL = -1


def _axis_bits(size: int) -> int:
    bits = int(size - 1).bit_length() if size > 1 else 1
    if (1 << bits) < size:
        bits += 1
    return bits


def _axis_levels_and_values(
    x: np.ndarray, bits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point (level, index, value) triples of every 1-D basis function.

    Returns three arrays of shape ``(bits + 1, n)``: row 0 is the
    scaling function, row ``l+1`` is wavelet level ``l``
    (``l = 0`` coarsest .. ``bits-1`` finest).
    """
    n = x.shape[0]
    size = 1 << bits
    levels = np.empty((bits + 1, n), dtype=np.int64)
    indices = np.empty((bits + 1, n), dtype=np.int64)
    values = np.empty((bits + 1, n), dtype=float)
    levels[0] = SCALING_LEVEL
    indices[0] = 0
    values[0] = 1.0 / math.sqrt(size)
    for level in range(bits):
        span_shift = bits - level  # support length = 2**span_shift
        amp = math.sqrt((1 << level) / size)
        k = x >> span_shift
        # Sign: + on the left half of the support, - on the right half.
        left_half = ((x >> (span_shift - 1)) & 1) == 0
        levels[level + 1] = level
        indices[level + 1] = k
        values[level + 1] = np.where(left_half, amp, -amp)
    return levels, indices, values


def _basis_interval_sums(
    levels: np.ndarray,
    indices: np.ndarray,
    lo: int,
    hi: int,
    bits: int,
) -> np.ndarray:
    """Vectorized sum of each basis function over the integer interval [lo, hi]."""
    size = 1 << bits
    length = hi - lo + 1
    out = np.zeros(levels.shape[0], dtype=float)
    scaling = levels == SCALING_LEVEL
    out[scaling] = length / math.sqrt(size)
    wav = ~scaling
    if not wav.any():
        return out
    lev = levels[wav]
    idx = indices[wav]
    span = np.left_shift(1, bits - lev)
    half = span >> 1
    support_lo = idx * span
    amp = np.sqrt(np.power(2.0, lev) / size)
    left_overlap = np.maximum(
        0, np.minimum(hi, support_lo + half - 1) - np.maximum(lo, support_lo) + 1
    )
    right_overlap = np.maximum(
        0,
        np.minimum(hi, support_lo + span - 1)
        - np.maximum(lo, support_lo + half)
        + 1,
    )
    out[wav] = (left_overlap - right_overlap) * amp
    return out


def _axis_straddle_candidates(
    level: int, lo: np.ndarray, hi: np.ndarray, bits: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-box candidate cells whose basis function can be nonzero.

    A wavelet's basis sum over ``[lo, hi]`` is zero unless its dyadic
    support contains one of the endpoints, so the only candidates at a
    level are the endpoint cells -- the right one skipped when it
    coincides with the left (interval inside one support).  The
    scaling function always contributes, from its single cell 0.
    Returns ``(cells, valid)`` pairs; ``valid`` is ``None`` for
    unconditional candidates.
    """
    if level == SCALING_LEVEL:
        return [(np.zeros(lo.shape[0], dtype=np.int64), None)]
    shift = bits - level
    k_lo = lo >> shift
    k_hi = hi >> shift
    return [(k_lo, None), (k_hi, k_hi != k_lo)]


def _axis_basis_factors(
    level: int,
    cells: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    bits: int,
) -> np.ndarray:
    """Basis sums of the functions at ``(level, cells)`` over ``[lo, hi]``."""
    size = 1 << bits
    if level == SCALING_LEVEL:
        return (hi - lo + 1) / math.sqrt(size)
    shift = bits - level
    span = 1 << shift
    half = span >> 1
    amp = math.sqrt((1 << level) / size)
    sup_lo = cells * span
    left_overlap = np.maximum(
        0, np.minimum(hi, sup_lo + half - 1) - np.maximum(lo, sup_lo) + 1
    )
    right_overlap = np.maximum(
        0,
        np.minimum(hi, sup_lo + span - 1) - np.maximum(lo, sup_lo + half) + 1,
    )
    return (left_overlap - right_overlap) * amp


class WaveletSummary(Summary):
    """Top-s sparse Haar wavelet summary of a 1-D or 2-D dataset."""

    def __init__(self, dataset: Dataset, s: int):
        if dataset.dims not in (1, 2):
            raise ValueError("wavelet summary supports 1-D and 2-D data")
        if s < 1:
            raise ValueError("coefficient budget must be >= 1")
        self._dims = dataset.dims
        self._budget = int(s)
        self._bits = tuple(
            _axis_bits(axis_size) for axis_size in dataset.domain.sizes
        )
        coeffs = self._transform(dataset)
        self.coefficients_computed = len(coeffs)  # pre-thresholding count
        self._retain_top(coeffs, s)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _transform(self, dataset: Dataset) -> Dict[tuple, float]:
        if self._dims == 1:
            return self._transform_1d(dataset)
        return self._transform_2d(dataset)

    def _transform_1d(self, dataset: Dataset) -> Dict[tuple, float]:
        x = dataset.coords[:, 0]
        w = dataset.weights
        levels, indices, values = _axis_levels_and_values(x, self._bits[0])
        coeffs: Dict[tuple, float] = {}
        for row in range(levels.shape[0]):
            contrib = w * values[row]
            keys = indices[row]
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=contrib)
            level = int(levels[row, 0])
            for k, c in zip(uniq, sums):
                if c != 0.0:
                    coeffs[(level, int(k))] = float(c)
        return coeffs

    def _transform_2d(self, dataset: Dataset) -> Dict[tuple, float]:
        x = dataset.coords[:, 0]
        y = dataset.coords[:, 1]
        w = dataset.weights
        lx, ix, vx = _axis_levels_and_values(x, self._bits[0])
        ly, iy, vy = _axis_levels_and_values(y, self._bits[1])
        coeffs: Dict[tuple, float] = {}
        for rx in range(lx.shape[0]):
            level_x = int(lx[rx, 0])
            for ry in range(ly.shape[0]):
                level_y = int(ly[ry, 0])
                contrib = w * vx[rx] * vy[ry]
                # Pack the two cell indices into one int64 key: wavelet
                # indices are < 2**(bits-1) and scaling indices are 0,
                # so (ix << bits_y) | iy stays below 2**63 for <=32-bit
                # axes.
                shift = self._bits[1]
                packed = (ix[rx] << np.int64(shift)) | iy[ry]
                uniq, inverse = np.unique(packed, return_inverse=True)
                sums = np.bincount(inverse, weights=contrib)
                mask = (1 << shift) - 1
                for key, c in zip(uniq, sums):
                    if c != 0.0:
                        kx = int(key) >> shift
                        ky = int(key) & mask
                        coeffs[(level_x, kx, level_y, ky)] = float(c)
        return coeffs

    def _axis_range_impact(self, level: int, bits: int) -> float:
        """Worst-case |basis sum over an interval| for one axis.

        For the scaling function this is ``size/sqrt(size)``; for a
        wavelet at level ``l`` it is the amplitude times half the
        support: ``sqrt(size / 2**l) / 2``.  Ranking coefficients by
        coefficient * impact keeps the ones whose omission can hurt a
        range query most -- equivalent to ranking by the raw half-sum
        difference, the "normalized coefficient" appropriate for
        range-sum workloads (massive-domain sparse data makes plain
        orthonormal magnitude keep only finest-level detail, which
        cancels on wide boxes).
        """
        size = 1 << bits
        if level == SCALING_LEVEL:
            return math.sqrt(size)
        return math.sqrt(size / (1 << level)) / 2.0

    def _retain_top(self, coeffs: Dict[tuple, float], s: int) -> None:
        if self._dims == 1:
            def score(item):
                (level, _k), c = item
                return abs(c) * self._axis_range_impact(level, self._bits[0])
        else:
            def score(item):
                (lx, _kx, ly, _ky), c = item
                return (
                    abs(c)
                    * self._axis_range_impact(lx, self._bits[0])
                    * self._axis_range_impact(ly, self._bits[1])
                )
        items = sorted(coeffs.items(), key=score, reverse=True)
        items = items[:s]
        if self._dims == 1:
            self._lx = np.asarray([k[0] for k, _ in items], dtype=np.int64)
            self._ix = np.asarray([k[1] for k, _ in items], dtype=np.int64)
        else:
            self._lx = np.asarray([k[0] for k, _ in items], dtype=np.int64)
            self._ix = np.asarray([k[1] for k, _ in items], dtype=np.int64)
            self._ly = np.asarray([k[2] for k, _ in items], dtype=np.int64)
            self._iy = np.asarray([k[3] for k, _ in items], dtype=np.int64)
        self._c = np.asarray([c for _, c in items], dtype=float)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _retained_coeffs(self) -> Dict[tuple, float]:
        """The retained coefficients as a key -> value dict."""
        if self._dims == 1:
            return {
                (int(l), int(k)): float(c)
                for l, k, c in zip(self._lx, self._ix, self._c)
            }
        return {
            (int(lx), int(kx), int(ly), int(ky)): float(c)
            for lx, kx, ly, ky, c in zip(
                self._lx, self._ix, self._ly, self._iy, self._c
            )
        }

    def merge(self, other: "WaveletSummary") -> "WaveletSummary":
        """Merge by adding coefficients, then re-thresholding.

        The Haar transform is linear, so the transform of the union of
        two disjoint shards is the sum of the shard transforms.
        Summing the *retained* coefficients and keeping the top
        ``max(budget_a, budget_b)`` is therefore the natural
        (lossy-on-lossy) wavelet merge; coefficients a shard already
        dropped stay dropped, exactly as in streaming wavelet
        maintenance.
        """
        if not isinstance(other, WaveletSummary):
            raise TypeError(
                f"cannot merge WaveletSummary with {type(other).__name__}"
            )
        if self._dims != other._dims or self._bits != other._bits:
            raise ValueError("cannot merge wavelets over different domains")
        combined = self._retained_coeffs()
        for key, value in other._retained_coeffs().items():
            combined[key] = combined.get(key, 0.0) + value
        combined = {k: c for k, c in combined.items() if c != 0.0}
        merged = object.__new__(WaveletSummary)
        merged._dims = self._dims
        merged._bits = self._bits
        merged._budget = max(self._budget, other._budget)
        merged.coefficients_computed = len(combined)
        merged._retain_top(combined, merged._budget)
        return merged

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The retained coefficients as codec-friendly primitives."""
        state = {
            "dims": self._dims,
            "bits": self._bits,
            "budget": self._budget,
            "computed": self.coefficients_computed,
            "lx": self._lx,
            "ix": self._ix,
            "c": self._c,
        }
        if self._dims == 2:
            state["ly"] = self._ly
            state["iy"] = self._iy
        return state

    @classmethod
    def from_state(cls, state: dict) -> "WaveletSummary":
        """Rebuild a wavelet summary from :meth:`to_state` output."""
        summary = object.__new__(cls)
        summary._dims = int(state["dims"])
        summary._bits = tuple(int(b) for b in state["bits"])
        summary._budget = int(state["budget"])
        summary.coefficients_computed = int(state["computed"])
        summary._lx = np.asarray(state["lx"], dtype=np.int64)
        summary._ix = np.asarray(state["ix"], dtype=np.int64)
        summary._c = np.asarray(state["c"], dtype=float)
        if summary._dims == 2:
            summary._ly = np.asarray(state["ly"], dtype=np.int64)
            summary._iy = np.asarray(state["iy"], dtype=np.int64)
        return summary

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of retained coefficients."""
        return self._c.shape[0]

    def query(self, box: Box) -> float:
        """Range-sum estimate from the retained coefficients."""
        if self._c.shape[0] == 0:
            return 0.0
        fx = _basis_interval_sums(
            self._lx, self._ix, box.lows[0], box.highs[0], self._bits[0]
        )
        if self._dims == 1:
            return float((self._c * fx).sum())
        fy = _basis_interval_sums(
            self._ly, self._iy, box.lows[1], box.highs[1], self._bits[1]
        )
        return float((self._c * fx * fy).sum())

    def point_estimate(self, point) -> float:
        """Reconstructed weight of a single key (for exactness tests)."""
        box = Box(tuple(int(v) for v in point), tuple(int(v) for v in point))
        return self.query(box)

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def _x_level_lookup(self):
        """Per-level sorted x-index lookup for the 1-D straddle kernel.

        Returns ``(lookup, scaling_sum)``: ``lookup[level]`` is the
        pair ``(sorted k values, coefficient rows)`` of the retained
        wavelet coefficients at that level, and ``scaling_sum`` the
        summed scaling coefficients.  Retained coefficients never
        change after construction, so the lookup is a one-shot memo
        (built lazily because ``merge``/``from_state`` rebuild
        instances through ``object.__new__``).
        """
        cached = self.__dict__.get("_level_lookup")
        if cached is None:
            lookup = {}
            wav = np.flatnonzero(self._lx != SCALING_LEVEL)
            for level in np.unique(self._lx[wav]):
                rows = wav[self._lx[wav] == level]
                order = np.argsort(self._ix[rows])
                lookup[int(level)] = (self._ix[rows][order], rows[order])
            scaling_sum = float(self._c[self._lx == SCALING_LEVEL].sum())
            cached = self.__dict__["_level_lookup"] = (lookup, scaling_sum)
        return cached

    def query_many(self, queries: Iterable) -> List[float]:
        """Estimates for a whole battery via sparse straddle kernels.

        Both dimensionalities use the sparse *straddle* kernel: a
        wavelet's basis sum over an interval is exactly zero unless
        its (aligned, dyadic) support contains one of the interval
        endpoints, so per level only the (at most two) straddling
        cells per axis can contribute.  1-D resolves the candidates
        with one ``searchsorted`` per level per endpoint; 2-D packs
        both cell indices into one int64 key and probes the at most
        four endpoint-cell combinations per ``(level_x, level_y)``
        group -- ``O(q log s)`` total instead of the ``O(q s)`` dense
        coefficient x query broadcast.  Answers match the scalar
        :meth:`query` up to floating-point summation order.
        """
        plan = battery_plans(self).fetch_plan(queries)
        if len(plan) == 0:
            return []
        if plan.dims != self._dims:
            raise ValueError(
                f"dimensionality mismatch: wavelet is {self._dims}-D, "
                f"queries are {plan.dims}-D"
            )
        if self._c.shape[0] == 0:
            return [0.0] * len(plan)
        bounds = plan.bounds
        if self._dims == 1:
            per_box = self._query_boxes_1d(bounds)
        else:
            per_box = self._query_boxes_2d(bounds)
        return plan.reduce_boxes(per_box).tolist()

    def _query_boxes_1d(self, bounds: np.ndarray) -> np.ndarray:
        """Sparse per-level straddle kernel over a stack of intervals."""
        lo = bounds[:, 0, 0]
        hi = bounds[:, 0, 1]
        bits = self._bits[0]
        size = 1 << bits
        lookup, scaling_sum = self._x_level_lookup()
        per_box = (hi - lo + 1) / math.sqrt(size) * scaling_sum
        for level, (ks, rows) in lookup.items():
            shift = bits - level
            span = 1 << shift
            half = span >> 1
            amp = math.sqrt((1 << level) / size)
            k_lo = lo >> shift
            k_hi = hi >> shift
            # An endpoint's support cell is the only candidate at this
            # level; the right endpoint is skipped when it shares the
            # left one's cell (the interval lies inside one support).
            for cand, extra in ((k_lo, None), (k_hi, k_hi != k_lo)):
                pos = np.searchsorted(ks, cand)
                pos_c = np.minimum(pos, ks.size - 1)
                hit = ks[pos_c] == cand
                if extra is not None:
                    hit &= extra
                boxes_hit = np.flatnonzero(hit)
                if boxes_hit.size == 0:
                    continue
                coeff = rows[pos_c[boxes_hit]]
                sup_lo = cand[boxes_hit] * span
                box_lo = lo[boxes_hit]
                box_hi = hi[boxes_hit]
                left_overlap = np.maximum(
                    0,
                    np.minimum(box_hi, sup_lo + half - 1)
                    - np.maximum(box_lo, sup_lo) + 1,
                )
                right_overlap = np.maximum(
                    0,
                    np.minimum(box_hi, sup_lo + span - 1)
                    - np.maximum(box_lo, sup_lo + half) + 1,
                )
                per_box[boxes_hit] += (
                    (left_overlap - right_overlap) * amp * self._c[coeff]
                )
        return per_box

    def _xy_group_lookup(self):
        """Packed-key lookup per ``(level_x, level_y)`` group (2-D).

        Returns ``{(lx, ly): (sorted packed keys, coefficient rows)}``
        where a key packs both cell indices as ``(kx << bits_y) | ky``
        -- the same packing the build-time transform uses.  Lazy
        one-shot memo, same rationale as :meth:`_x_level_lookup`.
        """
        cached = self.__dict__.get("_group_lookup")
        if cached is None:
            shift = self._bits[1]
            pairs = np.stack([self._lx, self._ly], axis=1)
            uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
            cached = {}
            for g in range(uniq.shape[0]):
                rows = np.flatnonzero(inverse == g)
                packed = (self._ix[rows] << np.int64(shift)) | self._iy[rows]
                order = np.argsort(packed)
                key = (int(uniq[g, 0]), int(uniq[g, 1]))
                cached[key] = (packed[order], rows[order])
            self.__dict__["_group_lookup"] = cached
        return cached

    def _query_boxes_2d(self, bounds: np.ndarray) -> np.ndarray:
        """Sparse per-group straddle kernel over a stack of 2-D boxes.

        For each retained ``(level_x, level_y)`` group only the (at
        most four) combinations of per-axis endpoint cells can yield a
        nonzero tensor-product basis sum; each combination is one
        packed-key ``searchsorted`` probe into the group's sorted
        coefficients.
        """
        lo_x = bounds[:, 0, 0]
        hi_x = bounds[:, 0, 1]
        lo_y = bounds[:, 1, 0]
        hi_y = bounds[:, 1, 1]
        bits_x, bits_y = self._bits
        per_box = np.zeros(bounds.shape[0], dtype=float)
        for (lx, ly), (keys, rows) in self._xy_group_lookup().items():
            for cx, valid_x in _axis_straddle_candidates(
                lx, lo_x, hi_x, bits_x
            ):
                for cy, valid_y in _axis_straddle_candidates(
                    ly, lo_y, hi_y, bits_y
                ):
                    packed = (cx << np.int64(bits_y)) | cy
                    pos = np.searchsorted(keys, packed)
                    pos_c = np.minimum(pos, keys.size - 1)
                    hit = keys[pos_c] == packed
                    if valid_x is not None:
                        hit &= valid_x
                    if valid_y is not None:
                        hit &= valid_y
                    idx = np.flatnonzero(hit)
                    if idx.size == 0:
                        continue
                    coeff = self._c[rows[pos_c[idx]]]
                    fx = _axis_basis_factors(
                        lx, cx[idx], lo_x[idx], hi_x[idx], bits_x
                    )
                    fy = _axis_basis_factors(
                        ly, cy[idx], lo_y[idx], hi_y[idx], bits_y
                    )
                    per_box[idx] += fx * fy * coeff
        return per_box
