"""Deterministic adaptive spatial partitioning (the ``qdigest`` baseline).

A multi-dimensional variant of the q-digest [22] in the style of
Hershberger, Shrivastava, Suri, Toth [14]: the domain is recursively
divided "on each dimension in turn" at dyadic midpoints, materializing
the heavy regions.  We drive the division greedily -- always split the
heaviest splittable leaf -- until the node budget is reached, which
adapts the resolution to the weight distribution exactly as retaining
heavy ranges does.

Queries sum fully-contained leaves exactly and spread a partially
overlapped leaf's weight uniformly over its box (the classic histogram
assumption); the deterministic error is bounded by the total weight of
boundary leaves.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.types import Dataset
from repro.structures.intervals import IntervalTable, use_flat
from repro.structures.ranges import Box, MultiRangeQuery
from repro.summaries.base import Summary, battery_plans


@dataclass
class _Cell:
    """A materialized leaf: a dyadic box and the weight of keys inside."""

    box: Box
    weight: float
    indices: np.ndarray  # rows of the build data inside the box


class QDigestSummary(Summary):
    """Greedy heavy-first dyadic partitioning summary.

    ``partial`` selects how partially-overlapped leaves contribute to a
    query:

    * ``"half"`` (default) -- the midpoint of the deterministic bounds:
      fully-contained weight plus half of each boundary leaf's weight.
      This matches the guaranteed-error flavour of [14]/q-digest and
      reproduces the paper's observed accuracy gap vs sampling.
    * ``"uniform"`` -- spread each boundary leaf's weight uniformly over
      its box (the multi-dimensional-histogram assumption); much more
      accurate on clustered data but offers no deterministic bound.
    * ``"lower"`` -- only fully-contained leaves (the conservative
      deterministic lower bound).
    """

    def __init__(self, dataset: Dataset, s: int, partial: str = "half"):
        if s < 1:
            raise ValueError("node budget must be >= 1")
        if partial not in ("half", "uniform", "lower"):
            raise ValueError(f"unknown partial mode: {partial}")
        self._partial = partial
        self._dims = dataset.dims
        coords = dataset.coords
        weights = dataset.weights
        root = _Cell(
            box=dataset.domain.full_box(),
            weight=float(weights.sum()),
            indices=np.arange(dataset.n),
        )
        # Max-heap on weight; tiebreaker by insertion counter.
        counter = itertools.count()
        heap: List[Tuple[float, int, int, _Cell]] = [
            (-root.weight, next(counter), 0, root)
        ]
        done: List[_Cell] = []
        while heap and len(heap) + len(done) < s:
            neg_w, _tick, depth, cell = heapq.heappop(heap)
            children = self._split_cell(cell, depth, coords, weights)
            if children is None:
                done.append(cell)
                continue
            for child in children:
                if child.indices.size:
                    heapq.heappush(
                        heap, (-child.weight, next(counter), depth + 1, child)
                    )
        leaves = done + [entry[3] for entry in heap]
        self._boxes = [cell.box for cell in leaves]
        self._weights = np.asarray([cell.weight for cell in leaves])
        self._lows = np.asarray(
            [cell.box.lows for cell in leaves], dtype=float
        ).reshape(len(leaves), self._dims)
        self._highs = np.asarray(
            [cell.box.highs for cell in leaves], dtype=float
        ).reshape(len(leaves), self._dims)
        self._volumes = np.prod(self._highs - self._lows + 1.0, axis=1)

    def _split_cell(
        self,
        cell: _Cell,
        depth: int,
        coords: np.ndarray,
        weights: np.ndarray,
    ) -> Optional[List[_Cell]]:
        """Split a leaf at the dyadic midpoint, cycling the axes.

        Empty halves are skipped for free: the cell's box shrinks in
        place to the occupied half (so a single remaining point ends up
        in its exact 1x1 cell).  Returns ``None`` when the box cannot be
        halved with points on both sides of any axis.
        """
        while True:
            progressed = False
            for offset in range(self._dims):
                axis = (depth + offset) % self._dims
                lo, hi = cell.box.side(axis)
                if lo >= hi:
                    continue
                mid = lo + ((hi - lo) >> 1)
                values = coords[cell.indices, axis]
                left_mask = values <= mid
                left_box, right_box = cell.box.split(axis, mid)
                if left_mask.all():
                    cell.box = left_box
                    depth += 1
                    progressed = True
                    break
                if not left_mask.any():
                    cell.box = right_box
                    depth += 1
                    progressed = True
                    break
                left_idx = cell.indices[left_mask]
                right_idx = cell.indices[~left_mask]
                return [
                    _Cell(
                        box=left_box,
                        weight=float(weights[left_idx].sum()),
                        indices=left_idx,
                    ),
                    _Cell(
                        box=right_box,
                        weight=float(weights[right_idx].sum()),
                        indices=right_idx,
                    ),
                ]
            if not progressed:
                return None

    @property
    def size(self) -> int:
        """Number of materialized nodes."""
        return len(self._boxes)

    def _fractions(self, overlap_volume: np.ndarray) -> np.ndarray:
        """Per-leaf contribution fractions from overlap volumes.

        Shared by the scalar and batched query paths; the trailing
        axis of ``overlap_volume`` indexes the leaves.
        """
        if self._partial == "uniform":
            return overlap_volume / self._volumes
        contained = overlap_volume >= self._volumes
        boundary = (overlap_volume > 0) & ~contained
        fractions = contained.astype(float)
        if self._partial == "half":
            fractions += 0.5 * boundary
        return fractions

    def query(self, box: Box) -> float:
        """Range-sum estimate (see ``partial`` in the class docstring).

        Vectorized over all leaves: fully contained cells contribute
        their weight; boundary cells contribute per the partial mode.
        """
        q_lows = np.asarray(box.lows, dtype=float)
        q_highs = np.asarray(box.highs, dtype=float)
        overlap = (
            np.minimum(self._highs, q_highs)
            - np.maximum(self._lows, q_lows)
            + 1.0
        )
        np.clip(overlap, 0.0, None, out=overlap)
        overlap_volume = np.prod(overlap, axis=1)
        return float((self._weights * self._fractions(overlap_volume)).sum())

    def _sorted_1d(self):
        """Sorted-leaf arrays for the 1-D prefix fast path (lazy memo).

        Returns ``None`` unless the digest is 1-D with pairwise-disjoint
        leaves (a fresh build always is; a merge of shards may overlap
        spatially, in which case the dense kernel applies).  Otherwise
        returns ``(los, his, weights, volumes, prefix)`` sorted by leaf
        low endpoint; leaves never change after construction, so the
        memo is one-shot.
        """
        if self._dims != 1:
            return None
        cached = self.__dict__.get("_sorted_leaves")
        if cached is None:
            order = np.argsort(self._lows[:, 0], kind="stable")
            los = self._lows[order, 0]
            his = self._highs[order, 0]
            if los.size > 1 and not bool((his[:-1] < los[1:]).all()):
                cached = (False,)  # overlapping leaves: merged digest
            else:
                weights = self._weights[order]
                volumes = self._volumes[order]
                prefix = np.concatenate(([0.0], np.cumsum(weights)))
                cached = (True, los, his, weights, volumes, prefix)
            self.__dict__["_sorted_leaves"] = cached
        return cached[1:] if cached[0] else None

    def interval_table(self) -> IntervalTable:
        """The leaf partition as a flat :class:`IntervalTable`.

        All leaves sit on level 0 with insertion-order pre/post ranks,
        so the table's canonical order is the stable sort by leaf low
        endpoint -- exactly the retained :meth:`_sorted_1d` order,
        which keeps :meth:`IntervalTable.leaf_range_sums` bit-identical
        to :meth:`_query_boxes_1d`.  Leaves never change after
        construction (merges build new summaries), so the memo is
        one-shot.
        """
        cached = self.__dict__.get("_flat_table")
        if cached is None:
            # Leaf bounds are dyadic integers stored as floats; the
            # int64 conversion is exact.
            cached = IntervalTable.from_leaves(
                self._lows.astype(np.int64),
                self._highs.astype(np.int64),
                self._weights,
            )
            self.__dict__["_flat_table"] = cached
        return cached

    def _query_boxes_1d(self, bounds: np.ndarray, sorted_1d) -> np.ndarray:
        """Prefix-sum kernel over disjoint sorted 1-D leaves.

        Fully-contained leaves form one contiguous run in the sorted
        order (two ``searchsorted`` calls and a prefix-sum difference);
        at most two leaves -- the ones containing the query endpoints --
        can be boundary leaves, handled per the ``partial`` mode.
        ``O(q log L)`` instead of the dense ``O(q L)``.
        """
        los, his, weights, volumes, prefix = sorted_1d
        q_lo = bounds[:, 0, 0]
        q_hi = bounds[:, 0, 1]
        first = np.searchsorted(los, q_lo, side="left")
        last = np.searchsorted(his, q_hi, side="right")
        per_box = np.where(last > first, prefix[last] - prefix[first], 0.0)
        if self._partial == "lower":
            return per_box
        # Boundary candidates: the leaf containing each endpoint.
        left = np.searchsorted(los, q_lo, side="right") - 1
        right = np.searchsorted(los, q_hi, side="right") - 1
        for cand, endpoint, extra in (
            (left, q_lo, None),
            (right, q_hi, right != left),
        ):
            clamped = np.maximum(cand, 0)
            boundary = (
                (cand >= 0)
                & (his[clamped] >= endpoint)
                & ~((los[clamped] >= q_lo) & (his[clamped] <= q_hi))
            )
            if extra is not None:
                boundary &= extra
            rows = np.flatnonzero(boundary)
            if rows.size == 0:
                continue
            leaf = clamped[rows]
            if self._partial == "half":
                per_box[rows] += 0.5 * weights[leaf]
            else:  # uniform
                overlap = (
                    np.minimum(his[leaf], q_hi[rows])
                    - np.maximum(los[leaf], q_lo[rows])
                    + 1.0
                )
                per_box[rows] += overlap / volumes[leaf] * weights[leaf]
        return per_box

    def query_many(self, queries: Iterable[MultiRangeQuery]) -> List[float]:
        """Batch evaluation: all boxes against all leaves in one pass.

        The battery is compiled once into a
        :class:`~repro.structures.ranges.QueryPlan` (bounds stacking is
        memoized on the query objects and on the summary, so repeated
        batteries stop re-stacking).  Disjoint 1-D digests take the
        sorted prefix-sum fast path (:meth:`_query_boxes_1d`); anything
        else computes the ``(B, L)`` leaf-overlap volumes by
        broadcasting, chunked over boxes to bound the intermediate
        array.  Per-box contributions fold back onto queries with
        ``add.reduceat`` (boxes of a multi-range query are disjoint, so
        contributions add).
        """
        plan = battery_plans(self).fetch_plan(queries)
        if len(plan) == 0:
            return []
        if plan.dims != self._dims:
            raise ValueError(
                f"dimensionality mismatch: q-digest is {self._dims}-D, "
                f"queries are {plan.dims}-D"
            )
        if self.size == 0:
            return [0.0] * len(plan)
        bounds = plan.bounds
        if self._dims == 1 and use_flat(self):
            table = self.interval_table()
            if table.leaves_disjoint():
                return plan.reduce_boxes(
                    table.leaf_range_sums(bounds, self._partial)
                ).tolist()
        else:
            sorted_1d = self._sorted_1d()
            if sorted_1d is not None:
                return plan.reduce_boxes(
                    self._query_boxes_1d(bounds, sorted_1d)
                ).tolist()
        n_boxes = bounds.shape[0]
        n_leaves = self._weights.shape[0]
        per_box = np.empty(n_boxes, dtype=float)
        chunk = max(1, 8_000_000 // max(1, n_leaves * self._dims))
        for start in range(0, n_boxes, chunk):
            stop = min(n_boxes, start + chunk)
            q_lows = bounds[start:stop, :, 0].astype(float)
            q_highs = bounds[start:stop, :, 1].astype(float)
            overlap = (
                np.minimum(self._highs[None, :, :], q_highs[:, None, :])
                - np.maximum(self._lows[None, :, :], q_lows[:, None, :])
                + 1.0
            )
            np.clip(overlap, 0.0, None, out=overlap)
            overlap_volume = np.prod(overlap, axis=2)
            # Elementwise product + row sum (not a matmul) so each
            # box's answer is bit-identical to the scalar query path.
            per_box[start:stop] = (
                self._weights * self._fractions(overlap_volume)
            ).sum(axis=1)
        return plan.reduce_boxes(per_box).tolist()

    def merge(self, other: "QDigestSummary") -> "QDigestSummary":
        """Merge by taking the union of the two leaf partitions.

        Each shard's leaves partition the (shared) domain over *its*
        keys, so the union of the leaf sets is a valid materialized
        node set for the union of the shards: range sums add.  The
        footprint is the sum of the two node counts; re-compressing to
        a budget would require the original keys, which a q-digest no
        longer has.
        """
        if not isinstance(other, QDigestSummary):
            raise TypeError(
                f"cannot merge QDigestSummary with {type(other).__name__}"
            )
        if self._partial != other._partial:
            raise ValueError("cannot merge q-digests with different modes")
        if self._dims != other._dims:
            raise ValueError("dimensionality mismatch")
        merged = object.__new__(QDigestSummary)
        merged._partial = self._partial
        merged._dims = self._dims
        merged._boxes = self._boxes + other._boxes
        merged._weights = np.concatenate((self._weights, other._weights))
        merged._lows = np.concatenate((self._lows, other._lows), axis=0)
        merged._highs = np.concatenate((self._highs, other._highs), axis=0)
        merged._volumes = np.concatenate((self._volumes, other._volumes))
        return merged

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The materialized leaves as codec-friendly primitives."""
        n = len(self._boxes)
        box_lows = np.asarray(
            [box.lows for box in self._boxes], dtype=np.int64
        ).reshape(n, self._dims)
        box_highs = np.asarray(
            [box.highs for box in self._boxes], dtype=np.int64
        ).reshape(n, self._dims)
        return {
            "partial": self._partial,
            "dims": self._dims,
            "box_lows": box_lows,
            "box_highs": box_highs,
            "weights": self._weights,
        }

    @classmethod
    def from_state(cls, state: dict) -> "QDigestSummary":
        """Rebuild a q-digest from :meth:`to_state` output."""
        digest = object.__new__(cls)
        digest._partial = state["partial"]
        digest._dims = int(state["dims"])
        box_lows = state["box_lows"]
        box_highs = state["box_highs"]
        digest._boxes = [
            Box(tuple(int(v) for v in lo), tuple(int(v) for v in hi))
            for lo, hi in zip(box_lows, box_highs)
        ]
        digest._weights = np.asarray(state["weights"], dtype=float)
        n = len(digest._boxes)
        digest._lows = box_lows.astype(float).reshape(n, digest._dims)
        digest._highs = box_highs.astype(float).reshape(n, digest._dims)
        digest._volumes = np.prod(
            digest._highs - digest._lows + 1.0, axis=1
        )
        return digest

    def query_bounds(self, box: Box):
        """Deterministic (lower, upper) bounds on the true range sum."""
        q_lows = np.asarray(box.lows, dtype=float)
        q_highs = np.asarray(box.highs, dtype=float)
        overlap = (
            np.minimum(self._highs, q_highs)
            - np.maximum(self._lows, q_lows)
            + 1.0
        )
        np.clip(overlap, 0.0, None, out=overlap)
        overlap_volume = np.prod(overlap, axis=1)
        contained = overlap_volume >= self._volumes
        intersecting = overlap_volume > 0
        lower = float(self._weights[contained].sum())
        upper = float(self._weights[intersecting].sum())
        return lower, upper
