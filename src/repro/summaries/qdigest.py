"""Deterministic adaptive spatial partitioning (the ``qdigest`` baseline).

A multi-dimensional variant of the q-digest [22] in the style of
Hershberger, Shrivastava, Suri, Toth [14]: the domain is recursively
divided "on each dimension in turn" at dyadic midpoints, materializing
the heavy regions.  We drive the division greedily -- always split the
heaviest splittable leaf -- until the node budget is reached, which
adapts the resolution to the weight distribution exactly as retaining
heavy ranges does.

Queries sum fully-contained leaves exactly and spread a partially
overlapped leaf's weight uniformly over its box (the classic histogram
assumption); the deterministic error is bounded by the total weight of
boundary leaves.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.types import Dataset
from repro.structures.ranges import Box, MultiRangeQuery, flatten_queries
from repro.summaries.base import Summary


@dataclass
class _Cell:
    """A materialized leaf: a dyadic box and the weight of keys inside."""

    box: Box
    weight: float
    indices: np.ndarray  # rows of the build data inside the box


class QDigestSummary(Summary):
    """Greedy heavy-first dyadic partitioning summary.

    ``partial`` selects how partially-overlapped leaves contribute to a
    query:

    * ``"half"`` (default) -- the midpoint of the deterministic bounds:
      fully-contained weight plus half of each boundary leaf's weight.
      This matches the guaranteed-error flavour of [14]/q-digest and
      reproduces the paper's observed accuracy gap vs sampling.
    * ``"uniform"`` -- spread each boundary leaf's weight uniformly over
      its box (the multi-dimensional-histogram assumption); much more
      accurate on clustered data but offers no deterministic bound.
    * ``"lower"`` -- only fully-contained leaves (the conservative
      deterministic lower bound).
    """

    def __init__(self, dataset: Dataset, s: int, partial: str = "half"):
        if s < 1:
            raise ValueError("node budget must be >= 1")
        if partial not in ("half", "uniform", "lower"):
            raise ValueError(f"unknown partial mode: {partial}")
        self._partial = partial
        self._dims = dataset.dims
        coords = dataset.coords
        weights = dataset.weights
        root = _Cell(
            box=dataset.domain.full_box(),
            weight=float(weights.sum()),
            indices=np.arange(dataset.n),
        )
        # Max-heap on weight; tiebreaker by insertion counter.
        counter = itertools.count()
        heap: List[Tuple[float, int, int, _Cell]] = [
            (-root.weight, next(counter), 0, root)
        ]
        done: List[_Cell] = []
        while heap and len(heap) + len(done) < s:
            neg_w, _tick, depth, cell = heapq.heappop(heap)
            children = self._split_cell(cell, depth, coords, weights)
            if children is None:
                done.append(cell)
                continue
            for child in children:
                if child.indices.size:
                    heapq.heappush(
                        heap, (-child.weight, next(counter), depth + 1, child)
                    )
        leaves = done + [entry[3] for entry in heap]
        self._boxes = [cell.box for cell in leaves]
        self._weights = np.asarray([cell.weight for cell in leaves])
        self._lows = np.asarray(
            [cell.box.lows for cell in leaves], dtype=float
        ).reshape(len(leaves), self._dims)
        self._highs = np.asarray(
            [cell.box.highs for cell in leaves], dtype=float
        ).reshape(len(leaves), self._dims)
        self._volumes = np.prod(self._highs - self._lows + 1.0, axis=1)

    def _split_cell(
        self,
        cell: _Cell,
        depth: int,
        coords: np.ndarray,
        weights: np.ndarray,
    ) -> Optional[List[_Cell]]:
        """Split a leaf at the dyadic midpoint, cycling the axes.

        Empty halves are skipped for free: the cell's box shrinks in
        place to the occupied half (so a single remaining point ends up
        in its exact 1x1 cell).  Returns ``None`` when the box cannot be
        halved with points on both sides of any axis.
        """
        while True:
            progressed = False
            for offset in range(self._dims):
                axis = (depth + offset) % self._dims
                lo, hi = cell.box.side(axis)
                if lo >= hi:
                    continue
                mid = lo + ((hi - lo) >> 1)
                values = coords[cell.indices, axis]
                left_mask = values <= mid
                left_box, right_box = cell.box.split(axis, mid)
                if left_mask.all():
                    cell.box = left_box
                    depth += 1
                    progressed = True
                    break
                if not left_mask.any():
                    cell.box = right_box
                    depth += 1
                    progressed = True
                    break
                left_idx = cell.indices[left_mask]
                right_idx = cell.indices[~left_mask]
                return [
                    _Cell(
                        box=left_box,
                        weight=float(weights[left_idx].sum()),
                        indices=left_idx,
                    ),
                    _Cell(
                        box=right_box,
                        weight=float(weights[right_idx].sum()),
                        indices=right_idx,
                    ),
                ]
            if not progressed:
                return None

    @property
    def size(self) -> int:
        """Number of materialized nodes."""
        return len(self._boxes)

    def _fractions(self, overlap_volume: np.ndarray) -> np.ndarray:
        """Per-leaf contribution fractions from overlap volumes.

        Shared by the scalar and batched query paths; the trailing
        axis of ``overlap_volume`` indexes the leaves.
        """
        if self._partial == "uniform":
            return overlap_volume / self._volumes
        contained = overlap_volume >= self._volumes
        boundary = (overlap_volume > 0) & ~contained
        fractions = contained.astype(float)
        if self._partial == "half":
            fractions += 0.5 * boundary
        return fractions

    def query(self, box: Box) -> float:
        """Range-sum estimate (see ``partial`` in the class docstring).

        Vectorized over all leaves: fully contained cells contribute
        their weight; boundary cells contribute per the partial mode.
        """
        q_lows = np.asarray(box.lows, dtype=float)
        q_highs = np.asarray(box.highs, dtype=float)
        overlap = (
            np.minimum(self._highs, q_highs)
            - np.maximum(self._lows, q_lows)
            + 1.0
        )
        np.clip(overlap, 0.0, None, out=overlap)
        overlap_volume = np.prod(overlap, axis=1)
        return float((self._weights * self._fractions(overlap_volume)).sum())

    def query_many(self, queries: Iterable[MultiRangeQuery]) -> List[float]:
        """Batch evaluation: all boxes against all leaves in one pass.

        Stacks every query box into a bounds array and computes the
        ``(B, L)`` leaf-overlap volumes by broadcasting, then folds the
        per-box contributions back onto queries with ``add.reduceat``
        (boxes of a multi-range query are disjoint, so contributions
        add).  Chunked over boxes to bound the intermediate array.
        """
        queries = list(queries)
        if not queries:
            return []
        if self.size == 0:
            return [0.0] * len(queries)
        bounds, counts = flatten_queries(queries)
        n_boxes = bounds.shape[0]
        n_leaves = self._weights.shape[0]
        per_box = np.empty(n_boxes, dtype=float)
        chunk = max(1, 8_000_000 // max(1, n_leaves * self._dims))
        for start in range(0, n_boxes, chunk):
            stop = min(n_boxes, start + chunk)
            q_lows = bounds[start:stop, :, 0].astype(float)
            q_highs = bounds[start:stop, :, 1].astype(float)
            overlap = (
                np.minimum(self._highs[None, :, :], q_highs[:, None, :])
                - np.maximum(self._lows[None, :, :], q_lows[:, None, :])
                + 1.0
            )
            np.clip(overlap, 0.0, None, out=overlap)
            overlap_volume = np.prod(overlap, axis=2)
            per_box[start:stop] = self._fractions(overlap_volume) @ self._weights
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        return np.add.reduceat(per_box, offsets).tolist()

    def merge(self, other: "QDigestSummary") -> "QDigestSummary":
        """Merge by taking the union of the two leaf partitions.

        Each shard's leaves partition the (shared) domain over *its*
        keys, so the union of the leaf sets is a valid materialized
        node set for the union of the shards: range sums add.  The
        footprint is the sum of the two node counts; re-compressing to
        a budget would require the original keys, which a q-digest no
        longer has.
        """
        if not isinstance(other, QDigestSummary):
            raise TypeError(
                f"cannot merge QDigestSummary with {type(other).__name__}"
            )
        if self._partial != other._partial:
            raise ValueError("cannot merge q-digests with different modes")
        if self._dims != other._dims:
            raise ValueError("dimensionality mismatch")
        merged = object.__new__(QDigestSummary)
        merged._partial = self._partial
        merged._dims = self._dims
        merged._boxes = self._boxes + other._boxes
        merged._weights = np.concatenate((self._weights, other._weights))
        merged._lows = np.concatenate((self._lows, other._lows), axis=0)
        merged._highs = np.concatenate((self._highs, other._highs), axis=0)
        merged._volumes = np.concatenate((self._volumes, other._volumes))
        return merged

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The materialized leaves as codec-friendly primitives."""
        n = len(self._boxes)
        box_lows = np.asarray(
            [box.lows for box in self._boxes], dtype=np.int64
        ).reshape(n, self._dims)
        box_highs = np.asarray(
            [box.highs for box in self._boxes], dtype=np.int64
        ).reshape(n, self._dims)
        return {
            "partial": self._partial,
            "dims": self._dims,
            "box_lows": box_lows,
            "box_highs": box_highs,
            "weights": self._weights,
        }

    @classmethod
    def from_state(cls, state: dict) -> "QDigestSummary":
        """Rebuild a q-digest from :meth:`to_state` output."""
        digest = object.__new__(cls)
        digest._partial = state["partial"]
        digest._dims = int(state["dims"])
        box_lows = state["box_lows"]
        box_highs = state["box_highs"]
        digest._boxes = [
            Box(tuple(int(v) for v in lo), tuple(int(v) for v in hi))
            for lo, hi in zip(box_lows, box_highs)
        ]
        digest._weights = np.asarray(state["weights"], dtype=float)
        n = len(digest._boxes)
        digest._lows = box_lows.astype(float).reshape(n, digest._dims)
        digest._highs = box_highs.astype(float).reshape(n, digest._dims)
        digest._volumes = np.prod(
            digest._highs - digest._lows + 1.0, axis=1
        )
        return digest

    def query_bounds(self, box: Box):
        """Deterministic (lower, upper) bounds on the true range sum."""
        q_lows = np.asarray(box.lows, dtype=float)
        q_highs = np.asarray(box.highs, dtype=float)
        overlap = (
            np.minimum(self._highs, q_highs)
            - np.maximum(self._lows, q_lows)
            + 1.0
        )
        np.clip(overlap, 0.0, None, out=overlap)
        overlap_volume = np.prod(overlap, axis=1)
        contained = overlap_volume >= self._volumes
        intersecting = overlap_volume > 0
        lower = float(self._weights[contained].sum())
        upper = float(self._weights[intersecting].sum())
        return lower, upper
