"""Common interface for all summaries.

Every summary -- samples and dedicated structures alike -- answers
box-range-sum queries, reports its size measured "in terms of elements
on the original data" (Section 6.2: sampled keys for samples, retained
coefficients for wavelets, materialized nodes for q-digest, counters
for sketches), and is built from a :class:`~repro.core.types.Dataset`.

Summaries that can be combined additionally implement the *mergeable
summary protocol*: ``a.merge(b)`` returns a summary of the union of the
two underlying (disjoint) datasets, and ``Cls.from_shards(shards)``
folds a list of per-shard summaries into one.  The sharded build engine
(:mod:`repro.engine`) relies on nothing else.

Summaries that can ingest a live feed implement the *incremental
summary protocol* (:class:`IncrementalSummary`): ``update(keys,
weights)`` absorbs a micro-batch and ``snapshot()`` freezes the current
state into a queryable summary.  The streaming engine
(:mod:`repro.stream`) builds windows out of nothing but these two
calls plus ``merge``.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.structures.ranges import Box, MultiRangeQuery, SortOrderCache


def battery_plans(summary) -> SortOrderCache:
    """The summary's lazily-created battery-plan memo.

    Batched ``query_many`` kernels route their input through
    ``battery_plans(self).fetch_plan(queries)`` so a repeated battery of
    the same query objects skips the bounds stacking.  Created on first
    use via ``__dict__`` (not in ``__init__``) because several summary
    classes rebuild instances through ``object.__new__`` in their
    ``merge`` / ``from_state`` paths.
    """
    cache = summary.__dict__.get("_plan_cache")
    if cache is None:
        cache = summary.__dict__["_plan_cache"] = SortOrderCache()
    return cache


def coerce_batch(
    keys, weights, dims: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize one micro-batch of weighted keys.

    ``keys`` may be an ``(n, d)`` coordinate array, a sequence of key
    tuples, or a flat sequence of 1-D keys.  Returns ``(coords,
    weights)`` with ``coords`` an ``(n, d)`` int64 array and a matching
    float weight vector.  ``dims``, when known, validates the key
    dimensionality.  Every implementation of
    :meth:`IncrementalSummary.update` funnels through this one helper
    so the (deliberately forgiving) input contract cannot drift.
    """
    raw = np.atleast_1d(np.asarray(keys, dtype=np.int64))
    weights = np.atleast_1d(np.asarray(weights, dtype=float))
    if raw.ndim == 1:
        # A flat sequence is ambiguous: n one-dimensional keys, or one
        # d-dimensional key tuple.  ``dims`` decides when known; the
        # weight count decides otherwise.  Anything else falls through
        # to the explicit length check below rather than being
        # reshaped into wrong-dimensional keys.
        if dims == 1 or (dims is None and weights.shape[0] == raw.shape[0]):
            coords = raw.reshape(-1, 1)
        else:
            coords = raw.reshape(1, -1)
    elif raw.ndim == 2:
        coords = raw
    else:
        raise ValueError("keys must be at most two-dimensional")
    if coords.shape[0] != weights.shape[0]:
        raise ValueError("keys and weights must have matching length")
    if dims is not None and coords.shape[1] != dims:
        raise ValueError(
            f"dimensionality mismatch: expected {dims} axes, "
            f"batch has {coords.shape[1]}"
        )
    return coords, weights


class Summary(abc.ABC):
    """Abstract base for range-sum summaries."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Summary footprint in elements of the original data."""

    def __len__(self) -> int:
        """Alias for :attr:`size` so summaries behave like collections."""
        return self.size

    @abc.abstractmethod
    def query(self, box: Box) -> float:
        """Estimated total weight of keys inside ``box``."""

    def query_multi(self, query) -> float:
        """Estimated total weight inside a union of disjoint boxes.

        Accepts a bare :class:`Box` as the one-box union.
        """
        if isinstance(query, Box):
            return float(self.query(query))
        return float(sum(self.query(box) for box in query))

    def query_many(self, queries: Iterable) -> List[float]:
        """Estimates for a batch of queries (boxes or multi-ranges).

        Accepts any iterable/sequence (list, tuple, generator).
        """
        return [self.query_multi(q) for q in queries]

    # ------------------------------------------------------------------
    # Mergeable-summary protocol
    # ------------------------------------------------------------------
    def merge(self, other: "Summary") -> "Summary":
        """Combine with a summary of a *disjoint* shard of the data.

        The result summarizes the union of the two underlying datasets.
        Subclasses for which merging is natural override this; the base
        implementation refuses so callers can probe :attr:`mergeable`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merging"
        )

    @property
    def mergeable(self) -> bool:
        """Whether this summary type implements :meth:`merge`."""
        return type(self).merge is not Summary.merge

    @classmethod
    def from_shards(cls, shards: Sequence["Summary"]) -> "Summary":
        """Fold per-shard summaries into one with repeated :meth:`merge`."""
        shards = list(shards)
        if not shards:
            raise ValueError("from_shards requires at least one summary")
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        return merged


class IncrementalSummary(abc.ABC):
    """The incremental (streaming) summary protocol.

    An incremental summary absorbs a live feed in micro-batches and can
    freeze its state into a queryable summary at any time:

    * :meth:`update` -- ingest one micro-batch of ``(key, weight)``
      pairs (vectorized: ``keys`` is an ``(n, d)`` coordinate array or
      a sequence of key tuples, ``weights`` the matching floats).
    * :meth:`snapshot` -- a queryable summary of everything ingested so
      far.  Snapshots must be insulated from later updates: callers may
      hold one while ingestion continues.
    * :attr:`version` -- a counter that changes whenever ingested state
      changes.  Consumers key snapshot/sort-order caches on it (see
      :class:`repro.structures.ranges.SortOrderCache`), so it must
      never repeat for distinct states of one instance.

    Natively updatable structures (the VarOpt reservoir, the streaming
    q-digest, exact stores, Count-Sketch tables) implement this
    directly; batch-only summaries stream through the buffered-rebuild
    adapter (:class:`repro.stream.BufferedRebuildSummary`), which
    amortizes full rebuilds geometrically.
    """

    @abc.abstractmethod
    def update(self, keys, weights) -> None:
        """Ingest one micro-batch of weighted keys."""

    @abc.abstractmethod
    def snapshot(self):
        """A queryable summary of everything ingested so far."""

    @property
    @abc.abstractmethod
    def version(self) -> int:
        """Counter identifying the current ingested state."""
