"""Common interface for all summaries.

Every summary -- samples and dedicated structures alike -- answers
box-range-sum queries, reports its size measured "in terms of elements
on the original data" (Section 6.2: sampled keys for samples, retained
coefficients for wavelets, materialized nodes for q-digest, counters
for sketches), and is built from a :class:`~repro.core.types.Dataset`.

Summaries that can be combined additionally implement the *mergeable
summary protocol*: ``a.merge(b)`` returns a summary of the union of the
two underlying (disjoint) datasets, and ``Cls.from_shards(shards)``
folds a list of per-shard summaries into one.  The sharded build engine
(:mod:`repro.engine`) relies on nothing else.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence

from repro.structures.ranges import Box, MultiRangeQuery


class Summary(abc.ABC):
    """Abstract base for range-sum summaries."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Summary footprint in elements of the original data."""

    @abc.abstractmethod
    def query(self, box: Box) -> float:
        """Estimated total weight of keys inside ``box``."""

    def query_multi(self, query: MultiRangeQuery) -> float:
        """Estimated total weight inside a union of disjoint boxes."""
        return float(sum(self.query(box) for box in query))

    def query_many(self, queries: Iterable[MultiRangeQuery]) -> List[float]:
        """Estimates for a batch of multi-range queries."""
        return [self.query_multi(q) for q in queries]

    # ------------------------------------------------------------------
    # Mergeable-summary protocol
    # ------------------------------------------------------------------
    def merge(self, other: "Summary") -> "Summary":
        """Combine with a summary of a *disjoint* shard of the data.

        The result summarizes the union of the two underlying datasets.
        Subclasses for which merging is natural override this; the base
        implementation refuses so callers can probe :attr:`mergeable`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merging"
        )

    @property
    def mergeable(self) -> bool:
        """Whether this summary type implements :meth:`merge`."""
        return type(self).merge is not Summary.merge

    @classmethod
    def from_shards(cls, shards: Sequence["Summary"]) -> "Summary":
        """Fold per-shard summaries into one with repeated :meth:`merge`."""
        shards = list(shards)
        if not shards:
            raise ValueError("from_shards requires at least one summary")
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        return merged
