"""Common interface for all summaries.

Every summary -- samples and dedicated structures alike -- answers
box-range-sum queries, reports its size measured "in terms of elements
on the original data" (Section 6.2: sampled keys for samples, retained
coefficients for wavelets, materialized nodes for q-digest, counters
for sketches), and is built from a :class:`~repro.core.types.Dataset`.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.structures.ranges import Box, MultiRangeQuery


class Summary(abc.ABC):
    """Abstract base for range-sum summaries."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Summary footprint in elements of the original data."""

    @abc.abstractmethod
    def query(self, box: Box) -> float:
        """Estimated total weight of keys inside ``box``."""

    def query_multi(self, query: MultiRangeQuery) -> float:
        """Estimated total weight inside a union of disjoint boxes."""
        return float(sum(self.query(box) for box in query))

    def query_many(self, queries: Iterable[MultiRangeQuery]) -> list:
        """Estimates for a batch of multi-range queries."""
        return [self.query_multi(q) for q in queries]
