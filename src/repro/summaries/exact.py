"""Exact range-sum engine (ground truth for all experiments)."""

from __future__ import annotations

import numpy as np

from repro.core.types import Dataset
from repro.structures.ranges import Box, MultiRangeQuery
from repro.summaries.base import Summary


class ExactSummary(Summary):
    """Answers every query exactly by scanning the full data.

    Not a summary in the compression sense -- it *is* the data -- but it
    implements the same interface so harness code can treat ground
    truth uniformly, and it provides the "query the full data" timing
    reference of Section 6.3.
    """

    def __init__(self, dataset: Dataset):
        self._coords = dataset.coords
        self._weights = dataset.weights

    @property
    def size(self) -> int:
        """Number of stored keys (the full data)."""
        return self._coords.shape[0]

    def query(self, box: Box) -> float:
        """Exact total weight inside ``box``."""
        mask = box.contains(self._coords)
        return float(self._weights[mask].sum())

    def query_multi(self, query: MultiRangeQuery) -> float:
        """Exact total weight inside a union of boxes (single scan)."""
        mask = query.contains(self._coords)
        return float(self._weights[mask].sum())
