"""Exact range-sum engine (ground truth for all experiments)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.types import Dataset
from repro.structures.ranges import Box, MultiRangeQuery, batch_query_sums
from repro.summaries.base import Summary


class ExactSummary(Summary):
    """Answers every query exactly by scanning the full data.

    Not a summary in the compression sense -- it *is* the data -- but it
    implements the same interface so harness code can treat ground
    truth uniformly, and it provides the "query the full data" timing
    reference of Section 6.3.
    """

    def __init__(self, dataset: Dataset):
        self._coords = dataset.coords
        self._weights = dataset.weights

    @property
    def size(self) -> int:
        """Number of stored keys (the full data)."""
        return self._coords.shape[0]

    def query(self, box: Box) -> float:
        """Exact total weight inside ``box``."""
        mask = box.contains(self._coords)
        return float(self._weights[mask].sum())

    def query_multi(self, query: MultiRangeQuery) -> float:
        """Exact total weight inside a union of boxes (single scan)."""
        mask = query.contains(self._coords)
        return float(self._weights[mask].sum())

    def query_many(self, queries: Iterable[MultiRangeQuery]) -> List[float]:
        """Exact answers for a whole battery in one broadcasted pass."""
        queries = list(queries)
        if self.size == 0:
            return [0.0] * len(queries)
        return batch_query_sums(queries, self._coords, self._weights).tolist()

    def merge(self, other: "ExactSummary") -> "ExactSummary":
        """Exact merge: concatenate the stored keys of disjoint shards."""
        if not isinstance(other, ExactSummary):
            raise TypeError(
                f"cannot merge ExactSummary with {type(other).__name__}"
            )
        merged = object.__new__(ExactSummary)
        if self.size == 0:
            merged._coords = other._coords
            merged._weights = other._weights
            return merged
        if other.size == 0:
            merged._coords = self._coords
            merged._weights = self._weights
            return merged
        merged._coords = np.concatenate((self._coords, other._coords), axis=0)
        merged._weights = np.concatenate((self._weights, other._weights))
        return merged
