"""Exact range-sum engine (ground truth for all experiments)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.types import Dataset
from repro.structures.ranges import (
    Box,
    MultiRangeQuery,
    QueryPlan,
    SortOrderCache,
    batch_query_sums,
)
from repro.summaries.base import IncrementalSummary, Summary, coerce_batch


class ExactSummary(Summary, IncrementalSummary):
    """Answers every query exactly by scanning the full data.

    Not a summary in the compression sense -- it *is* the data -- but it
    implements the same interface so harness code can treat ground
    truth uniformly, and it provides the "query the full data" timing
    reference of Section 6.3.

    Exact stores are natively incremental: :meth:`update` appends a
    micro-batch (buffered, consolidated lazily before the next query),
    and :meth:`snapshot` freezes the current rows.  Consolidation
    always builds *new* arrays, so snapshots share storage with the
    live store safely (copy-on-append semantics).
    """

    def __init__(self, dataset: Optional[Dataset] = None, *, dims: int = 1):
        if dataset is not None:
            self._coords = dataset.coords
            self._weights = dataset.weights
        else:
            self._coords = np.empty((0, dims), dtype=np.int64)
            self._weights = np.empty(0, dtype=float)
        self._pending: List = []
        self._pending_rows = 0
        self._version = 0
        self._query_cache = SortOrderCache()

    @classmethod
    def empty(cls, dims: int) -> "ExactSummary":
        """An exact store with no rows yet (streaming entry point)."""
        return cls(dims=dims)

    @classmethod
    def from_arrays(
        cls, coords: np.ndarray, weights: np.ndarray
    ) -> "ExactSummary":
        """Wrap pre-built arrays without copying."""
        out = cls(dims=coords.shape[1] if coords.ndim == 2 else 1)
        out._coords = coords
        out._weights = weights
        return out

    # ------------------------------------------------------------------
    # Incremental protocol
    # ------------------------------------------------------------------
    def update(self, keys, weights) -> None:
        """Append one micro-batch of weighted keys."""
        coords, weights = coerce_batch(
            keys, weights, dims=self._coords.shape[1]
        )
        if coords.shape[0] == 0:
            return
        self._pending.append((coords, weights))
        self._pending_rows += coords.shape[0]
        self._version += 1

    def _consolidate(self) -> None:
        """Fold buffered batches into the main arrays (new arrays)."""
        if not self._pending:
            return
        self._coords = np.concatenate(
            [self._coords] + [c for c, _w in self._pending], axis=0
        )
        self._weights = np.concatenate(
            [self._weights] + [w for _c, w in self._pending]
        )
        self._pending = []
        self._pending_rows = 0

    def snapshot(self) -> "ExactSummary":
        """The current rows as a frozen exact summary (shares arrays)."""
        self._consolidate()
        return ExactSummary.from_arrays(self._coords, self._weights)

    @property
    def version(self) -> int:
        """Counter bumped on every :meth:`update`."""
        return self._version

    @property
    def coords(self) -> np.ndarray:
        """The stored ``(n, d)`` coordinates (consolidated)."""
        self._consolidate()
        return self._coords

    @property
    def weights(self) -> np.ndarray:
        """The stored weights (consolidated)."""
        self._consolidate()
        return self._weights

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stored keys (the full data)."""
        return self._coords.shape[0] + self._pending_rows

    def query(self, box: Box) -> float:
        """Exact total weight inside ``box``."""
        self._consolidate()
        mask = box.contains(self._coords)
        return float(self._weights[mask].sum())

    def query_multi(self, query: MultiRangeQuery) -> float:
        """Exact total weight inside a union of boxes (single scan)."""
        self._consolidate()
        mask = query.contains(self._coords)
        return float(self._weights[mask].sum())

    def query_many(self, queries: Sequence) -> List[float]:
        """Exact answers for a whole battery in one broadcasted pass.

        Sort orders are cached per :attr:`version` and the battery's
        compiled query plan per query identity, so repeated batteries
        over an unchanged store skip both the re-sort and the re-stack.
        """
        self._consolidate()
        queries = (
            queries if isinstance(queries, QueryPlan) else list(queries)
        )
        if self.size == 0:
            return [0.0] * len(queries)
        return batch_query_sums(
            queries,
            self._coords,
            self._weights,
            cache=self._query_cache,
            version=self._version,
        ).tolist()

    def total_weight(self) -> float:
        """Exact total weight of all stored keys."""
        self._consolidate()
        return float(self._weights.sum())

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The consolidated rows as codec-friendly primitives."""
        self._consolidate()
        return {"coords": self._coords, "weights": self._weights}

    @classmethod
    def from_state(cls, state: dict) -> "ExactSummary":
        """Rebuild an exact store from :meth:`to_state` output."""
        return cls.from_arrays(state["coords"], state["weights"])

    def merge(self, other: "ExactSummary") -> "ExactSummary":
        """Exact merge: concatenate the stored keys of disjoint shards."""
        if not isinstance(other, ExactSummary):
            raise TypeError(
                f"cannot merge ExactSummary with {type(other).__name__}"
            )
        self._consolidate()
        other._consolidate()
        if self.size == 0:
            return ExactSummary.from_arrays(other._coords, other._weights)
        if other.size == 0:
            return ExactSummary.from_arrays(self._coords, self._weights)
        return ExactSummary.from_arrays(
            np.concatenate((self._coords, other._coords), axis=0),
            np.concatenate((self._weights, other._weights)),
        )
