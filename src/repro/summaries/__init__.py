"""Dedicated range-sum summaries used as experimental baselines."""

from repro.summaries.base import Summary
from repro.summaries.exact import ExactSummary
from repro.summaries.wavelet import WaveletSummary
from repro.summaries.qdigest import QDigestSummary
from repro.summaries.sketch import CountSketch, DyadicSketchSummary
from repro.summaries.qdigest_stream import StreamingQDigest

__all__ = [
    "Summary",
    "ExactSummary",
    "WaveletSummary",
    "QDigestSummary",
    "StreamingQDigest",
    "CountSketch",
    "DyadicSketchSummary",
]
