"""Classic streaming 1-D q-digest (Shrivastava et al., SenSys 2004).

The paper's ``qdigest`` baseline cites [22]; this module provides the
original streaming structure for completeness (the 2-D batch variant
lives in :mod:`repro.summaries.qdigest`).  Items are inserted one at a
time into a binary tree over the ``[0, 2^bits)`` domain; a compression
pass merges every node that, together with its parent and sibling,
carries less than ``total / k`` weight.  Supports range sums and
quantile queries with the classic ``log(domain)/k`` error guarantee.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.structures.intervals import IntervalTable, use_flat
from repro.structures.ranges import Box
from repro.summaries.base import IncrementalSummary, Summary, battery_plans


class StreamingQDigest(Summary, IncrementalSummary):
    """A weight-aware 1-D q-digest over ``bits``-bit integer keys.

    Natively incremental *and* mergeable: :meth:`update` inserts a
    micro-batch, :meth:`snapshot` freezes a compressed copy, and
    :meth:`merge` adds node counts.  The structure is fully
    deterministic (no RNG), so two digests fed the same stream with the
    same ``compress_every`` cadence are identical.

    Parameters
    ----------
    bits:
        Domain is ``[0, 2**bits)``.
    k:
        Compression factor: the structure keeps O(k log(2^bits)) nodes
        and answers range sums within ``(log(2^bits) / k) * total``.
    compress_every:
        Run compression after this many insertions (amortization knob).
    """

    def __init__(self, bits: int, k: int, compress_every: int = 1024):
        if bits < 1 or bits > 62:
            raise ValueError("bits must be in [1, 62]")
        if k < 1:
            raise ValueError("k must be >= 1")
        self._bits = bits
        self._k = k
        self._compress_every = max(1, int(compress_every))
        # Node id: 1-based heap numbering; node v at depth d covers a
        # span of 2^(bits-d) keys.  Counts live in a dict (sparse tree).
        self._counts: Dict[int, float] = {}
        self._total = 0.0
        self._since_compress = 0
        self._inserts = 0
        # Bumped on every (re)bind or mutation of the node tree; keys
        # every derived cache of `query_many` (the per-depth tables,
        # the flat interval table, and any spilled pushdown store).
        self._mutations = 0

    def _mutated(self) -> None:
        """Record a node-tree mutation, invalidating derived caches.

        Must be called at *every* site that rebinds or mutates
        ``_counts`` -- inserts, compressions, merge targets, restored
        and snapshot copies -- or ``query_many`` would serve answers
        from a stale cached table (regression-pinned in
        ``tests/test_interval_store.py``).
        """
        self._mutations += 1

    @classmethod
    def for_domain(
        cls, domain, size: int, compress_every: int = 1024
    ) -> "StreamingQDigest":
        """A digest sized for a 1-D domain and a node budget.

        The single sizing policy shared by the batch registry builder
        and the stream panes, so streamed and batch-built digests stay
        structurally identical.
        """
        if domain.dims != 1:
            raise ValueError("qdigest-stream supports 1-D domains only")
        bits = max(1, int(domain.sizes[0] - 1).bit_length())
        return cls(bits, k=max(1, size // max(1, bits)),
                   compress_every=compress_every)

    @property
    def total(self) -> float:
        """Total inserted weight."""
        return self._total

    @property
    def size(self) -> int:
        """Number of materialized nodes."""
        return len(self._counts)

    def _leaf_id(self, key: int) -> int:
        if not 0 <= key < (1 << self._bits):
            raise ValueError("key outside domain")
        return (1 << self._bits) + int(key)

    def _depth(self, node: int) -> int:
        return node.bit_length() - 1

    def _node_interval(self, node: int) -> Tuple[int, int]:
        depth = self._depth(node)
        span = 1 << (self._bits - depth)
        lo = (node - (1 << depth)) * span
        return lo, lo + span - 1

    def insert(self, key: int, weight: float = 1.0) -> None:
        """Insert one weighted item."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        if weight == 0:
            return
        leaf = self._leaf_id(key)
        self._counts[leaf] = self._counts.get(leaf, 0.0) + weight
        self._total += weight
        self._since_compress += 1
        self._inserts += 1
        self._mutated()
        if self._since_compress >= self._compress_every:
            self.compress()

    def insert_many(self, keys, weights) -> None:
        """Insert a batch of items (still one logical insert each)."""
        for key, weight in zip(keys, weights):
            self.insert(int(key), float(weight))

    # ------------------------------------------------------------------
    # Incremental summary protocol
    # ------------------------------------------------------------------
    def update(self, keys, weights) -> None:
        """Insert one micro-batch (1-D keys or an ``(n, 1)`` array)."""
        keys = np.asarray(keys)
        if keys.ndim == 2:
            if keys.shape[1] != 1:
                raise ValueError("streaming q-digest keys must be 1-D")
            keys = keys[:, 0]
        weights = np.atleast_1d(np.asarray(weights, dtype=float))
        self.insert_many(np.atleast_1d(keys), weights)

    def snapshot(self) -> "StreamingQDigest":
        """A compressed copy, insulated from later inserts."""
        clone = StreamingQDigest(
            self._bits, self._k, compress_every=self._compress_every
        )
        clone._counts = dict(self._counts)
        clone._total = self._total
        clone._inserts = self._inserts
        clone._mutated()
        clone.compress()
        return clone

    @property
    def version(self) -> int:
        """Counter bumped on every insert."""
        return self._inserts

    def compress(self) -> None:
        """Merge light (node, sibling) pairs into their parents."""
        self._since_compress = 0
        self._mutated()
        if self._total == 0:
            return
        threshold = self._total / self._k
        # Bottom-up sweep: process deeper nodes first.
        for depth in range(self._bits, 0, -1):
            level_nodes = [
                node
                for node in list(self._counts)
                if self._depth(node) == depth
            ]
            for node in level_nodes:
                if node not in self._counts:
                    continue
                sibling = node ^ 1
                parent = node >> 1
                triple = (
                    self._counts.get(node, 0.0)
                    + self._counts.get(sibling, 0.0)
                    + self._counts.get(parent, 0.0)
                )
                if triple < threshold:
                    merged = self._counts.pop(node, 0.0) + self._counts.pop(
                        sibling, 0.0
                    )
                    if merged:
                        self._counts[parent] = (
                            self._counts.get(parent, 0.0) + merged
                        )

    def merge(self, other: "StreamingQDigest") -> "StreamingQDigest":
        """The classic q-digest merge: add node counts, then compress.

        Both digests must cover the same domain.  The merged digest
        keeps the larger compression factor ``k``; the error guarantee
        ``log(domain) * total / k`` holds for the combined total.
        """
        if not isinstance(other, StreamingQDigest):
            raise TypeError(
                f"cannot merge StreamingQDigest with {type(other).__name__}"
            )
        if self._bits != other._bits:
            raise ValueError("cannot merge q-digests over different domains")
        merged = StreamingQDigest(
            self._bits,
            max(self._k, other._k),
            compress_every=min(self._compress_every, other._compress_every),
        )
        merged._counts = dict(self._counts)
        for node, count in other._counts.items():
            merged._counts[node] = merged._counts.get(node, 0.0) + count
        merged._total = self._total + other._total
        merged._mutated()
        merged.compress()
        return merged

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The sparse node tree as codec-friendly primitives.

        ``since_compress`` is included so a round-tripped digest fires
        its next compression at exactly the same insert as the
        original (the structure is deterministic end to end).
        """
        nodes = np.fromiter(self._counts.keys(), dtype=np.int64,
                            count=len(self._counts))
        counts = np.fromiter(self._counts.values(), dtype=float,
                             count=len(self._counts))
        return {
            "bits": self._bits,
            "k": self._k,
            "compress_every": self._compress_every,
            "nodes": nodes,
            "counts": counts,
            "total": self._total,
            "since_compress": self._since_compress,
            "inserts": self._inserts,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingQDigest":
        """Rebuild a streaming q-digest from :meth:`to_state` output."""
        digest = cls(
            int(state["bits"]),
            int(state["k"]),
            compress_every=int(state["compress_every"]),
        )
        digest._counts = {
            int(node): float(count)
            for node, count in zip(state["nodes"], state["counts"])
        }
        digest._total = float(state["total"])
        digest._since_compress = int(state["since_compress"])
        digest._inserts = int(state["inserts"])
        digest._mutated()
        return digest

    def range_sum(self, lo: int, hi: int) -> float:
        """Estimated weight of keys in ``[lo, hi]``.

        Nodes fully inside count fully; straddling nodes contribute the
        overlapped fraction of their span (midpoint-style estimate).
        """
        if lo > hi:
            raise ValueError("empty range")
        total = 0.0
        for node, count in self._counts.items():
            n_lo, n_hi = self._node_interval(node)
            if n_lo >= lo and n_hi <= hi:
                total += count
            elif n_hi >= lo and n_lo <= hi:
                overlap = min(hi, n_hi) - max(lo, n_lo) + 1
                total += count * overlap / (n_hi - n_lo + 1)
        return total

    def query(self, box: Box) -> float:
        """Box interface used by the shared harness (1-D boxes)."""
        return self.range_sum(box.lows[0], box.highs[0])

    def _interval_table(self):
        """Per-depth sorted cell tables, cached per mutation.

        Returns a list of ``(shift, cells, counts, prefix)`` tuples,
        one per materialized depth: ``cells`` are the sorted cell
        indices (``node - 2**depth``) at that depth, ``counts`` their
        weights in cell order, and ``prefix`` the exclusive running
        sum of ``counts`` (so a contiguous cell run sums in O(1)).
        Recomputed only when the tree changed (any insert or
        compression bumps ``_mutations``), so repeated query batteries
        over a frozen snapshot build the tables once.
        """
        cached = self.__dict__.get("_interval_arrays")
        if cached is None or cached[0] != self._mutations:
            nodes = np.fromiter(self._counts.keys(), dtype=np.int64,
                                count=len(self._counts))
            counts = np.fromiter(self._counts.values(), dtype=float,
                                 count=len(self._counts))
            # Depth of heap node v is floor(log2 v): an exact integer
            # binary search on the bit length (no float log).
            remaining = nodes.copy()
            depths = np.zeros(nodes.shape[0], dtype=np.int64)
            for shift in (32, 16, 8, 4, 2, 1):
                big = remaining >= np.int64(1) << shift
                depths[big] += shift
                remaining[big] >>= shift
            tables = []
            for depth in np.unique(depths):
                rows = np.flatnonzero(depths == depth)
                cells = nodes[rows] - (np.int64(1) << depth)
                order = np.argsort(cells)
                cell_counts = counts[rows][order]
                prefix = np.concatenate(([0.0], np.cumsum(cell_counts)))
                tables.append(
                    (self._bits - int(depth), cells[order], cell_counts,
                     prefix)
                )
            cached = (self._mutations, tables)
            self.__dict__["_interval_arrays"] = cached
        return cached[1]

    def interval_table(self) -> IntervalTable:
        """The node tree as a flat :class:`IntervalTable`.

        Cached per mutation (``_mutated`` keys it), so repeated
        batteries over a frozen snapshot encode once.  The table's
        canonical per-level order matches the retained per-depth
        tables exactly, which is what keeps the flat kernel's answers
        bit-identical to :meth:`_query_many_levels`.
        """
        cached = self.__dict__.get("_flat_table")
        if cached is None or cached[0] != self._mutations:
            nodes = np.fromiter(self._counts.keys(), dtype=np.int64,
                                count=len(self._counts))
            counts = np.fromiter(self._counts.values(), dtype=float,
                                 count=len(self._counts))
            table = IntervalTable.from_dyadic_nodes(
                self._bits, nodes, counts
            )
            cached = (self._mutations, table)
            self.__dict__["_flat_table"] = cached
        return cached[1]

    def _spill_backend(self, table: IntervalTable):
        """An on-disk pushdown handle when ``table`` busts the budget.

        Returns ``None`` (serve in RAM) unless the table's resident
        bytes exceed the effective RAM budget -- the per-instance
        ``pushdown_budget`` attribute if set, else the module default
        from :func:`repro.backends.pushdown.ram_budget`.  The spilled
        store is cached per mutation so repeated batteries reuse one
        SQLite file.
        """
        budget = getattr(self, "pushdown_budget", None)
        if budget is None:
            from repro.backends.pushdown import ram_budget
            budget = ram_budget()
        if budget is None or table.nbytes <= budget:
            return None
        cached = self.__dict__.get("_spill_store")
        if cached is None or cached[0] != self._mutations:
            from repro.backends.pushdown import PushdownStore
            store = PushdownStore.temp()
            store.put("digest", table)
            cached = (self._mutations, store)
            self.__dict__["_spill_store"] = cached
        return cached[1].handle("digest")

    def query_many(self, queries: Iterable) -> List[float]:
        """Estimates for a whole battery over the interval table.

        The default path encodes the node tree as a flat
        :class:`IntervalTable` and runs its compiled battery scan
        (:meth:`IntervalTable.range_scan`): the battery's bounds are
        sorted once on the plan, each depth's cells are placed among
        them by counting, and the compiled gather replays for repeat
        batteries.  When the table exceeds the pushdown RAM budget the
        same battery is answered out-of-core by the SQLite backend.
        Setting ``flat_kernel = False`` (or ``REPRO_FLAT_KERNELS=0``)
        retains the historical per-depth ``searchsorted`` kernel; all
        three paths are bit-identical.
        """
        plan = battery_plans(self).fetch_plan(queries)
        if len(plan) == 0:
            return []
        if plan.dims != 1:
            raise ValueError("streaming q-digest answers 1-D boxes only")
        if not self._counts:
            return [0.0] * len(plan)
        if use_flat(self):
            table = self.interval_table()
            spilled = self._spill_backend(table)
            if spilled is not None:
                bounds = plan.bounds
                per_box = spilled.range_sums(
                    bounds[:, 0, 0], bounds[:, 0, 1]
                )
            else:
                per_box = table.range_scan(plan)
        else:
            per_box = self._query_many_levels(plan)
        return plan.reduce_boxes(per_box).tolist()

    def _query_many_levels(self, plan) -> np.ndarray:
        """Retained per-depth kernel (pre-interval-table, pinned).

        Per materialized depth a box resolves in O(log nodes): the run
        of cells fully inside the box is one prefix-sum difference
        between two ``searchsorted`` bounds, and only the two endpoint
        cells can straddle, each one more ``searchsorted`` probe
        contributing its overlapped span fraction.  Kept as the
        bit-exact reference for the flat and pushdown kernels.
        """
        bounds = plan.bounds
        lo = bounds[:, 0, 0]
        hi = bounds[:, 0, 1]
        per_box = np.zeros(bounds.shape[0], dtype=float)
        for shift, cells, cell_counts, prefix in self._interval_table():
            span = np.int64(1) << np.int64(shift)
            # Cells fully inside [lo, hi]: the contiguous run [a, b].
            a = (lo + span - 1) >> shift
            b = ((hi + 1) >> shift) - 1
            lo_idx = np.searchsorted(cells, a, side="left")
            hi_idx = np.searchsorted(cells, b, side="right")
            per_box += prefix[np.maximum(hi_idx, lo_idx)] - prefix[lo_idx]
            # Endpoint cells outside [a, b] straddle a box edge and
            # contribute fractionally; the right endpoint is skipped
            # when it shares the left one's cell.
            c_lo = lo >> shift
            c_hi = hi >> shift
            for cand, partial in (
                (c_lo, (c_lo < a) | (c_lo > b)),
                (c_hi, ((c_hi < a) | (c_hi > b)) & (c_hi != c_lo)),
            ):
                pos = np.searchsorted(cells, cand)
                pos_c = np.minimum(pos, cells.size - 1)
                idx = np.flatnonzero((cells[pos_c] == cand) & partial)
                if idx.size == 0:
                    continue
                n_lo = cand[idx] * span
                n_hi = n_lo + span - 1
                overlap = (
                    np.minimum(hi[idx], n_hi) - np.maximum(lo[idx], n_lo) + 1
                )
                per_box[idx] += (
                    cell_counts[pos_c[idx]] * overlap / float(span)
                )
        return per_box

    def quantile(self, phi: float) -> int:
        """Key at (approximately) the phi-quantile of the weight."""
        if not 0 <= phi <= 1:
            raise ValueError("phi must be in [0, 1]")
        target = phi * self._total
        # Sort materialized nodes by right endpoint; walk the
        # cumulative weight (the classic q-digest quantile walk).
        nodes = sorted(
            self._counts.items(),
            key=lambda item: (self._node_interval(item[0])[1],
                              self._node_interval(item[0])[0]),
        )
        running = 0.0
        for node, count in nodes:
            running += count
            if running >= target:
                return self._node_interval(node)[1]
        return (1 << self._bits) - 1

    def error_bound(self) -> float:
        """The classic additive error guarantee per range endpoint."""
        return self._bits * self._total / self._k
