"""Count-Sketch and dyadic-rectangle sketch summaries (the ``sketch`` baseline).

The Count-Sketch of Charikar, Chen, Farach-Colton [4]: ``depth`` rows of
``width`` counters; each key hashes to one counter per row with a
random sign, and a key's frequency estimate is the median of its signed
counters.

For 2-D range sums we keep one sketch per pair of dyadic levels
(``O(log X * log Y)`` sketches); a box query decomposes into canonical
dyadic rectangles, each estimated from the sketch at its level pair.
The total counter budget is ``s``, split evenly across the sketches --
this is exactly why the paper finds sketches need "much larger" space
before becoming accurate on two-dimensional data.

Sketch tables are *linear* in the input: updating is vector addition,
so sketches are natively incremental (``update``/``snapshot``) and --
when two sketches share hash functions -- mergeable by plain table
addition.  Shard builds and stream panes therefore derive their hash
functions from a shared ``hash_seed`` (one seed per engine, not per
shard), which makes ``merge`` of per-shard sketches *exactly* equal to
a monolithic build of the union.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.chain import run_starts
from repro.core.types import Dataset
from repro.structures.dyadic import (
    dyadic_decompose_interval,
    dyadic_decompose_intervals,
)
from repro.structures.ranges import Box
from repro.summaries.base import (
    IncrementalSummary,
    Summary,
    battery_plans,
    coerce_batch,
)

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Hash seed used when the caller does not supply one; shared by every
#: build so independently-built sketches merge by default.
DEFAULT_HASH_SEED = 0xC0FFEE


class CountSketch:
    """A Count-Sketch over 64-bit integer keys.

    ``seed`` (or a ``rng``) determines the hash functions.  Two
    sketches merge iff their hash functions are identical, so shards of
    one logical sketch must be built from the same seed.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[int] = None,
    ):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        if seed is not None:
            rng = np.random.default_rng(seed)
        elif rng is None:
            rng = np.random.default_rng(DEFAULT_HASH_SEED)
        self.width = int(width)
        self.depth = int(depth)
        self._table = np.zeros((self.depth, self.width), dtype=float)
        # Multiply-shift hashing: odd 64-bit multipliers per row.
        self._bucket_mul = rng.integers(
            1, 2**63, size=self.depth, dtype=np.uint64
        ) * np.uint64(2) + np.uint64(1)
        self._bucket_add = rng.integers(
            0, 2**63, size=self.depth, dtype=np.uint64
        )
        self._sign_mul = rng.integers(
            1, 2**63, size=self.depth, dtype=np.uint64
        ) * np.uint64(2) + np.uint64(1)
        self._sign_add = rng.integers(
            0, 2**63, size=self.depth, dtype=np.uint64
        )

    def _buckets_and_signs(
        self, keys: np.ndarray, row: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        keys = keys.astype(np.uint64, copy=False)
        with np.errstate(over="ignore"):
            mixed = keys * self._bucket_mul[row] + self._bucket_add[row]
            buckets = (mixed >> np.uint64(33)) % np.uint64(self.width)
            sign_bits = (keys * self._sign_mul[row] + self._sign_add[row]) >> np.uint64(63)
        signs = np.where(sign_bits.astype(np.int64) == 0, 1.0, -1.0)
        return buckets.astype(np.int64), signs

    def update_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Add ``values`` to the sketch under ``keys`` (vectorized)."""
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=float)
        for row in range(self.depth):
            buckets, signs = self._buckets_and_signs(keys, row)
            np.add.at(self._table[row], buckets, signs * values)

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        """Median-of-rows estimates for a batch of keys."""
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0)
        estimates = np.empty((self.depth, keys.shape[0]))
        for row in range(self.depth):
            buckets, signs = self._buckets_and_signs(keys, row)
            estimates[row] = self._table[row][buckets] * signs
        return np.median(estimates, axis=0)

    def estimate(self, key: int) -> float:
        """Estimate for a single key."""
        return float(self.estimate_many(np.asarray([key], dtype=np.uint64))[0])

    @property
    def counters(self) -> int:
        """Total number of counters held."""
        return self.depth * self.width

    def same_hashes(self, other: "CountSketch") -> bool:
        """Whether the two sketches share hash functions (mergeable)."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and np.array_equal(self._bucket_mul, other._bucket_mul)
            and np.array_equal(self._bucket_add, other._bucket_add)
            and np.array_equal(self._sign_mul, other._sign_mul)
            and np.array_equal(self._sign_add, other._sign_add)
        )

    def copy(self) -> "CountSketch":
        """A sketch with the same hashes and a copied table."""
        clone = object.__new__(CountSketch)
        clone.width = self.width
        clone.depth = self.depth
        clone._table = self._table.copy()
        clone._bucket_mul = self._bucket_mul
        clone._bucket_add = self._bucket_add
        clone._sign_mul = self._sign_mul
        clone._sign_add = self._sign_add
        return clone

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Merge two shared-seed sketches by table addition.

        Sketch tables are linear in the input, so the merged table
        equals the table a single sketch would hold after seeing both
        inputs -- the merge is exact, not an approximation of one.
        """
        if not isinstance(other, CountSketch):
            raise TypeError(
                f"cannot merge CountSketch with {type(other).__name__}"
            )
        if not self.same_hashes(other):
            raise ValueError(
                "cannot merge sketches with different hash functions; "
                "build shards from a shared hash seed"
            )
        merged = self.copy()
        merged._table += other._table
        return merged

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Table plus hash parameters as codec-friendly primitives."""
        return {
            "width": self.width,
            "depth": self.depth,
            "table": self._table,
            "bucket_mul": self._bucket_mul,
            "bucket_add": self._bucket_add,
            "sign_mul": self._sign_mul,
            "sign_add": self._sign_add,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CountSketch":
        """Rebuild a sketch from :meth:`to_state` output."""
        sketch = object.__new__(cls)
        sketch.width = int(state["width"])
        sketch.depth = int(state["depth"])
        sketch._table = np.asarray(state["table"], dtype=float)
        sketch._bucket_mul = np.asarray(state["bucket_mul"], dtype=np.uint64)
        sketch._bucket_add = np.asarray(state["bucket_add"], dtype=np.uint64)
        sketch._sign_mul = np.asarray(state["sign_mul"], dtype=np.uint64)
        sketch._sign_add = np.asarray(state["sign_add"], dtype=np.uint64)
        return sketch


def _axis_bits(size: int) -> int:
    bits = int(size - 1).bit_length() if size > 1 else 1
    if (1 << bits) < size:
        bits += 1
    return bits


class DyadicSketchSummary(Summary, IncrementalSummary):
    """Per-dyadic-level Count-Sketches answering box range sums (1-D/2-D).

    Hash functions come from ``hash_seed`` when given (the shard- and
    stream-friendly path: every build from the same seed is mergeable
    by table addition), from ``rng`` when only that is given (the
    legacy independent-hashes path), and from ``DEFAULT_HASH_SEED``
    when neither is.  Natively incremental: tables are linear, so
    :meth:`update` is vectorized addition and :meth:`snapshot` copies
    the tables.
    """

    def __init__(
        self,
        dataset: Optional[Dataset] = None,
        s: int = 1,
        depth: int = 3,
        rng: Optional[np.random.Generator] = None,
        hash_seed: Optional[int] = None,
        *,
        domain=None,
    ):
        if dataset is None and domain is None:
            raise ValueError("need a dataset or a domain")
        if domain is None:
            domain = dataset.domain
        if domain.dims not in (1, 2):
            raise ValueError("sketch summary supports 1-D and 2-D data")
        if s < 1:
            raise ValueError("counter budget must be >= 1")
        if hash_seed is None and rng is None:
            hash_seed = DEFAULT_HASH_SEED
        hash_rng = (
            np.random.default_rng(hash_seed) if hash_seed is not None else rng
        )
        self._dims = domain.dims
        self._bits = tuple(_axis_bits(size) for size in domain.sizes)
        self._depth = int(depth)
        if self._dims == 1:
            level_pairs = [(dx,) for dx in range(self._bits[0] + 1)]
        else:
            level_pairs = [
                (dx, dy)
                for dx in range(self._bits[0] + 1)
                for dy in range(self._bits[1] + 1)
            ]
        self._width = max(1, s // (len(level_pairs) * depth))
        self._sketches: Dict[tuple, CountSketch] = {
            pair: CountSketch(self._width, depth, hash_rng)
            for pair in level_pairs
        }
        self._version = 0
        if dataset is not None:
            self.update(dataset.coords, dataset.weights)

    @classmethod
    def for_domain(
        cls,
        domain,
        s: int,
        depth: int = 3,
        hash_seed: int = DEFAULT_HASH_SEED,
    ) -> "DyadicSketchSummary":
        """An empty sketch summary over ``domain`` (streaming entry)."""
        return cls(None, s, depth, hash_seed=hash_seed, domain=domain)

    def _pack(self, level_pair: tuple, coords: np.ndarray) -> np.ndarray:
        """Cell ids of points (or cells) at a dyadic level pair."""
        if self._dims == 1:
            (dx,) = level_pair
            return (coords[:, 0].astype(np.uint64)) >> np.uint64(
                self._bits[0] - dx
            )
        dx, dy = level_pair
        kx = coords[:, 0].astype(np.uint64) >> np.uint64(self._bits[0] - dx)
        ky = coords[:, 1].astype(np.uint64) >> np.uint64(self._bits[1] - dy)
        return (kx << np.uint64(32)) | ky

    # ------------------------------------------------------------------
    # Incremental summary protocol
    # ------------------------------------------------------------------
    def update(self, keys, weights) -> None:
        """Add one micro-batch of weighted keys to every level sketch."""
        coords, weights = coerce_batch(keys, weights, dims=self._dims)
        if coords.shape[0] == 0:
            return
        for pair, sketch in self._sketches.items():
            sketch.update_many(self._pack(pair, coords), weights)
        self._version += 1

    def snapshot(self) -> "DyadicSketchSummary":
        """A table-copied clone, insulated from later updates."""
        clone = object.__new__(DyadicSketchSummary)
        clone._dims = self._dims
        clone._bits = self._bits
        clone._depth = self._depth
        clone._width = self._width
        clone._sketches = {
            pair: sketch.copy() for pair, sketch in self._sketches.items()
        }
        clone._version = self._version
        return clone

    @property
    def version(self) -> int:
        """Counter bumped on every update batch."""
        return self._version

    # ------------------------------------------------------------------
    # Mergeable summary protocol
    # ------------------------------------------------------------------
    def merge(self, other: "DyadicSketchSummary") -> "DyadicSketchSummary":
        """Merge shard sketches by per-level table addition (exact)."""
        if not isinstance(other, DyadicSketchSummary):
            raise TypeError(
                f"cannot merge DyadicSketchSummary with {type(other).__name__}"
            )
        if self._dims != other._dims or self._bits != other._bits:
            raise ValueError("cannot merge sketches over different domains")
        if set(self._sketches) != set(other._sketches):
            raise ValueError("cannot merge sketches with different levels")
        merged = object.__new__(DyadicSketchSummary)
        merged._dims = self._dims
        merged._bits = self._bits
        merged._depth = self._depth
        merged._width = self._width
        merged._sketches = {
            pair: sketch.merge(other._sketches[pair])
            for pair, sketch in self._sketches.items()
        }
        merged._version = self._version + other._version
        return merged

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Every level sketch's state as codec-friendly primitives."""
        return {
            "dims": self._dims,
            "bits": self._bits,
            "depth": self._depth,
            "width": self._width,
            "version": self._version,
            "sketches": {
                pair: sketch.to_state()
                for pair, sketch in self._sketches.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "DyadicSketchSummary":
        """Rebuild a dyadic sketch summary from :meth:`to_state` output."""
        summary = object.__new__(cls)
        summary._dims = int(state["dims"])
        summary._bits = tuple(int(b) for b in state["bits"])
        summary._depth = int(state["depth"])
        summary._width = int(state["width"])
        summary._version = int(state["version"])
        summary._sketches = {
            tuple(int(level) for level in pair): CountSketch.from_state(sk)
            for pair, sk in state["sketches"].items()
        }
        return summary

    @property
    def size(self) -> int:
        """Total number of counters across all sketches."""
        return sum(sk.counters for sk in self._sketches.values())

    def query(self, box: Box) -> float:
        """Range-sum estimate via canonical dyadic decomposition."""
        per_axis = [
            dyadic_decompose_interval(
                box.lows[a], box.highs[a], self._bits[a]
            )
            for a in range(self._dims)
        ]
        # Group the decomposition rectangles by level pair so each
        # sketch is probed once with a vector of keys.
        grouped: Dict[tuple, List[int]] = defaultdict(list)
        if self._dims == 1:
            for depth_x, idx_x in per_axis[0]:
                grouped[(depth_x,)].append(idx_x)
        else:
            for depth_x, idx_x in per_axis[0]:
                for depth_y, idx_y in per_axis[1]:
                    grouped[(depth_x, depth_y)].append(
                        (idx_x << 32) | idx_y
                    )
        total = 0.0
        for pair, cell_keys in grouped.items():
            keys = np.asarray(cell_keys, dtype=np.uint64)
            total += float(self._sketches[pair].estimate_many(keys).sum())
        return total

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def query_many(self, queries: Iterable) -> List[float]:
        """Estimates for a whole battery in one decomposition pass.

        All query intervals are dyadically decomposed at once
        (:func:`~repro.structures.dyadic.dyadic_decompose_intervals`),
        cell ids are deduplicated across queries, and each level(-pair)
        sketch is probed with exactly one :meth:`CountSketch.
        estimate_many` call -- ``O(bits)`` (1-D) or ``O(bits^2)`` (2-D)
        kernel calls for the whole battery instead of per query.
        Answers match the scalar :meth:`query` up to floating-point
        summation order.
        """
        plan = battery_plans(self).fetch_plan(queries)
        if len(plan) == 0:
            return []
        if plan.dims != self._dims:
            raise ValueError(
                f"dimensionality mismatch: sketch is {self._dims}-D, "
                f"queries are {plan.dims}-D"
            )
        bounds = plan.bounds
        per_box = np.zeros(bounds.shape[0], dtype=float)
        if self._dims == 1:
            self._accumulate_1d(bounds, np.arange(bounds.shape[0]), per_box)
        else:
            # Cap the materialized rectangle count: a 2-D box yields up
            # to (2 bits_x)(2 bits_y) rectangles.
            per_box_rects = 4 * self._bits[0] * self._bits[1]
            chunk = max(1, 4_000_000 // max(1, per_box_rects))
            for start in range(0, bounds.shape[0], chunk):
                stop = min(bounds.shape[0], start + chunk)
                self._accumulate_2d(bounds[start:stop], start, per_box)
        return plan.reduce_boxes(per_box).tolist()

    def _accumulate_1d(
        self, bounds: np.ndarray, owners: np.ndarray, per_box: np.ndarray
    ) -> None:
        """Add every box's 1-D estimate into ``per_box``."""
        depths, cells, cell_owner = dyadic_decompose_intervals(
            bounds[:, 0, 0], bounds[:, 0, 1], self._bits[0]
        )
        owner = owners[cell_owner]
        for start, stop in _depth_runs(depths):
            depth = int(depths[start])
            keys = cells[start:stop].astype(np.uint64)
            uniq, inverse = np.unique(keys, return_inverse=True)
            estimates = self._sketches[(depth,)].estimate_many(uniq)
            np.add.at(per_box, owner[start:stop], estimates[inverse])

    def _accumulate_2d(
        self, bounds: np.ndarray, offset: int, per_box: np.ndarray
    ) -> None:
        """Add one chunk of boxes' 2-D estimates into ``per_box``.

        The per-axis decompositions are crossed into rectangles with
        repeat/rank arithmetic (no per-query Python), grouped by level
        pair, and each level pair's packed cell ids are deduplicated
        before the single ``estimate_many`` probe.
        """
        n_boxes = bounds.shape[0]
        dx, ix, ox = dyadic_decompose_intervals(
            bounds[:, 0, 0], bounds[:, 0, 1], self._bits[0]
        )
        dy, iy, oy = dyadic_decompose_intervals(
            bounds[:, 1, 0], bounds[:, 1, 1], self._bits[1]
        )
        # Owner-major cell lists (decomposition output is depth-major).
        x_order = np.argsort(ox, kind="stable")
        dx, ix, ox = dx[x_order], ix[x_order], ox[x_order]
        y_order = np.argsort(oy, kind="stable")
        dy, iy = dy[y_order], iy[y_order]
        cx = np.bincount(ox, minlength=n_boxes)
        cy = np.bincount(oy[y_order], minlength=n_boxes)
        counts_xy = cx * cy
        total = int(counts_xy.sum())
        rect_owner = np.repeat(np.arange(n_boxes), counts_xy)
        # Rectangle k of box b is (x-cell k // cy[b], y-cell k % cy[b]).
        rect_dx = np.repeat(dx, cy[ox])
        rect_ix = np.repeat(ix, cy[ox])
        xy_starts = np.concatenate(([0], np.cumsum(counts_xy)[:-1]))
        rank = np.arange(total) - np.repeat(xy_starts, counts_xy)
        y_starts = np.concatenate(([0], np.cumsum(cy)[:-1]))
        pos = y_starts[rect_owner] + rank % cy[rect_owner]
        rect_dy = dy[pos]
        rect_iy = iy[pos]
        packed = (rect_ix.astype(np.uint64) << np.uint64(32)) | rect_iy.astype(
            np.uint64
        )
        pair_id = rect_dx * (self._bits[1] + 1) + rect_dy
        order = np.argsort(pair_id, kind="stable")
        pair_id = pair_id[order]
        packed = packed[order]
        owner = rect_owner[order] + offset
        for start, stop in _depth_runs(pair_id):
            pair = (
                int(pair_id[start]) // (self._bits[1] + 1),
                int(pair_id[start]) % (self._bits[1] + 1),
            )
            uniq, inverse = np.unique(packed[start:stop], return_inverse=True)
            estimates = self._sketches[pair].estimate_many(uniq)
            np.add.at(per_box, owner[start:stop], estimates[inverse])


def _depth_runs(group_ids: np.ndarray):
    """(start, stop) pairs of each run of equal values in ``group_ids``.

    Thin generator over :func:`repro.core.chain.run_starts`, the shared
    run-boundary helper.
    """
    starts = run_starts(group_ids)
    stops = np.append(starts[1:], group_ids.size)
    for start, stop in zip(starts, stops):
        yield int(start), int(stop)
