"""Count-Sketch and dyadic-rectangle sketch summaries (the ``sketch`` baseline).

The Count-Sketch of Charikar, Chen, Farach-Colton [4]: ``depth`` rows of
``width`` counters; each key hashes to one counter per row with a
random sign, and a key's frequency estimate is the median of its signed
counters.

For 2-D range sums we keep one sketch per pair of dyadic levels
(``O(log X * log Y)`` sketches); a box query decomposes into canonical
dyadic rectangles, each estimated from the sketch at its level pair.
The total counter budget is ``s``, split evenly across the sketches --
this is exactly why the paper finds sketches need "much larger" space
before becoming accurate on two-dimensional data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.core.types import Dataset
from repro.structures.dyadic import dyadic_decompose_interval
from repro.structures.ranges import Box
from repro.summaries.base import Summary

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


class CountSketch:
    """A Count-Sketch over 64-bit integer keys."""

    def __init__(self, width: int, depth: int, rng: np.random.Generator):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self._table = np.zeros((self.depth, self.width), dtype=float)
        # Multiply-shift hashing: odd 64-bit multipliers per row.
        self._bucket_mul = rng.integers(
            1, 2**63, size=self.depth, dtype=np.uint64
        ) * np.uint64(2) + np.uint64(1)
        self._bucket_add = rng.integers(
            0, 2**63, size=self.depth, dtype=np.uint64
        )
        self._sign_mul = rng.integers(
            1, 2**63, size=self.depth, dtype=np.uint64
        ) * np.uint64(2) + np.uint64(1)
        self._sign_add = rng.integers(
            0, 2**63, size=self.depth, dtype=np.uint64
        )

    def _buckets_and_signs(
        self, keys: np.ndarray, row: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        keys = keys.astype(np.uint64, copy=False)
        with np.errstate(over="ignore"):
            mixed = keys * self._bucket_mul[row] + self._bucket_add[row]
            buckets = (mixed >> np.uint64(33)) % np.uint64(self.width)
            sign_bits = (keys * self._sign_mul[row] + self._sign_add[row]) >> np.uint64(63)
        signs = np.where(sign_bits.astype(np.int64) == 0, 1.0, -1.0)
        return buckets.astype(np.int64), signs

    def update_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Add ``values`` to the sketch under ``keys`` (vectorized)."""
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=float)
        for row in range(self.depth):
            buckets, signs = self._buckets_and_signs(keys, row)
            np.add.at(self._table[row], buckets, signs * values)

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        """Median-of-rows estimates for a batch of keys."""
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0)
        estimates = np.empty((self.depth, keys.shape[0]))
        for row in range(self.depth):
            buckets, signs = self._buckets_and_signs(keys, row)
            estimates[row] = self._table[row][buckets] * signs
        return np.median(estimates, axis=0)

    def estimate(self, key: int) -> float:
        """Estimate for a single key."""
        return float(self.estimate_many(np.asarray([key], dtype=np.uint64))[0])

    @property
    def counters(self) -> int:
        """Total number of counters held."""
        return self.depth * self.width


def _axis_bits(size: int) -> int:
    bits = int(size - 1).bit_length() if size > 1 else 1
    if (1 << bits) < size:
        bits += 1
    return bits


class DyadicSketchSummary(Summary):
    """Per-dyadic-level Count-Sketches answering box range sums (1-D/2-D)."""

    def __init__(
        self,
        dataset: Dataset,
        s: int,
        depth: int = 3,
        rng: np.random.Generator = None,
    ):
        if dataset.dims not in (1, 2):
            raise ValueError("sketch summary supports 1-D and 2-D data")
        if s < 1:
            raise ValueError("counter budget must be >= 1")
        if rng is None:
            rng = np.random.default_rng(0xC0FFEE)
        self._dims = dataset.dims
        self._bits = tuple(_axis_bits(size) for size in dataset.domain.sizes)
        if self._dims == 1:
            level_pairs = [(dx,) for dx in range(self._bits[0] + 1)]
        else:
            level_pairs = [
                (dx, dy)
                for dx in range(self._bits[0] + 1)
                for dy in range(self._bits[1] + 1)
            ]
        width = max(1, s // (len(level_pairs) * depth))
        self._sketches: Dict[tuple, CountSketch] = {
            pair: CountSketch(width, depth, rng) for pair in level_pairs
        }
        self._build(dataset)

    def _pack(self, level_pair: tuple, coords: np.ndarray) -> np.ndarray:
        """Cell ids of points (or cells) at a dyadic level pair."""
        if self._dims == 1:
            (dx,) = level_pair
            return (coords[:, 0].astype(np.uint64)) >> np.uint64(
                self._bits[0] - dx
            )
        dx, dy = level_pair
        kx = coords[:, 0].astype(np.uint64) >> np.uint64(self._bits[0] - dx)
        ky = coords[:, 1].astype(np.uint64) >> np.uint64(self._bits[1] - dy)
        return (kx << np.uint64(32)) | ky

    def _build(self, dataset: Dataset) -> None:
        coords = dataset.coords
        weights = dataset.weights
        for pair, sketch in self._sketches.items():
            sketch.update_many(self._pack(pair, coords), weights)

    @property
    def size(self) -> int:
        """Total number of counters across all sketches."""
        return sum(sk.counters for sk in self._sketches.values())

    def query(self, box: Box) -> float:
        """Range-sum estimate via canonical dyadic decomposition."""
        per_axis = [
            dyadic_decompose_interval(
                box.lows[a], box.highs[a], self._bits[a]
            )
            for a in range(self._dims)
        ]
        # Group the decomposition rectangles by level pair so each
        # sketch is probed once with a vector of keys.
        grouped: Dict[tuple, List[int]] = defaultdict(list)
        if self._dims == 1:
            for depth_x, idx_x in per_axis[0]:
                grouped[(depth_x,)].append(idx_x)
        else:
            for depth_x, idx_x in per_axis[0]:
                for depth_y, idx_y in per_axis[1]:
                    grouped[(depth_x, depth_y)].append(
                        (idx_x << 32) | idx_y
                    )
        total = 0.0
        for pair, cell_keys in grouped.items():
            keys = np.asarray(cell_keys, dtype=np.uint64)
            total += float(self._sketches[pair].estimate_many(keys).sum())
        return total
