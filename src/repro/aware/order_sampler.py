"""Order-structure aware sampling: OSSUMMARIZE (paper Algorithm 5).

Keys are processed in sorted order keeping a single *active* (leftover)
key; each step pair-aggregates the active key with the next fractional
key.  This is the special case of the hierarchy rule on a path-shaped
hierarchy, and guarantees:

* every prefix of the order holds floor/ceil of its expected count, so
* every interval has discrepancy Δ < 2 (Theorem 1(i)), which Theorem
  1(ii) shows is the best possible for a VarOpt sample.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
)
from repro.core.chain import chain_aggregate
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def order_aware_sample(
    keys: np.ndarray,
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample with interval discrepancy < 2.

    Parameters
    ----------
    keys:
        Integer key values defining the order (need not be sorted or
        distinct).
    weights:
        Matching non-negative weights.
    s:
        Target sample size.
    rng:
        Randomness source.

    Returns
    -------
    (included, tau, probs):
        Indices (into the input arrays) of the sampled keys, the IPPS
        threshold, and the original IPPS probability vector (useful for
        discrepancy measurement).
    """
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    order = np.argsort(keys, kind="stable")
    if strict_seed:
        fractional = [int(i) for i in order if 0.0 < p[i] < 1.0]
        leftover = aggregate_pool(p, fractional, rng)
    else:
        pool = order[(p[order] > 0.0) & (p[order] < 1.0)]
        leftover = chain_aggregate(p, pool, rng)
    finalize_leftover(p, leftover, rng)
    return included_indices(p), tau, p_initial


def order_aware_summary(
    dataset: Dataset,
    s: float,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> SampleSummary:
    """Order-aware VarOpt summary of a 1-D dataset."""
    keys = dataset.keys_1d()
    included, tau, _probs = order_aware_sample(
        keys, dataset.weights, s, rng, strict_seed=strict_seed
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
