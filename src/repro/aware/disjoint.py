"""Disjoint-range (partition) aware sampling (paper Section 3).

The range family is a partition of the key domain -- a flat, 2-level
hierarchy.  Pair selection: aggregate pairs inside the same range first
(arbitrary pairs within); only when no range has two fractional keys
left do we aggregate across ranges.  Each range then ends up with a
floor/ceil of its expected count: Δ < 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
)
from repro.core.chain import (
    chain_aggregate,
    run_starts,
    segmented_chain_aggregate,
)
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def disjoint_aware_sample(
    labels: np.ndarray,
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample with per-range discrepancy < 1 over a partition.

    Parameters
    ----------
    labels:
        Integer range label of each key (which cell of the partition
        the key belongs to).
    weights:
        Matching non-negative weights.
    s:
        Target sample size.
    rng:
        Randomness source.

    Returns
    -------
    (included, tau, probs) as in the other aware samplers.
    """
    labels = np.asarray(labels)
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    if strict_seed:
        leftovers = []
        if fractional.size:
            order = np.argsort(labels[fractional], kind="stable")
            idx_sorted = fractional[order]
            lbl_sorted = labels[idx_sorted]
            boundaries = np.flatnonzero(np.diff(lbl_sorted)) + 1
            starts = np.concatenate(([0], boundaries, [idx_sorted.size]))
            for lo, hi in zip(starts[:-1], starts[1:]):
                leftover = aggregate_pool(p, idx_sorted[lo:hi].tolist(), rng)
                if leftover is not None:
                    leftovers.append(leftover)
        final = aggregate_pool(p, leftovers, rng)
    else:
        final = None
        if fractional.size:
            # All ranges resolve in one segmented pass; only their
            # leftovers cross range boundaries, exactly the rule.
            order = np.argsort(labels[fractional], kind="stable")
            idx_sorted = fractional[order]
            starts = run_starts(labels[idx_sorted])
            leftovers = segmented_chain_aggregate(p, idx_sorted, starts, rng)
            final = chain_aggregate(p, leftovers[leftovers >= 0], rng)
    finalize_leftover(p, final, rng)
    return included_indices(p), tau, p_initial


def disjoint_aware_summary(
    dataset: Dataset,
    labels: np.ndarray,
    s: float,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> SampleSummary:
    """Disjoint-range aware VarOpt summary of a dataset."""
    included, tau, _probs = disjoint_aware_sample(
        labels, dataset.weights, s, rng, strict_seed=strict_seed
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
