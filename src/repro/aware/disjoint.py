"""Disjoint-range (partition) aware sampling (paper Section 3).

The range family is a partition of the key domain -- a flat, 2-level
hierarchy.  Pair selection: aggregate pairs inside the same range first
(arbitrary pairs within); only when no range has two fractional keys
left do we aggregate across ranges.  Each range then ends up with a
floor/ceil of its expected count: Δ < 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
)
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def disjoint_aware_sample(
    labels: np.ndarray,
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample with per-range discrepancy < 1 over a partition.

    Parameters
    ----------
    labels:
        Integer range label of each key (which cell of the partition
        the key belongs to).
    weights:
        Matching non-negative weights.
    s:
        Target sample size.
    rng:
        Randomness source.

    Returns
    -------
    (included, tau, probs) as in the other aware samplers.
    """
    labels = np.asarray(labels)
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    leftovers = []
    if fractional.size:
        order = np.argsort(labels[fractional], kind="stable")
        idx_sorted = fractional[order]
        lbl_sorted = labels[idx_sorted]
        boundaries = np.flatnonzero(np.diff(lbl_sorted)) + 1
        starts = np.concatenate(([0], boundaries, [idx_sorted.size]))
        for lo, hi in zip(starts[:-1], starts[1:]):
            leftover = aggregate_pool(p, idx_sorted[lo:hi].tolist(), rng)
            if leftover is not None:
                leftovers.append(leftover)
    final = aggregate_pool(p, leftovers, rng)
    finalize_leftover(p, final, rng)
    return included_indices(p), tau, p_initial


def disjoint_aware_summary(
    dataset: Dataset,
    labels: np.ndarray,
    s: float,
    rng: np.random.Generator,
) -> SampleSummary:
    """Disjoint-range aware VarOpt summary of a dataset."""
    included, tau, _probs = disjoint_aware_sample(
        labels, dataset.weights, s, rng
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
