"""Systematic IPPS sampling over an order (paper Appendix D).

Associate key i with the interval ``H_i = (C_{i-1}, C_i]`` of the
cumulative IPPS probabilities; draw a single uniform offset ``alpha``
and include every key whose interval contains ``h + alpha`` for some
integer ``h``.  The result satisfies VarOpt conditions (i) inclusion
probabilities and (ii) fixed size, achieves interval discrepancy
Δ < 1 -- strictly better than any true VarOpt sample (Theorem 1(ii))
-- but violates condition (iii): inclusions are positively correlated,
so some subset estimates have high variance and the Chernoff bounds do
not apply.  It is included both as the paper describes it and as a foil
for tests demonstrating *why* VarOpt matters.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def systematic_sample(
    keys: np.ndarray,
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """Systematic IPPS sample over the sorted key order.

    Returns ``(included, tau, probs)``.  Keys with probability one are
    always included (their ``H_i`` interval has length >= 1).
    """
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    order = np.argsort(keys, kind="stable")
    cums = np.cumsum(p[order])
    alpha = float(rng.random())
    # Key (in sorted position k) is included iff (C_{k-1}, C_k] contains
    # a point of alpha + Z, i.e. iff floor(C_k - alpha) > floor(C_{k-1} - alpha).
    shifted = np.floor(cums - alpha)
    prev = np.concatenate(([np.floor(-alpha)], shifted[:-1]))
    hit = shifted > prev
    included = np.sort(order[hit])
    return included, tau, p


def deterministic_order_sample(
    keys: np.ndarray,
    weights: np.ndarray,
    s: float,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """The deterministic Delta < 1 set of Appendix D (no randomness).

    Includes every key whose cumulative-probability interval ``H_i``
    contains an integer.  The result has interval discrepancy < 1 but
    is *not* a sample at all: per-key inclusion is deterministic, so HT
    estimates of individual keys are biased.  Included as the paper
    describes it, as a contrast to the VarOpt guarantees.
    """
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    order = np.argsort(keys, kind="stable")
    cums = np.cumsum(p[order])
    # Snap near-integer cumulative sums so float drift cannot lose the
    # final crossing (the total is integral by construction).
    rounded = np.round(cums)
    cums = np.where(np.abs(cums - rounded) < 1e-9, rounded, cums)
    shifted = np.floor(cums)
    prev = np.concatenate(([0.0], shifted[:-1]))
    hit = shifted > prev
    included = np.sort(order[hit])
    return included, tau, p


def systematic_summary(
    dataset: Dataset, s: float, rng: np.random.Generator
) -> SampleSummary:
    """Systematic-sampling summary of a 1-D dataset."""
    included, tau, _probs = systematic_sample(
        dataset.keys_1d(), dataset.weights, s, rng
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
