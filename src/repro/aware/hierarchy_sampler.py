"""Hierarchy-structure aware sampling (paper Section 3).

Pair selection rule: always aggregate a pair with the *lowest* LCA.  We
realize the rule with one bottom-up recursion over the hierarchy
induced by the present keys: every node first lets its children resolve
internally (each child subtree returns at most one fractional
"leftover" key) and then pair-aggregates the child leftovers.  Pairs
are therefore consumed in non-decreasing LCA depth -- exactly the rule.

Consequence (paper Section 3): for every node ``v``, the mass under
``v`` is conserved until at most one fractional key remains below it,
so the final count below ``v`` is the floor or the ceiling of its
expectation: maximum range discrepancy Δ < 1, the minimum possible for
an unbiased sample.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
    is_set,
)
from repro.core.chain import (
    chain_aggregate,
    run_starts,
    segmented_chain_aggregate,
)
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset
from repro.structures.hierarchy import RadixHierarchy


def _aggregate_group(
    p: np.ndarray,
    indices: np.ndarray,
    keys_sorted: np.ndarray,
    hierarchy: RadixHierarchy,
    depth: int,
    rng: np.random.Generator,
) -> Optional[int]:
    """Resolve one induced-subtree group, returning its leftover index.

    ``indices`` are positions into the original arrays; ``keys_sorted``
    are their key values (sorted ascending).  ``depth`` is a depth at
    which the whole group is known to share a node.
    """
    if indices.size == 0:
        return None
    if indices.size == 1:
        idx = int(indices[0])
        return None if is_set(float(p[idx])) else idx
    # Contract unary chains: descend to the group's true LCA depth.
    lca = hierarchy.lca_depth(int(keys_sorted[0]), int(keys_sorted[-1]))
    depth = max(depth, lca)
    if depth >= hierarchy.depth:
        # All keys identical (duplicate leaves): aggregate arbitrarily.
        return aggregate_pool(p, indices.tolist(), rng)
    # Split into children at depth+1 (the group is sorted by key, so
    # children are contiguous runs of equal node ids).
    child_ids = hierarchy.node_of(keys_sorted, depth + 1)
    boundaries = np.flatnonzero(np.diff(child_ids)) + 1
    starts = np.concatenate(([0], boundaries, [indices.size]))
    leftovers = []
    for lo, hi in zip(starts[:-1], starts[1:]):
        leftover = _aggregate_group(
            p, indices[lo:hi], keys_sorted[lo:hi], hierarchy, depth + 1, rng
        )
        if leftover is not None:
            leftovers.append(leftover)
    return aggregate_pool(p, leftovers, rng)


def aggregate_hierarchy_levels(
    p: np.ndarray,
    idx_sorted: np.ndarray,
    keys_sorted: np.ndarray,
    hierarchy: RadixHierarchy,
    rng: np.random.Generator,
) -> Optional[int]:
    """Vectorized lowest-LCA-first aggregation, level by level.

    Processes the hierarchy bottom-up: one segmented chain pass per
    level, grouping the surviving leftovers by their ancestor node at
    that level.  After the depth-``d`` pass every depth-``d`` node
    holds at most one fractional key -- the same invariant the
    recursive formulation maintains -- and pairs are consumed in
    non-increasing LCA depth, which is exactly the Section 3 rule.
    Levels where every group is a singleton are skipped (unary-chain
    contraction).  Returns the final leftover index, or ``None``.
    """
    current_idx = np.asarray(idx_sorted, dtype=np.int64)
    current_keys = np.asarray(keys_sorted)
    for depth in range(hierarchy.depth, 0, -1):
        if current_idx.size <= 1:
            break
        nodes = hierarchy.node_of(current_keys, depth)
        starts = run_starts(nodes)
        if starts.size == current_idx.size:
            continue  # every depth-`depth` node already holds <= 1 key
        leftovers = segmented_chain_aggregate(p, current_idx, starts, rng)
        keep = leftovers >= 0
        current_idx = leftovers[keep]
        current_keys = current_keys[starts[keep]]
    # Root level: at most one leftover per top-level child remains.
    return chain_aggregate(p, current_idx, rng)


def hierarchy_aware_sample(
    keys: np.ndarray,
    weights: np.ndarray,
    s: float,
    hierarchy: RadixHierarchy,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample with node discrepancy < 1 on a hierarchy.

    Returns ``(included, tau, probs)`` like
    :func:`repro.aware.order_sampler.order_aware_sample`.
    ``strict_seed=True`` keeps the historical recursive aggregation
    (and its exact RNG stream); the default resolves each hierarchy
    level with one segmented chain pass.
    """
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=float)
    if keys.size and (int(keys.min()) < 0 or int(keys.max()) >= hierarchy.num_leaves):
        raise ValueError("keys outside the hierarchy's leaf domain")
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    if fractional.size:
        order = np.argsort(keys[fractional], kind="stable")
        idx_sorted = fractional[order]
        keys_sorted = keys[idx_sorted]
        if strict_seed:
            limit = sys.getrecursionlimit()
            needed = hierarchy.depth + idx_sorted.size + 100
            if needed > limit:
                sys.setrecursionlimit(needed)
            leftover = _aggregate_group(
                p, idx_sorted, keys_sorted, hierarchy, 0, rng
            )
        else:
            leftover = aggregate_hierarchy_levels(
                p, idx_sorted, keys_sorted, hierarchy, rng
            )
        finalize_leftover(p, leftover, rng)
    return included_indices(p), tau, p_initial


def hierarchy_aware_summary(
    dataset: Dataset,
    s: float,
    rng: np.random.Generator,
    axis: int = 0,
    strict_seed: bool = False,
) -> SampleSummary:
    """Hierarchy-aware VarOpt summary of a dataset (1-D hierarchy axis)."""
    hierarchy = dataset.domain.hierarchy(axis)
    included, tau, _probs = hierarchy_aware_sample(
        dataset.axis(axis), dataset.weights, s, hierarchy, rng,
        strict_seed=strict_seed,
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
