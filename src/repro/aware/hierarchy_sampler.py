"""Hierarchy-structure aware sampling (paper Section 3).

Pair selection rule: always aggregate a pair with the *lowest* LCA.  We
realize the rule with one bottom-up recursion over the hierarchy
induced by the present keys: every node first lets its children resolve
internally (each child subtree returns at most one fractional
"leftover" key) and then pair-aggregates the child leftovers.  Pairs
are therefore consumed in non-decreasing LCA depth -- exactly the rule.

Consequence (paper Section 3): for every node ``v``, the mass under
``v`` is conserved until at most one fractional key remains below it,
so the final count below ``v`` is the floor or the ceiling of its
expectation: maximum range discrepancy Δ < 1, the minimum possible for
an unbiased sample.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
    is_set,
)
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset
from repro.structures.hierarchy import RadixHierarchy


def _aggregate_group(
    p: np.ndarray,
    indices: np.ndarray,
    keys_sorted: np.ndarray,
    hierarchy: RadixHierarchy,
    depth: int,
    rng: np.random.Generator,
) -> Optional[int]:
    """Resolve one induced-subtree group, returning its leftover index.

    ``indices`` are positions into the original arrays; ``keys_sorted``
    are their key values (sorted ascending).  ``depth`` is a depth at
    which the whole group is known to share a node.
    """
    if indices.size == 0:
        return None
    if indices.size == 1:
        idx = int(indices[0])
        return None if is_set(float(p[idx])) else idx
    # Contract unary chains: descend to the group's true LCA depth.
    lca = hierarchy.lca_depth(int(keys_sorted[0]), int(keys_sorted[-1]))
    depth = max(depth, lca)
    if depth >= hierarchy.depth:
        # All keys identical (duplicate leaves): aggregate arbitrarily.
        return aggregate_pool(p, indices.tolist(), rng)
    # Split into children at depth+1 (the group is sorted by key, so
    # children are contiguous runs of equal node ids).
    child_ids = hierarchy.node_of(keys_sorted, depth + 1)
    boundaries = np.flatnonzero(np.diff(child_ids)) + 1
    starts = np.concatenate(([0], boundaries, [indices.size]))
    leftovers = []
    for lo, hi in zip(starts[:-1], starts[1:]):
        leftover = _aggregate_group(
            p, indices[lo:hi], keys_sorted[lo:hi], hierarchy, depth + 1, rng
        )
        if leftover is not None:
            leftovers.append(leftover)
    return aggregate_pool(p, leftovers, rng)


def hierarchy_aware_sample(
    keys: np.ndarray,
    weights: np.ndarray,
    s: float,
    hierarchy: RadixHierarchy,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample with node discrepancy < 1 on a hierarchy.

    Returns ``(included, tau, probs)`` like
    :func:`repro.aware.order_sampler.order_aware_sample`.
    """
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=float)
    if keys.size and (int(keys.min()) < 0 or int(keys.max()) >= hierarchy.num_leaves):
        raise ValueError("keys outside the hierarchy's leaf domain")
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    if fractional.size:
        order = np.argsort(keys[fractional], kind="stable")
        idx_sorted = fractional[order]
        keys_sorted = keys[idx_sorted]
        limit = sys.getrecursionlimit()
        needed = hierarchy.depth + idx_sorted.size + 100
        if needed > limit:
            sys.setrecursionlimit(needed)
        leftover = _aggregate_group(
            p, idx_sorted, keys_sorted, hierarchy, 0, rng
        )
        finalize_leftover(p, leftover, rng)
    return included_indices(p), tau, p_initial


def hierarchy_aware_summary(
    dataset: Dataset,
    s: float,
    rng: np.random.Generator,
    axis: int = 0,
) -> SampleSummary:
    """Hierarchy-aware VarOpt summary of a dataset (1-D hierarchy axis)."""
    hierarchy = dataset.domain.hierarchy(axis)
    included, tau, _probs = hierarchy_aware_sample(
        dataset.axis(axis), dataset.weights, s, hierarchy, rng
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
