"""The uniform special case of product-structure sampling (Section 4).

For a uniform measure of total mass ``s = h^d`` over a d-dimensional
hypercube, the paper's scheme partitions the cube into ``s`` unit cells
and picks one point uniformly from each cell.  Any axis-parallel box
then only errs on its O(2d·s^((d-1)/d)) boundary cells, each
contributing an independent Bernoulli -- the cleanest intuition for the
general kd construction, and a useful generator of spatially stratified
samples in its own right.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.structures.product import ProductDomain


def uniform_grid_sample(
    domain_sizes: Tuple[int, ...],
    s: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One uniform point per cell of an s-cell grid over a box domain.

    Parameters
    ----------
    domain_sizes:
        Per-axis domain sizes of the hypercube.
    s:
        Number of cells (sample size).  Rounded down to the nearest
        perfect d-th power ``h**d`` so the grid is regular.
    rng:
        Randomness source.

    Returns
    -------
    ``(h**d, d)`` integer coordinates, one sampled point per cell.
    """
    d = len(domain_sizes)
    if d < 1:
        raise ValueError("domain must have at least one axis")
    if s < 1:
        raise ValueError("sample size must be >= 1")
    h = int(np.floor(s ** (1.0 / d) + 1e-9))
    h = max(1, h)
    # Cell boundaries per axis (as even as integer division allows).
    grids = []
    for size in domain_sizes:
        if size < h:
            raise ValueError("domain too small for the requested grid")
        edges = np.linspace(0, size, h + 1, dtype=np.int64)
        grids.append(edges)
    # Enumerate cells in row-major order and sample one point in each.
    cells = np.stack(
        np.meshgrid(*[np.arange(h) for _ in range(d)], indexing="ij"),
        axis=-1,
    ).reshape(-1, d)
    points = np.empty((cells.shape[0], d), dtype=np.int64)
    for axis in range(d):
        lo = grids[axis][cells[:, axis]]
        hi = grids[axis][cells[:, axis] + 1]
        points[:, axis] = lo + (rng.random(cells.shape[0]) * (hi - lo)).astype(
            np.int64
        )
    return points


def boundary_cell_count(
    domain_sizes: Tuple[int, ...], s: int, box
) -> int:
    """Number of grid cells a box's boundary intersects.

    Companion diagnostic for :func:`uniform_grid_sample`; the paper's
    analysis bounds this by ``2 d s^((d-1)/d)``.
    """
    d = len(domain_sizes)
    h = max(1, int(np.floor(s ** (1.0 / d) + 1e-9)))
    grids = [np.linspace(0, size, h + 1, dtype=np.int64) for size in domain_sizes]
    cells = np.stack(
        np.meshgrid(*[np.arange(h) for _ in range(d)], indexing="ij"),
        axis=-1,
    ).reshape(-1, d)
    # All h^d cells classified in one broadcasted pass: a cell is on
    # the boundary iff it is neither fully inside nor fully outside.
    lows = np.stack([grids[a][cells[:, a]] for a in range(d)], axis=1)
    highs = np.stack([grids[a][cells[:, a] + 1] - 1 for a in range(d)], axis=1)
    box_lows = np.asarray(box.lows, dtype=np.int64)
    box_highs = np.asarray(box.highs, dtype=np.int64)
    inside = ((box_lows <= lows) & (highs <= box_highs)).all(axis=1)
    outside = ((highs < box_lows) | (lows > box_highs)).any(axis=1)
    return int(np.count_nonzero(~inside & ~outside))
