"""KD-HIERARCHY (paper Algorithm 2): probability-balanced kd-trees.

The kd-tree partitions a d-dimensional key set by cutting axes in
round-robin order at the *weighted median* of the probability mass, so
that leaves ("unit cells") carry approximately equal mass.  Because the
axes rotate, any axis-parallel hyperplane cuts only O(s^((d-1)/d))
leaves (Lemma 6), which is what bounds the product-structure
discrepancy.

Hierarchy axes are cut along their DFS linearization (leaf numbering),
which is one valid linearization of the hierarchy; the paper allows
optimizing over all linearizations (Algorithm 2 line 13) -- see
DESIGN.md for this documented simplification.

The tree doubles as a locator (``locate`` walks a point to its leaf),
which the two-pass pipeline uses as its partition of the key domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.structures.product import ProductDomain
from repro.structures.ranges import Box


@dataclass
class KDNode:
    """A node of the kd-hierarchy.

    Leaves carry ``indices`` (positions into the coordinate array the
    tree was built from) and a ``cell_id``; internal nodes carry the
    splitting ``axis`` and ``split_value`` (left children satisfy
    ``coord[axis] <= split_value``).
    """

    mass: float
    box: Optional[Box] = None
    axis: int = -1
    split_value: int = 0
    left: Optional["KDNode"] = None
    right: Optional["KDNode"] = None
    indices: Optional[np.ndarray] = None
    cell_id: int = -1

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a leaf cell."""
        return self.left is None

    def locate(self, point: Sequence[int]) -> "KDNode":
        """Walk a coordinate tuple down to its leaf cell."""
        node = self
        while not node.is_leaf:
            if point[node.axis] <= node.split_value:
                node = node.left
            else:
                node = node.right
        return node


def _presorted_median_cut(
    sorted_vals: np.ndarray, sorted_mass: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Best cut of a presorted axis, or ``None`` if it is constant.

    The single float-op sequence behind both build paths (the scalar
    recursion sorts per node, the level-synchronous builder maintains
    presorted orders); keeping it in one place is what guarantees the
    two paths choose bit-identical splits.
    """
    if sorted_vals[0] == sorted_vals[-1]:
        return None
    # Candidate cuts lie between runs of distinct values.
    change = np.flatnonzero(np.diff(sorted_vals)) + 1
    cums = np.cumsum(sorted_mass)
    total = cums[-1]
    left_masses = cums[change - 1]
    imbalance = np.abs(total - 2.0 * left_masses)
    best = int(np.argmin(imbalance))
    split_value = int(sorted_vals[change[best] - 1])
    return split_value, float(imbalance[best])


def _weighted_median_split(
    values: np.ndarray, masses: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Best split value on one axis, or ``None`` if the axis is constant.

    Returns ``(split_value, imbalance)`` where left = ``value <=
    split_value`` is non-empty, right is non-empty, and the absolute
    difference of the two sides' masses is minimized (Algorithm 2
    line 9).
    """
    order = np.argsort(values, kind="stable")
    return _presorted_median_cut(values[order], masses[order])


def _midpoint_split(
    values: np.ndarray, box_side: Tuple[int, int]
) -> Optional[int]:
    """Dyadic midpoint split of the cell's box side (ablation rule)."""
    lo, hi = box_side
    if lo >= hi:
        return None
    mid = (lo + hi) // 2
    has_left = bool((values <= mid).any())
    has_right = bool((values > mid).any())
    if not (has_left and has_right):
        return None
    return mid


def build_kd_hierarchy(
    coords: np.ndarray,
    masses: np.ndarray,
    domain: Optional[ProductDomain] = None,
    leaf_mass: float = 1.0,
    split_rule: str = "median",
    scalar: bool = False,
) -> KDNode:
    """Build the KD-HIERARCHY over a weighted point set.

    Parameters
    ----------
    coords:
        ``(n, d)`` integer coordinates.
    masses:
        Per-point non-negative mass (IPPS probabilities for sampling;
        raw weights for query generation).
    domain:
        Optional product domain; when given, nodes carry their covering
        :class:`Box` (needed by the ``midpoint`` rule, partition cells
        and query generators).
    leaf_mass:
        Recursion stops when a cell's mass is <= this (the paper's unit
        cells use 1.0).  Use 0 to split all the way to single distinct
        points.
    split_rule:
        ``"median"`` (Algorithm 2) or ``"midpoint"`` (ablation).
    scalar:
        ``True`` runs the historical per-node recursion; the default
        runs the level-synchronous presorted builder, which produces a
        bit-identical tree (same splits, same masses, same cell ids)
        without the per-node ``argsort`` -- callers with a
        ``strict_seed`` flag route it here so the historical code path
        itself stays reachable.

    Returns
    -------
    The root :class:`KDNode`; leaves have consecutive ``cell_id`` values
    starting at 0.
    """
    coords = np.atleast_2d(np.asarray(coords))
    masses = np.asarray(masses, dtype=float)
    if coords.shape[0] != masses.shape[0]:
        raise ValueError("coords and masses must have matching length")
    if split_rule not in ("median", "midpoint"):
        raise ValueError(f"unknown split rule: {split_rule}")
    if split_rule == "midpoint" and domain is None:
        raise ValueError("midpoint splitting requires a domain")
    if scalar:
        return _build_kd_scalar(coords, masses, domain, leaf_mass, split_rule)
    return _build_kd_level_synchronous(
        coords, masses, domain, leaf_mass, split_rule
    )


def _build_kd_scalar(
    coords: np.ndarray,
    masses: np.ndarray,
    domain: Optional[ProductDomain],
    leaf_mass: float,
    split_rule: str,
) -> KDNode:
    """The historical per-node recursion (one argsort per split try)."""
    dims = coords.shape[1]
    root_box = domain.full_box() if domain is not None else None
    root = KDNode(mass=float(masses.sum()), box=root_box)
    next_cell_id = 0
    stack: List[Tuple[KDNode, np.ndarray, int]] = [
        (root, np.arange(coords.shape[0]), 0)
    ]
    while stack:
        node, indices, depth = stack.pop()
        node.mass = float(masses[indices].sum())
        if node.mass <= leaf_mass or indices.size <= 1:
            node.indices = indices
            node.cell_id = next_cell_id
            next_cell_id += 1
            continue
        split = _choose_split(
            coords, masses, indices, depth, dims, node.box, split_rule
        )
        if split is None:
            # Every axis is constant on this cell: duplicate points.
            node.indices = indices
            node.cell_id = next_cell_id
            next_cell_id += 1
            continue
        axis, split_value = split
        node.axis = axis
        node.split_value = split_value
        left_mask = coords[indices, axis] <= split_value
        left_idx = indices[left_mask]
        right_idx = indices[~left_mask]
        left_box = right_box = None
        if node.box is not None:
            lo, hi = node.box.side(axis)
            if lo <= split_value < hi:
                left_box, right_box = node.box.split(axis, split_value)
            else:  # degenerate box side; children inherit the box
                left_box = right_box = node.box
        node.left = KDNode(mass=0.0, box=left_box)
        node.right = KDNode(mass=0.0, box=right_box)
        stack.append((node.left, left_idx, depth + 1))
        stack.append((node.right, right_idx, depth + 1))
    return root


def _build_kd_level_synchronous(
    coords: np.ndarray,
    masses: np.ndarray,
    domain: Optional[ProductDomain],
    leaf_mass: float,
    split_rule: str,
) -> KDNode:
    """Level-synchronous presorted kd build (bit-identical to scalar).

    Each axis is stable-argsorted *once*; every split thereafter only
    stable-partitions the per-axis orders with boolean masks, so a
    node's values arrive at its split already sorted (stable
    partitioning preserves relative order, and the initial stable sort
    breaks ties by row -- the exact permutation the scalar path's
    per-node ``argsort(values, kind="stable")`` produces).  All nodes
    of one depth are processed per sweep; per-node sums/cumsums run on
    the same gathered arrays in the same order as the scalar path, so
    masses, split choices and the resulting tree are bit-identical.
    Cell ids are assigned by replaying the scalar stack order over the
    finished tree.
    """
    n, dims = coords.shape
    root_box = domain.full_box() if domain is not None else None
    root = KDNode(mass=float(masses.sum()), box=root_box)
    rows = np.arange(n)
    orders = [np.argsort(coords[:, a], kind="stable") for a in range(dims)]
    side = np.empty(n, dtype=bool)  # per-level split side of each point
    level: List[Tuple[KDNode, int, int]] = [(root, 0, n)]
    depth = 0
    while level:
        next_level: List[Tuple[KDNode, int, int]] = []
        for node, start, end in level:
            seg = rows[start:end]
            node.mass = float(masses[seg].sum())
            if node.mass <= leaf_mass or seg.size <= 1:
                node.indices = seg.copy()
                continue
            split = None
            for offset in range(dims):
                axis = (depth + offset) % dims
                order_seg = orders[axis][start:end]
                values = coords[order_seg, axis]  # presorted ascending
                if split_rule == "midpoint":
                    lo, hi = node.box.side(axis)
                    if lo >= hi:
                        continue
                    mid = (lo + hi) // 2
                    if values[0] > mid or values[-1] <= mid:
                        continue
                    split = (axis, mid)
                    break
                cut = _presorted_median_cut(values, masses[order_seg])
                if cut is None:
                    continue
                split = (axis, cut[0])
                break
            if split is None:
                # Every axis is constant on this cell: duplicate points.
                node.indices = seg.copy()
                continue
            axis, split_value = split
            node.axis = axis
            node.split_value = split_value
            left_box = right_box = None
            if node.box is not None:
                lo, hi = node.box.side(axis)
                if lo <= split_value < hi:
                    left_box, right_box = node.box.split(axis, split_value)
                else:  # degenerate box side; children inherit the box
                    left_box = right_box = node.box
            node.left = KDNode(mass=0.0, box=left_box)
            node.right = KDNode(mass=0.0, box=right_box)
            # Stable-partition the row set and every axis order of this
            # segment in place (both halves are gathered before the
            # write-back, the slices being views into the same buffers).
            # The split side of each point is scattered into a global
            # boolean once, so the per-axis partitions gather one bool
            # instead of re-comparing coordinates.
            left_mask = coords[seg, axis] <= split_value
            n_left = int(left_mask.sum())
            side[seg] = left_mask
            seg_left, seg_right = seg[left_mask], seg[~left_mask]
            rows[start:start + n_left] = seg_left
            rows[start + n_left:end] = seg_right
            for a in range(dims):
                order_seg = orders[a][start:end]
                mask = side[order_seg]
                part_left, part_right = order_seg[mask], order_seg[~mask]
                orders[a][start:start + n_left] = part_left
                orders[a][start + n_left:end] = part_right
            next_level.append((node.left, start, start + n_left))
            next_level.append((node.right, start + n_left, end))
        level = next_level
        depth += 1
    # Cell ids in the scalar pop order (right child explored first).
    next_cell_id = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            node.cell_id = next_cell_id
            next_cell_id += 1
        else:
            stack.append(node.left)
            stack.append(node.right)
    return root


def _choose_split(coords, masses, indices, depth, dims, box, split_rule):
    """Pick the split axis/value, cycling axes from ``depth % dims``."""
    for offset in range(dims):
        axis = (depth + offset) % dims
        values = coords[indices, axis]
        if split_rule == "midpoint":
            mid = _midpoint_split(values, box.side(axis))
            if mid is not None:
                return axis, mid
            continue
        result = _weighted_median_split(values, masses[indices])
        if result is not None:
            return axis, result[0]
    return None


def kd_leaves(root: KDNode) -> List[KDNode]:
    """All leaf cells in ``cell_id`` order."""
    leaves: List[KDNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            leaves.append(node)
        else:
            stack.append(node.right)
            stack.append(node.left)
    leaves.sort(key=lambda leaf: leaf.cell_id)
    return leaves


def kd_leaf_boxes(root: KDNode) -> List[Box]:
    """Boxes of all leaves (requires the tree to have been built with a domain)."""
    boxes = []
    for leaf in kd_leaves(root):
        if leaf.box is None:
            raise ValueError("tree was built without a domain; no boxes")
        boxes.append(leaf.box)
    return boxes


def kd_depth(root: KDNode) -> int:
    """Maximum leaf depth of the tree."""
    best = 0
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if node.is_leaf:
            best = max(best, depth)
        else:
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
    return best


def kd_cell_ids(root: KDNode, coords: np.ndarray) -> np.ndarray:
    """Locate many points: the ``cell_id`` of each coordinate row.

    Vectorized descent: instead of walking each point down the tree,
    every node partitions its incident point-index set with one boolean
    mask, so the total work is O(n * depth) NumPy element operations
    plus O(#nodes) Python steps.  Bit-identical to calling
    :meth:`KDNode.locate` per row.
    """
    coords = np.atleast_2d(np.asarray(coords))
    out = np.empty(coords.shape[0], dtype=np.int64)
    stack: List[Tuple[KDNode, np.ndarray]] = [
        (root, np.arange(coords.shape[0]))
    ]
    while stack:
        node, rows = stack.pop()
        if rows.size == 0:
            continue
        if node.is_leaf:
            out[rows] = node.cell_id
            continue
        left = coords[rows, node.axis] <= node.split_value
        stack.append((node.left, rows[left]))
        stack.append((node.right, rows[~left]))
    return out
