"""Structure-aware VarOpt samplers (paper Sections 3-4).

Each sampler is the probabilistic-aggregation framework instantiated
with a structure-specific pair-selection rule:

* order (all intervals)           -> Δ < 2      (:mod:`order_sampler`)
* hierarchy (all subtree ranges)  -> Δ < 1      (:mod:`hierarchy_sampler`)
* disjoint ranges (a partition)   -> Δ < 1      (:mod:`disjoint`)
* d-dim product (boxes)           -> O(d s^((d-1)/d)) (:mod:`product_sampler`)

:mod:`systematic` provides the deterministic-offset order sample with
Δ < 1 that satisfies only VarOpt conditions (i)-(ii) (Appendix D).
"""

from repro.aware.order_sampler import order_aware_sample, order_aware_summary
from repro.aware.hierarchy_sampler import (
    hierarchy_aware_sample,
    hierarchy_aware_summary,
)
from repro.aware.disjoint import disjoint_aware_sample, disjoint_aware_summary
from repro.aware.kd import KDNode, build_kd_hierarchy, kd_leaf_boxes
from repro.aware.product_sampler import (
    product_aware_sample,
    product_aware_summary,
)
from repro.aware.systematic import (
    deterministic_order_sample,
    systematic_sample,
    systematic_summary,
)
from repro.aware.uniform_grid import boundary_cell_count, uniform_grid_sample

__all__ = [
    "deterministic_order_sample",
    "uniform_grid_sample",
    "boundary_cell_count",
    "order_aware_sample",
    "order_aware_summary",
    "hierarchy_aware_sample",
    "hierarchy_aware_summary",
    "disjoint_aware_sample",
    "disjoint_aware_summary",
    "KDNode",
    "build_kd_hierarchy",
    "kd_leaf_boxes",
    "product_aware_sample",
    "product_aware_summary",
    "systematic_sample",
    "systematic_summary",
]
