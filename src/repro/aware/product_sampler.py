"""Product-structure aware sampling (paper Section 4).

Pipeline: compute IPPS probabilities; set aside every key with
probability one; build the KD-HIERARCHY over the fractional keys; apply
the hierarchy aggregation rule bottom-up over the kd-tree (children
resolve first, parents pair-aggregate the leftovers).  Probability mass
then only moves between keys that are close in the kd partition, so a
box query's error comes only from the O(d s^((d-1)/d)) boundary cells
(Lemmas 6-7).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.aware.kd import KDNode, build_kd_hierarchy
from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
    is_set,
)
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def _aggregate_kd(
    node: KDNode,
    p: np.ndarray,
    index_map: np.ndarray,
    rng: np.random.Generator,
) -> Optional[int]:
    """Bottom-up leftover aggregation over the kd-tree (iterative).

    ``index_map`` translates the kd-tree's local point indices to
    positions in the probability vector ``p``.  Returns the final
    leftover index into ``p`` (or None).
    """
    # Post-order traversal with an explicit stack; each node's resolved
    # leftover is stored on the node temporarily.
    stack = [(node, False)]
    leftover_of = {}
    while stack:
        current, visited = stack.pop()
        if current.is_leaf:
            pool = [int(index_map[i]) for i in current.indices]
            leftover_of[id(current)] = aggregate_pool(p, pool, rng)
            continue
        if not visited:
            stack.append((current, True))
            stack.append((current.left, False))
            stack.append((current.right, False))
            continue
        pool = [
            leftover_of.pop(id(current.left), None),
            leftover_of.pop(id(current.right), None),
        ]
        pool = [idx for idx in pool if idx is not None and not is_set(float(p[idx]))]
        leftover_of[id(current)] = aggregate_pool(p, pool, rng)
    return leftover_of.pop(id(node), None)


def product_aware_sample(
    coords: np.ndarray,
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
    domain=None,
    leaf_mass: float = 1.0,
    split_rule: str = "median",
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample of d-dimensional keys with box-aware aggregation.

    Returns ``(included, tau, probs)`` as in the 1-D aware samplers.
    ``leaf_mass`` and ``split_rule`` are forwarded to
    :func:`repro.aware.kd.build_kd_hierarchy` (exposed for ablations).
    """
    coords = np.atleast_2d(np.asarray(coords))
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    if fractional.size:
        tree = build_kd_hierarchy(
            coords[fractional],
            p[fractional],
            domain=domain,
            leaf_mass=leaf_mass,
            split_rule=split_rule,
        )
        leftover = _aggregate_kd(tree, p, fractional, rng)
        finalize_leftover(p, leftover, rng)
    return included_indices(p), tau, p_initial


def product_aware_summary(
    dataset: Dataset,
    s: float,
    rng: np.random.Generator,
    leaf_mass: float = 1.0,
    split_rule: str = "median",
) -> SampleSummary:
    """Product-structure aware VarOpt summary of a dataset.

    This is the main-memory ``aware`` method; the experiments also use
    the two-pass variant in :mod:`repro.twopass`.
    """
    included, tau, _probs = product_aware_sample(
        dataset.coords,
        dataset.weights,
        s,
        rng,
        domain=dataset.domain,
        leaf_mass=leaf_mass,
        split_rule=split_rule,
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
