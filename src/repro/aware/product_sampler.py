"""Product-structure aware sampling (paper Section 4).

Pipeline: compute IPPS probabilities; set aside every key with
probability one; build the KD-HIERARCHY over the fractional keys; apply
the hierarchy aggregation rule bottom-up over the kd-tree (children
resolve first, parents pair-aggregate the leftovers).  Probability mass
then only moves between keys that are close in the kd partition, so a
box query's error comes only from the O(d s^((d-1)/d)) boundary cells
(Lemmas 6-7).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.aware.kd import KDNode, build_kd_hierarchy, kd_leaves
from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
    is_set,
)
from repro.core.chain import segmented_chain_aggregate
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def fold_kd_leftovers(
    root: KDNode,
    leaf_leftover,
    p: np.ndarray,
    rng: np.random.Generator,
) -> Optional[int]:
    """Bottom-up leftover aggregation over a kd-tree (shared walk).

    Post-order traversal with an explicit stack: every leaf is
    resolved by ``leaf_leftover(leaf) -> Optional[int]`` at visit time
    (so scalar leaf pools consume the generator in the historical walk
    order), and every internal node pair-aggregates its children's
    surviving leftovers.  Returns the final leftover index into ``p``
    (or None).  The single walk behind :func:`_aggregate_kd`, the
    batched variant and the two-pass final phase.
    """
    stack = [(root, False)]
    leftover_of = {}
    while stack:
        current, visited = stack.pop()
        if current.is_leaf:
            leftover_of[id(current)] = leaf_leftover(current)
            continue
        if not visited:
            stack.append((current, True))
            stack.append((current.left, False))
            stack.append((current.right, False))
            continue
        pool = [
            leftover_of.pop(id(current.left), None),
            leftover_of.pop(id(current.right), None),
        ]
        pool = [idx for idx in pool if idx is not None and not is_set(float(p[idx]))]
        leftover_of[id(current)] = aggregate_pool(p, pool, rng)
    return leftover_of.pop(id(root), None)


def _aggregate_kd(
    node: KDNode,
    p: np.ndarray,
    index_map: np.ndarray,
    rng: np.random.Generator,
) -> Optional[int]:
    """Scalar bottom-up aggregation: leaf pools resolve in walk order.

    ``index_map`` translates the kd-tree's local point indices to
    positions in the probability vector ``p``.
    """
    def leaf_leftover(leaf: KDNode) -> Optional[int]:
        pool = [int(index_map[i]) for i in leaf.indices]
        return aggregate_pool(p, pool, rng)

    return fold_kd_leftovers(node, leaf_leftover, p, rng)


def _aggregate_kd_batched(
    node: KDNode,
    p: np.ndarray,
    index_map: np.ndarray,
    rng: np.random.Generator,
) -> Optional[int]:
    """Leaf-batched variant of :func:`_aggregate_kd`.

    All leaf pools -- the O(n) bulk of the work -- resolve in one
    segmented chain pass; the remaining bottom-up walk only
    pair-aggregates the O(#nodes) per-child leftovers.  Same pair
    structure (children resolve before parents), different RNG
    consumption order than the scalar walk.
    """
    leaves = kd_leaves(node)
    sizes = np.asarray([leaf.indices.size for leaf in leaves], dtype=np.int64)
    pool = index_map[np.concatenate([leaf.indices for leaf in leaves])]
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    leftovers = segmented_chain_aggregate(p, pool, starts, rng)
    resolved = {
        id(leaf): (None if leftovers[i] < 0 else int(leftovers[i]))
        for i, leaf in enumerate(leaves)
    }
    return fold_kd_leftovers(
        node, lambda leaf: resolved[id(leaf)], p, rng
    )


def product_aware_sample(
    coords: np.ndarray,
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
    domain=None,
    leaf_mass: float = 1.0,
    split_rule: str = "median",
    strict_seed: bool = False,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """VarOpt_s sample of d-dimensional keys with box-aware aggregation.

    Returns ``(included, tau, probs)`` as in the 1-D aware samplers.
    ``leaf_mass`` and ``split_rule`` are forwarded to
    :func:`repro.aware.kd.build_kd_hierarchy` (exposed for ablations).
    ``strict_seed=True`` keeps the historical scalar tree walk (and
    its exact RNG stream).
    """
    coords = np.atleast_2d(np.asarray(coords))
    weights = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(weights, s)
    p_initial = p.copy()
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    if fractional.size:
        tree = build_kd_hierarchy(
            coords[fractional],
            p[fractional],
            domain=domain,
            leaf_mass=leaf_mass,
            split_rule=split_rule,
            scalar=strict_seed,
        )
        aggregate = _aggregate_kd if strict_seed else _aggregate_kd_batched
        leftover = aggregate(tree, p, fractional, rng)
        finalize_leftover(p, leftover, rng)
    return included_indices(p), tau, p_initial


def product_aware_summary(
    dataset: Dataset,
    s: float,
    rng: np.random.Generator,
    leaf_mass: float = 1.0,
    split_rule: str = "median",
    strict_seed: bool = False,
) -> SampleSummary:
    """Product-structure aware VarOpt summary of a dataset.

    This is the main-memory ``aware`` method; the experiments also use
    the two-pass variant in :mod:`repro.twopass`.
    """
    included, tau, _probs = product_aware_sample(
        dataset.coords,
        dataset.weights,
        s,
        rng,
        domain=dataset.domain,
        leaf_mass=leaf_mass,
        split_rule=split_rule,
        strict_seed=strict_seed,
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
