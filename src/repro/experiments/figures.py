"""Reproductions of every figure in the paper's evaluation (Section 6).

Each ``figN`` function runs a scaled version of the corresponding
experiment and returns a :class:`~repro.experiments.report.FigureResult`
whose series mirror the plotted lines.  Scale parameters default to
laptop-friendly values; pass larger configs to approach the paper's
full scale.  Absolute numbers differ from the paper's (our substrate is
synthetic data and pure Python); the *shapes* -- who wins and by what
factor -- are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.types import Dataset
from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.queries import uniform_area_queries, uniform_weight_queries
from repro.datagen.tickets import TicketConfig, generate_tickets
from repro.experiments.harness import (
    METHODS,
    build_summary,
    evaluate_summary,
    ground_truths,
    run_grid,
)
from repro.experiments.report import FigureResult
from repro.summaries.exact import ExactSummary

ACCURACY_METHODS = ("aware", "obliv", "wavelet", "qdigest")
ALL_METHODS = ("aware", "obliv", "wavelet", "qdigest", "sketch")


def default_network(scale: float = 1.0, seed: int = 42) -> Dataset:
    """The synthetic network data set at a relative scale."""
    config = NetworkConfig(
        n_pairs=int(20_000 * scale),
        n_sources=int(6_000 * scale),
        n_dests=int(5_000 * scale),
    )
    return generate_network_flows(config, seed=seed)


def default_tickets(scale: float = 1.0, seed: int = 1234) -> Dataset:
    """The synthetic ticket data set at a relative scale."""
    config = TicketConfig(n_combinations=int(20_000 * scale))
    return generate_tickets(config, seed=seed)


# ---------------------------------------------------------------------------
# Figure 2: network data accuracy
# ---------------------------------------------------------------------------

def fig2a(
    dataset: Optional[Dataset] = None,
    sizes: Sequence[int] = (100, 300, 1000, 3000),
    n_queries: int = 30,
    ranges_per_query: int = 25,
    methods: Sequence[str] = ACCURACY_METHODS,
    seed: int = 7,
    repeats: int = 3,
) -> FigureResult:
    """Accuracy vs summary size; network data, uniform-area queries."""
    if dataset is None:
        dataset = default_network()
    rng = np.random.default_rng(seed)
    queries = uniform_area_queries(
        dataset.domain, n_queries, ranges_per_query, max_fraction=0.12,
        rng=rng,
    )
    result = FigureResult(
        figure="Figure 2(a)",
        title="Network data, uniform area queries",
        xlabel="summary size",
        ylabel="absolute error",
        notes=f"{ranges_per_query} ranges/query, {n_queries} queries",
    )
    for cell in run_grid(dataset, sizes, queries, methods, seed=seed,
                         repeats=repeats):
        result.add_point(cell.method, cell.size, cell.abs_error)
    return result


def fig2b(
    dataset: Optional[Dataset] = None,
    size: int = 2700,
    ranges_per_query: int = 10,
    cell_counts: Sequence[int] = (2000, 600, 200, 60, 20),
    n_queries: int = 30,
    methods: Sequence[str] = ACCURACY_METHODS,
    seed: int = 11,
    repeats: int = 3,
) -> FigureResult:
    """Accuracy vs query weight; network data, uniform-weight queries."""
    if dataset is None:
        dataset = default_network()
    result = FigureResult(
        figure="Figure 2(b)",
        title="Network data, uniform weight queries",
        xlabel="query weight",
        ylabel="absolute error",
        notes=f"summary size {size}, {ranges_per_query} ranges/query",
    )
    rng = np.random.default_rng(seed)
    total = dataset.total_weight
    for n_cells in cell_counts:
        queries = uniform_weight_queries(
            dataset, n_queries, ranges_per_query, n_cells, rng=rng
        )
        truths = ground_truths(dataset, queries)
        weight_fraction = float(truths.mean() / total)
        for cell in run_grid(dataset, [size], queries, methods,
                             seed=seed, repeats=repeats):
            result.add_point(cell.method, weight_fraction, cell.abs_error)
    return result


def fig2c(
    dataset: Optional[Dataset] = None,
    size: int = 2700,
    range_counts: Sequence[int] = (1, 2, 5, 10, 25, 50),
    target_weight: float = 0.12,
    n_queries: int = 30,
    methods: Sequence[str] = ACCURACY_METHODS,
    seed: int = 13,
    repeats: int = 3,
) -> FigureResult:
    """Accuracy vs #ranges/query at fixed total query weight (~0.12)."""
    if dataset is None:
        dataset = default_network()
    result = FigureResult(
        figure="Figure 2(c)",
        title="Network data, uniform weight queries",
        xlabel="ranges per query",
        ylabel="absolute error",
        notes=f"summary size {size}, query weight ~{target_weight}",
    )
    rng = np.random.default_rng(seed)
    for n_ranges in range_counts:
        n_cells = max(n_ranges + 1, int(round(n_ranges / target_weight)))
        queries = uniform_weight_queries(
            dataset, n_queries, n_ranges, n_cells, rng=rng
        )
        for cell in run_grid(dataset, [size], queries, methods,
                             seed=seed, repeats=repeats):
            result.add_point(cell.method, n_ranges, cell.abs_error)
    return result


# ---------------------------------------------------------------------------
# Figure 3: scalability
# ---------------------------------------------------------------------------

def _build_throughput(
    dataset: Dataset,
    sizes: Sequence[int],
    methods: Sequence[str],
    figure: str,
    title: str,
    seed: int,
) -> FigureResult:
    result = FigureResult(
        figure=figure,
        title=title,
        xlabel="summary size",
        ylabel="items / s (construction)",
    )
    for method in methods:
        for size in sizes:
            rng = np.random.default_rng(seed)
            _summary, seconds = build_summary(method, dataset, size, rng)
            result.add_point(method, size, dataset.n / max(seconds, 1e-9))
    return result


def fig3a(
    dataset: Optional[Dataset] = None,
    sizes: Sequence[int] = (100, 1000, 3000),
    methods: Sequence[str] = ALL_METHODS,
    seed: int = 17,
) -> FigureResult:
    """Construction throughput vs summary size; network data."""
    if dataset is None:
        dataset = default_network()
    return _build_throughput(
        dataset, sizes, methods,
        "Figure 3(a)", "Cost of building summary for Network Data", seed,
    )


def fig3b(
    dataset: Optional[Dataset] = None,
    sizes: Sequence[int] = (100, 1000, 3000),
    methods: Sequence[str] = ALL_METHODS,
    seed: int = 19,
) -> FigureResult:
    """Construction throughput vs summary size; tech-ticket data."""
    if dataset is None:
        dataset = default_tickets()
    return _build_throughput(
        dataset, sizes, methods,
        "Figure 3(b)", "Cost of building summary for Tech Ticket Data", seed,
    )


def fig3c(
    dataset: Optional[Dataset] = None,
    sizes: Sequence[int] = (100, 1000, 3000),
    n_rectangles: int = 500,
    methods: Sequence[str] = ALL_METHODS,
    include_exact: bool = True,
    seed: int = 23,
) -> FigureResult:
    """Time to answer a battery of rectangle queries vs summary size.

    The paper uses 2500 rectangles; the default here is scaled down but
    the per-rectangle cost ratios are unchanged.
    """
    if dataset is None:
        dataset = default_network()
    rng = np.random.default_rng(seed)
    queries = uniform_area_queries(
        dataset.domain, n_rectangles, 1, max_fraction=0.1, rng=rng
    )
    boxes = [q.boxes[0] for q in queries]
    result = FigureResult(
        figure="Figure 3(c)",
        title="Time to perform queries on Network Data",
        xlabel="summary size",
        ylabel=f"seconds for {n_rectangles} rectangle queries",
    )
    for method in methods:
        for size in sizes:
            summary, _build = build_summary(
                method, dataset, size, np.random.default_rng(seed)
            )
            start = time.perf_counter()
            for box in boxes:
                summary.query(box)
            result.add_point(
                method, size, time.perf_counter() - start
            )
    if include_exact:
        exact = ExactSummary(dataset)
        start = time.perf_counter()
        for box in boxes:
            exact.query(box)
        elapsed = time.perf_counter() - start
        for size in sizes:
            result.add_point("exact(full data)", size, elapsed)
    return result


# ---------------------------------------------------------------------------
# Figure 4: tech-ticket data accuracy
# ---------------------------------------------------------------------------

def fig4a(
    dataset: Optional[Dataset] = None,
    sizes: Sequence[int] = (100, 300, 1000, 3000),
    ranges_per_query: int = 10,
    n_cells: int = 100,
    n_queries: int = 30,
    methods: Sequence[str] = ACCURACY_METHODS,
    seed: int = 29,
    repeats: int = 3,
) -> FigureResult:
    """Accuracy vs summary size; ticket data, uniform-weight queries."""
    if dataset is None:
        dataset = default_tickets()
    rng = np.random.default_rng(seed)
    queries = uniform_weight_queries(
        dataset, n_queries, ranges_per_query, n_cells, rng=rng
    )
    result = FigureResult(
        figure="Figure 4(a)",
        title="Tech Ticket data, uniform weight queries",
        xlabel="summary size",
        ylabel="absolute error",
        notes=f"{ranges_per_query} ranges/query",
    )
    for cell in run_grid(dataset, sizes, queries, methods, seed=seed,
                         repeats=repeats):
        result.add_point(cell.method, cell.size, cell.abs_error)
    return result


def fig4b(
    dataset: Optional[Dataset] = None,
    size: int = 2700,
    ranges_per_query: int = 25,
    fractions: Sequence[float] = (0.005, 0.02, 0.06, 0.12),
    n_queries: int = 30,
    methods: Sequence[str] = ACCURACY_METHODS,
    seed: int = 31,
    repeats: int = 3,
) -> FigureResult:
    """Accuracy vs query weight; ticket data, uniform-area queries."""
    if dataset is None:
        dataset = default_tickets()
    result = FigureResult(
        figure="Figure 4(b)",
        title="Tech Ticket data, uniform area queries",
        xlabel="query weight",
        ylabel="absolute error",
        notes=f"summary size {size}, {ranges_per_query} ranges/query",
    )
    rng = np.random.default_rng(seed)
    total = dataset.total_weight
    for fraction in fractions:
        queries = uniform_area_queries(
            dataset.domain, n_queries, ranges_per_query,
            max_fraction=fraction, rng=rng,
        )
        truths = ground_truths(dataset, queries)
        weight_fraction = float(truths.mean() / total)
        if weight_fraction <= 0:
            continue
        for cell in run_grid(dataset, [size], queries, methods,
                             seed=seed, repeats=repeats):
            result.add_point(cell.method, weight_fraction, cell.abs_error)
    return result


def fig4c(
    dataset: Optional[Dataset] = None,
    size: int = 2700,
    ranges_per_query: int = 10,
    cell_counts: Sequence[int] = (2000, 600, 200, 60, 20),
    n_queries: int = 30,
    methods: Sequence[str] = ACCURACY_METHODS,
    seed: int = 37,
    repeats: int = 3,
) -> FigureResult:
    """Accuracy vs query weight; ticket data, uniform-weight queries."""
    if dataset is None:
        dataset = default_tickets()
    result = FigureResult(
        figure="Figure 4(c)",
        title="Tech Ticket data, uniform weight queries",
        xlabel="query weight",
        ylabel="absolute error",
        notes=f"summary size {size}, {ranges_per_query} ranges/query",
    )
    rng = np.random.default_rng(seed)
    total = dataset.total_weight
    for n_cells in cell_counts:
        queries = uniform_weight_queries(
            dataset, n_queries, ranges_per_query, n_cells, rng=rng
        )
        truths = ground_truths(dataset, queries)
        weight_fraction = float(truths.mean() / total)
        for cell in run_grid(dataset, [size], queries, methods,
                             seed=seed, repeats=repeats):
            result.add_point(cell.method, weight_fraction, cell.abs_error)
    return result


ALL_FIGURES = {
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig2c": fig2c,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
}
