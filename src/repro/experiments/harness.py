"""Experiment harness: build summaries, run query batteries, score errors.

Error metric as in Section 6.2: the *absolute error* is the error of
the query answer divided by the total weight of the data set; we also
track sum-squared and relative errors (the paper reports those show
the same trends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.types import Dataset
from repro.engine import registry
from repro.structures.ranges import MultiRangeQuery
from repro.summaries.base import Summary
from repro.summaries.exact import ExactSummary

#: A summary factory: (dataset, size, rng) -> Summary.
MethodFactory = Callable[[Dataset, int, np.random.Generator], Summary]

#: Live read-only view of the method registry (kept under the old name
#: so experiment code keeps working; register new methods through
#: :func:`repro.engine.registry.register`).
METHODS = registry.REGISTRY


@dataclass
class EvalResult:
    """Scores of one (method, size) cell of an experiment grid."""

    method: str
    size: int
    build_seconds: float
    query_seconds: float
    abs_error: float
    rel_error: float
    sq_error: float
    per_query_abs: List[float] = field(default_factory=list)

    @property
    def build_throughput(self) -> float:
        """Items per second during construction (needs ``items`` set by caller)."""
        return getattr(self, "items", 0) / max(self.build_seconds, 1e-12)


def ground_truths(
    dataset: Dataset, queries: Sequence[MultiRangeQuery]
) -> np.ndarray:
    """Exact answers for a query battery."""
    exact = ExactSummary(dataset)
    return np.asarray([exact.query_multi(q) for q in queries])


def build_summary(
    method: str, dataset: Dataset, size: int, rng: np.random.Generator
):
    """Build one summary, returning ``(summary, build_seconds)``."""
    builder = registry.get(method)
    start = time.perf_counter()
    summary = builder(dataset, size, rng)
    return summary, time.perf_counter() - start


def evaluate_summary(
    summary: Summary,
    queries: Sequence[MultiRangeQuery],
    truths: np.ndarray,
    total_weight: float,
) -> Dict[str, float]:
    """Query a summary and score it against exact answers."""
    start = time.perf_counter()
    estimates = np.asarray(summary.query_many(list(queries)))
    query_seconds = time.perf_counter() - start
    errors = np.abs(estimates - truths)
    abs_error = float(errors.mean() / total_weight) if total_weight else 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(truths > 0, errors / truths, np.nan)
    rel_error = float(np.nanmean(rel)) if np.isfinite(rel).any() else float("nan")
    sq_error = float(np.mean((errors / total_weight) ** 2)) if total_weight else 0.0
    return {
        "query_seconds": query_seconds,
        "abs_error": abs_error,
        "rel_error": rel_error,
        "sq_error": sq_error,
        "per_query_abs": (errors / total_weight).tolist(),
    }


def run_cell(
    method: str,
    dataset: Dataset,
    size: int,
    queries: Sequence[MultiRangeQuery],
    truths: np.ndarray,
    seed: int = 0,
) -> EvalResult:
    """Build + evaluate one (method, size) cell."""
    rng = np.random.default_rng(seed)
    summary, build_seconds = build_summary(method, dataset, size, rng)
    scores = evaluate_summary(summary, queries, truths, dataset.total_weight)
    result = EvalResult(
        method=method,
        size=size,
        build_seconds=build_seconds,
        query_seconds=scores["query_seconds"],
        abs_error=scores["abs_error"],
        rel_error=scores["rel_error"],
        sq_error=scores["sq_error"],
        per_query_abs=scores["per_query_abs"],
    )
    result.items = dataset.n  # for throughput reporting
    return result


def run_grid(
    dataset: Dataset,
    sizes: Sequence[int],
    queries: Sequence[MultiRangeQuery],
    methods: Sequence[str],
    seed: int = 0,
    repeats: int = 1,
) -> List[EvalResult]:
    """Run a methods x sizes grid, averaging ``repeats`` seeded runs.

    Randomized methods (samples, sketches) are averaged over seeds;
    deterministic ones are run once.
    """
    truths = ground_truths(dataset, queries)
    results: List[EvalResult] = []
    # Sketches became deterministic when their hash functions moved to
    # the shared default seed (shard/pane mergeability); repeating them
    # would average identical builds.
    deterministic = {"wavelet", "qdigest", "qdigest-stream", "sketch",
                     "exact"}
    for method in methods:
        reps = 1 if method in deterministic else repeats
        for size in sizes:
            cells = [
                run_cell(method, dataset, size, queries, truths,
                         seed=seed + 1000 * r)
                for r in range(reps)
            ]
            merged = EvalResult(
                method=method,
                size=size,
                build_seconds=float(np.mean([c.build_seconds for c in cells])),
                query_seconds=float(np.mean([c.query_seconds for c in cells])),
                abs_error=float(np.mean([c.abs_error for c in cells])),
                rel_error=float(np.nanmean([c.rel_error for c in cells])),
                sq_error=float(np.mean([c.sq_error for c in cells])),
            )
            merged.items = dataset.n
            results.append(merged)
    return results
