"""Experiment harness and per-figure reproductions (paper Section 6)."""

from repro.experiments.harness import (
    METHODS,
    EvalResult,
    build_summary,
    evaluate_summary,
    ground_truths,
    run_cell,
    run_grid,
)
from repro.experiments.report import (
    FigureResult,
    render_figure,
    render_comparison,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    default_network,
    default_tickets,
    fig2a,
    fig2b,
    fig2c,
    fig3a,
    fig3b,
    fig3c,
    fig4a,
    fig4b,
    fig4c,
)

__all__ = [
    "METHODS",
    "EvalResult",
    "build_summary",
    "evaluate_summary",
    "ground_truths",
    "run_cell",
    "run_grid",
    "FigureResult",
    "render_figure",
    "render_comparison",
    "ALL_FIGURES",
    "default_network",
    "default_tickets",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig4a",
    "fig4b",
    "fig4c",
]
