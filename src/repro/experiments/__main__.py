"""Command-line runner for the paper-figure reproductions.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig2a [--scale 1.0] [--out results/]
    python -m repro.experiments run all   [--scale 0.5]

Each run prints the figure's series as an aligned table (and optionally
writes it to a file).  ``--scale`` shrinks/grows the synthetic datasets
relative to the benchmark defaults.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.figures import (
    ALL_FIGURES,
    default_network,
    default_tickets,
)
from repro.experiments.report import render_figure

NETWORK_FIGURES = {"fig2a", "fig2b", "fig2c", "fig3a", "fig3c"}
TICKET_FIGURES = {"fig3b", "fig4a", "fig4b", "fig4c"}


def run_figure(name: str, scale: float, out_dir: pathlib.Path | None) -> None:
    """Run one figure function and print/persist its table."""
    func = ALL_FIGURES[name]
    if name in NETWORK_FIGURES:
        dataset = default_network(scale=scale)
    else:
        dataset = default_tickets(scale=scale)
    start = time.perf_counter()
    result = func(dataset)
    elapsed = time.perf_counter() - start
    text = render_figure(result)
    print(text)
    print(f"   [{elapsed:.1f}s]")
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    run = sub.add_parser("run", help="run one figure (or 'all')")
    run.add_argument("figure", choices=sorted(ALL_FIGURES) + ["all"])
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale relative to the defaults")
    run.add_argument("--out", type=pathlib.Path, default=None,
                     help="directory to write the table to")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(ALL_FIGURES):
            doc = (ALL_FIGURES[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:7s} {doc}")
        return 0

    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        run_figure(name, args.scale, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
