"""Plain-text rendering of experiment results (figures as tables)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class FigureResult:
    """One reproduced paper figure: named series over a shared x axis."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, name: str, x: float, y: float) -> None:
        """Append one (x, y) point to a series."""
        self.series.setdefault(name, []).append((float(x), float(y)))


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3e}"
    return f"{value:.4g}"


def render_figure(result: FigureResult) -> str:
    """Render a figure as an aligned text table (x column + one per series)."""
    names = sorted(result.series)
    xs = sorted({x for points in result.series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points}
        for name, points in result.series.items()
    }
    header = [result.xlabel] + names
    rows = [header]
    for x in xs:
        row = [_format_value(x)]
        for name in names:
            y = lookup[name].get(x)
            row.append(_format_value(y) if y is not None else "-")
        rows.append(row)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = [
        f"== {result.figure}: {result.title} ==",
        f"   (y = {result.ylabel})",
    ]
    if result.notes:
        lines.append(f"   {result.notes}")
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_comparison(
    result: FigureResult, baseline: str, target: str
) -> str:
    """One-line summary of how ``target`` compares to ``baseline``.

    Reports the geometric-mean ratio baseline/target over shared x
    values (>1 means the target is more accurate / faster depending on
    the metric's polarity).
    """
    import math

    base = dict(result.series.get(baseline, []))
    tgt = dict(result.series.get(target, []))
    shared = sorted(set(base) & set(tgt))
    ratios = [
        base[x] / tgt[x]
        for x in shared
        if tgt[x] > 0 and base[x] > 0
    ]
    if not ratios:
        return f"{target} vs {baseline}: no comparable points"
    geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return (
        f"{target} vs {baseline}: geometric-mean ratio "
        f"{geo:.2f}x over {len(ratios)} points"
    )
