"""The full two-pass structure-aware sampler (Section 5 + Section 6's ``aware``).

Pass 1 computes the exact threshold tau_s (Algorithm 4) and draws a
structure-oblivious guide sample S' of size ``s_prime_factor * s``
(the paper's experiments use factor 5).  The guide sample induces a
partition of the domain; pass 2 runs IO-AGGREGATE over that partition;
finally the surviving active keys are aggregated following the
structure, yielding a VarOpt_s sample whose range discrepancy matches
the main-memory algorithms w.h.p.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import obs as _obs
from repro.aware.hierarchy_sampler import aggregate_hierarchy_levels
from repro.aware.kd import KDNode
from repro.aware.product_sampler import fold_kd_leftovers
from repro.core.aggregation import (
    SET_EPS,
    aggregate_pool,
    finalize_leftover,
    included_indices,
    is_set,
)
from repro.core.chain import chain_aggregate, segmented_chain_aggregate
from repro.core.estimator import SampleSummary
from repro.core.ipps import StreamingThreshold, ipps_threshold
from repro.core.types import Dataset
from repro.core.varopt import StreamVarOpt, varopt_sample
from repro.structures.hierarchy import RadixHierarchy
from repro.structures.order import OrderedDomain
from repro.twopass.io_aggregate import IOAggregator, Record, aggregate_cells
from repro.twopass.partitions import (
    HierarchyAncestorPartition,
    KDPartition,
    OrderPartition,
)


def _aggregate_tree_cells(
    root: KDNode,
    cell_to_index: dict,
    p: np.ndarray,
    rng: np.random.Generator,
) -> Optional[int]:
    """Bottom-up aggregation of one record per kd cell (final phase).

    Each leaf holds at most one active record; the shared kd walk
    (:func:`repro.aware.product_sampler.fold_kd_leftovers`)
    pair-aggregates them up the partition tree.  This is the
    historical scalar walk (``strict_seed=True``); the batched
    pipeline uses :func:`_aggregate_tree_cells_batched`.
    """
    def leaf_leftover(leaf: KDNode) -> Optional[int]:
        idx = cell_to_index.get(leaf.cell_id)
        if idx is None or is_set(float(p[idx])):
            return None
        return idx

    return fold_kd_leftovers(root, leaf_leftover, p, rng)


def _aggregate_tree_cells_batched(
    root: KDNode,
    cell_to_index: dict,
    p: np.ndarray,
    rng: np.random.Generator,
) -> Optional[int]:
    """Level-batched bottom-up aggregation of one record per kd cell.

    Same pair structure as :func:`_aggregate_tree_cells` -- every
    internal node pair-aggregates its two children's surviving
    leftovers, children before parents -- but all internal nodes of one
    depth resolve in a *single*
    :func:`~repro.core.chain.segmented_chain_aggregate` call (their
    pools are independent two-entry segments), so the walk costs one
    kernel call per tree level instead of one ``aggregate_pool`` per
    node.  The distribution is identical; only the RNG consumption
    order differs from the scalar walk, which the ``strict_seed`` path
    keeps.
    """
    by_depth: List[List[KDNode]] = []
    stack: List[Tuple[KDNode, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if depth == len(by_depth):
            by_depth.append([])
        by_depth[depth].append(node)
        if not node.is_leaf:
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
    leftover_of = {}
    for depth in range(len(by_depth) - 1, -1, -1):
        internal: List[KDNode] = []
        for node in by_depth[depth]:
            if node.is_leaf:
                idx = cell_to_index.get(node.cell_id)
                leftover_of[id(node)] = (
                    None if idx is None or is_set(float(p[idx])) else idx
                )
            else:
                internal.append(node)
        if not internal:
            continue
        pool: List[int] = []
        starts = np.empty(len(internal), dtype=np.int64)
        for i, node in enumerate(internal):
            starts[i] = len(pool)
            for child in (node.left, node.right):
                idx = leftover_of.pop(id(child), None)
                if idx is not None and not is_set(float(p[idx])):
                    pool.append(idx)
        leftovers = segmented_chain_aggregate(
            p, np.asarray(pool, dtype=np.int64), starts, rng
        )
        for node, leftover in zip(internal, leftovers):
            leftover_of[id(node)] = None if leftover < 0 else int(leftover)
    return leftover_of.get(id(root))


def _aggregate_hierarchy_records(
    keys: np.ndarray,
    p: np.ndarray,
    hierarchy: RadixHierarchy,
    rng: np.random.Generator,
) -> Optional[int]:
    """Final-phase aggregation of active records along a hierarchy."""
    from repro.aware.hierarchy_sampler import _aggregate_group

    order = np.argsort(keys, kind="stable")
    return _aggregate_group(p, order, keys[order], hierarchy, 0, rng)


class TwoPassSampler:
    """I/O-efficient structure-aware VarOpt sampler.

    Parameters
    ----------
    s:
        Target sample size.
    rng:
        Randomness source.
    s_prime_factor:
        Guide-sample size multiplier (pass 1 draws ``s_prime_factor*s``
        keys; the paper uses 5 and notes larger factors did not help).
    partition:
        ``"auto"`` (kd for multi-dimensional domains, order for 1-D
        ordered domains, ancestor for 1-D hierarchies), or one of
        ``"kd"``, ``"order"``, ``"ancestor"``, ``"linearized"``.
        ``"linearized"`` treats a 1-D hierarchy as an order via its DFS
        linearization (Δ < 2 instead of Δ < 1, but O(s') cells
        regardless of depth).
    split_rule:
        kd split rule, forwarded to the kd builder.
    labeler:
        Required when ``partition="disjoint"``: a function mapping a key
        tuple to its integer range label (the flat partition the range
        family consists of).
    strict_seed:
        ``True`` runs the historical item-at-a-time passes
        (bit-compatible RNG stream with earlier releases); the default
        batched pipeline vectorizes the threshold computation, the
        guide-sample feed, the cell routing and the per-cell
        aggregation, realizing the same sampling distribution.
    """

    def __init__(
        self,
        s: int,
        rng: np.random.Generator,
        s_prime_factor: int = 5,
        partition: str = "auto",
        split_rule: str = "median",
        labeler=None,
        strict_seed: bool = False,
    ):
        if s < 1:
            raise ValueError("sample size must be >= 1")
        if s_prime_factor < 1:
            raise ValueError("guide factor must be >= 1")
        kinds = ("auto", "kd", "order", "ancestor", "linearized", "disjoint")
        if partition not in kinds:
            raise ValueError(f"unknown partition kind: {partition}")
        if partition == "disjoint" and labeler is None:
            raise ValueError("disjoint partition requires a labeler")
        self._s = int(s)
        self._rng = rng
        self._factor = int(s_prime_factor)
        self._partition_kind = partition
        self._split_rule = split_rule
        self._labeler = labeler
        self._strict_seed = bool(strict_seed)
        self.last_partition = None  # exposed for tests/diagnostics
        # Build-phase tracing (repro.obs): no-op spans unless the
        # process-global registry is enabled.
        self._obs = _obs.get_registry()

    def _resolve_partition_kind(self, dataset: Dataset) -> str:
        if self._partition_kind != "auto":
            return self._partition_kind
        if dataset.dims > 1:
            return "kd"
        axis = dataset.domain.axes[0]
        if isinstance(axis, OrderedDomain):
            return "order"
        return "ancestor"

    def fit(self, dataset: Dataset) -> SampleSummary:
        """Run both passes over ``dataset`` and return the summary."""
        with self._obs.span(
            "twopass.fit", n=dataset.weights.shape[0], s=self._s,
            strict_seed=self._strict_seed,
        ):
            if self._strict_seed:
                return self._fit_scalar(dataset)
            return self._fit_batched(dataset)

    def _fit_batched(self, dataset: Dataset) -> SampleSummary:
        """Vectorized passes: same pipeline, NumPy kernels throughout.

        Pass 1 becomes the offline exact threshold (identical value to
        Algorithm 4's streaming fixpoint) plus the reservoir's bulk
        feed; pass 2 becomes vectorized cell routing plus one
        segmented aggregation chain per cell
        (:func:`repro.twopass.io_aggregate.aggregate_cells`).
        """
        rng = self._rng
        s = self._s
        weights = dataset.weights
        with self._obs.span("twopass.threshold"):
            tau = ipps_threshold(weights, s)
        if tau == 0.0:
            # The sample size covers every positive-weight key.
            mask = weights > 0
            return SampleSummary(
                coords=dataset.coords[mask],
                weights=weights[mask],
                tau=0.0,
            )
        # ---- Pass 1: guide sample via offline VarOpt -------------------
        # The scalar pipeline draws the guide with the one-pass
        # reservoir because it only sees a stream; with the dataset in
        # memory the offline kernel draws a VarOpt_{s'} sample with the
        # identical IPPS inclusion probabilities at a fraction of the
        # cost.  Keys certain to be sampled (w >= tau_s) are excluded
        # from the partition construction, as in the scalar pass.
        with self._obs.span("twopass.guide_sample"):
            guide_rows, _guide_tau = varopt_sample(
                weights, s * self._factor, rng
            )
            guide_rows = guide_rows[weights[guide_rows] < tau]
            guide_items = [
                (tuple(key), float(weight))
                for key, weight in zip(
                    dataset.coords[guide_rows].tolist(), weights[guide_rows]
                )
            ]
        kind = self._resolve_partition_kind(dataset)
        with self._obs.span("twopass.partition", kind=kind):
            partition = self._build_partition(
                dataset, kind, guide_items, tau
            )
        self.last_partition = partition
        # ---- Pass 2: route + segmented per-cell aggregation ------------
        with self._obs.span("twopass.aggregate", kind=kind):
            p = np.minimum(1.0, weights / tau)
            heavy_rows = np.flatnonzero(p >= 1.0 - SET_EPS)
            light_rows = np.flatnonzero((p > SET_EPS) & (p < 1.0 - SET_EPS))
            codes = partition.cell_codes(dataset.coords[light_rows])
            committed, active_rows, active_probs, active_codes = (
                aggregate_cells(p, light_rows, codes, rng)
            )
        # ---- Final phase: aggregate the active records -----------------
        with self._obs.span("twopass.finalize", kind=kind):
            final_rows = self._finalize_batched(
                dataset, kind, partition, active_rows, active_probs,
                active_codes, rng,
            )
        rows = np.concatenate((heavy_rows, committed, final_rows))
        return SampleSummary(
            coords=dataset.coords[rows],
            weights=weights[rows],
            tau=tau,
        )

    def _finalize_batched(
        self,
        dataset: Dataset,
        kind: str,
        partition,
        rows: np.ndarray,
        probs: np.ndarray,
        codes: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Structure-following aggregation of the active records.

        Mirrors :meth:`_finalize` over (row, probability) arrays; the
        active set is O(#cells), so only the order/ancestor chains are
        vectorized -- the kd walk touches each partition node once.
        """
        if rows.size == 0:
            return rows
        p = probs.copy()
        if kind == "kd":
            # KD cell codes are the leaf cell ids themselves.
            cell_to_index = {int(code): i for i, code in enumerate(codes)}
            leftover = _aggregate_tree_cells_batched(
                partition.tree, cell_to_index, p, rng
            )
        elif kind == "ancestor":
            keys = dataset.coords[rows, 0]
            order = np.argsort(keys, kind="stable")
            leftover = aggregate_hierarchy_levels(
                p, order, keys[order], dataset.domain.hierarchy(0), rng
            )
        else:  # order / linearized / disjoint: along the sorted order
            keys = dataset.coords[rows, 0]
            order = np.argsort(keys, kind="stable")
            leftover = chain_aggregate(p, order, rng)
        finalize_leftover(p, leftover, rng)
        return rows[included_indices(p)]

    def _fit_scalar(self, dataset: Dataset) -> SampleSummary:
        """The historical item-at-a-time passes (``strict_seed=True``)."""
        rng = self._rng
        s = self._s
        # ---- Pass 1: exact threshold + guide sample --------------------
        threshold = StreamingThreshold(s)
        guide = StreamVarOpt(s * self._factor, rng)
        for key, weight in dataset.iter_items():
            threshold.update(weight)
            guide.feed(key, weight)
        tau = threshold.tau
        if tau == 0.0:
            # The sample size covers every positive-weight key.
            mask = dataset.weights > 0
            return SampleSummary(
                coords=dataset.coords[mask],
                weights=dataset.weights[mask],
                tau=0.0,
            )
        # Keys certain to be sampled (w >= tau_s) are excluded from the
        # partition construction -- S' is guaranteed to contain them all.
        guide_items = [
            (key, weight)
            for key, weight in guide.sample_items()
            if weight < tau
        ]
        kind = self._resolve_partition_kind(dataset)
        partition = self._build_partition(dataset, kind, guide_items, tau)
        self.last_partition = partition
        # ---- Pass 2: IO-AGGREGATE --------------------------------------
        aggregator = IOAggregator(tau, partition.cell_of, rng)
        for key, weight in dataset.iter_items():
            aggregator.process(key, weight)
        # ---- Final phase: aggregate the active keys --------------------
        records = aggregator.active_records()
        chosen = list(aggregator.sample)
        chosen.extend(self._finalize(records, partition, kind, dataset, rng))
        if not chosen:
            return SampleSummary(
                coords=np.empty((0, dataset.dims), dtype=np.int64),
                weights=np.empty(0),
                tau=tau,
            )
        coords = np.asarray([key for key, _w in chosen], dtype=np.int64)
        weights = np.asarray([w for _k, w in chosen], dtype=float)
        return SampleSummary(coords=coords, weights=weights, tau=tau)

    def _build_partition(self, dataset, kind, guide_items, tau):
        guide_keys = [key for key, _w in guide_items]
        if kind == "kd":
            if not guide_keys:
                raise ValueError("guide sample too small for a kd partition")
            coords = np.asarray(guide_keys, dtype=np.int64)
            probs = np.asarray(
                [min(1.0, w / tau) for _k, w in guide_items], dtype=float
            )
            return KDPartition(
                coords, probs, domain=dataset.domain,
                split_rule=self._split_rule,
                strict_seed=self._strict_seed,
            )
        if kind in ("order", "linearized"):
            return OrderPartition([key[0] for key in guide_keys])
        if kind == "ancestor":
            hierarchy = dataset.domain.hierarchy(0)
            return HierarchyAncestorPartition(
                hierarchy, [key[0] for key in guide_keys]
            )
        if kind == "disjoint":
            from repro.twopass.partitions import DisjointPartition

            labels = [self._labeler(key) for key in guide_keys]
            return DisjointPartition(labels, labeler=self._labeler)
        raise ValueError(f"unknown partition kind: {kind}")

    def _finalize(
        self,
        records: List[Record],
        partition,
        kind: str,
        dataset: Dataset,
        rng: np.random.Generator,
    ) -> List[Tuple[Tuple[int, ...], float]]:
        """Aggregate active keys following the structure; return chosen."""
        if not records:
            return []
        p = np.asarray([rec[2] for rec in records], dtype=float)
        if kind == "kd":
            cell_to_index = {
                partition.cell_of(rec[0]): i for i, rec in enumerate(records)
            }
            leftover = _aggregate_tree_cells(
                partition.tree, cell_to_index, p, rng
            )
        elif kind == "ancestor":
            keys = np.asarray([rec[0][0] for rec in records])
            leftover = _aggregate_hierarchy_records(
                keys, p, dataset.domain.hierarchy(0), rng
            )
        else:  # order / linearized: aggregate along the sorted order
            keys = np.asarray([rec[0][0] for rec in records])
            order = np.argsort(keys, kind="stable")
            leftover = aggregate_pool(p, [int(i) for i in order], rng)
        finalize_leftover(p, leftover, rng)
        return [
            (records[i][0], records[i][1]) for i in included_indices(p)
        ]


def two_pass_summary(
    dataset: Dataset,
    s: int,
    rng: np.random.Generator,
    s_prime_factor: int = 5,
    partition: str = "auto",
    split_rule: str = "median",
    labeler=None,
    strict_seed: bool = False,
) -> SampleSummary:
    """Convenience wrapper: fit a :class:`TwoPassSampler` on a dataset."""
    sampler = TwoPassSampler(
        s,
        rng,
        s_prime_factor=s_prime_factor,
        partition=partition,
        split_rule=split_rule,
        labeler=labeler,
        strict_seed=strict_seed,
    )
    return sampler.fit(dataset)
