"""IO-AGGREGATE (paper Algorithm 3): streaming per-cell pair aggregation.

Pass 2 of the two-pass pipeline.  Each incoming key either enters the
sample directly (IPPS probability one), becomes its cell's active key,
or pair-aggregates with the cell's current active key.  Memory is one
record per cell plus the growing sample: O(s + |L|).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

import numpy as np

from repro.core.aggregation import SET_EPS, pair_aggregate_values
from repro.core.chain import run_starts, segmented_chain_aggregate

#: An in-flight record: (key tuple, original weight, current probability).
Record = Tuple[Tuple[int, ...], float, float]


def aggregate_cells(
    p: np.ndarray,
    rows: np.ndarray,
    codes: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched IO-AGGREGATE over pre-routed light records.

    The vectorized counterpart of feeding every light key through
    :meth:`IOAggregator.process`: per cell, incoming keys
    pair-aggregate with the cell's running active record, which is
    exactly one aggregation chain per cell
    (:func:`repro.core.chain.segmented_chain_aggregate`).

    Parameters
    ----------
    p:
        Full-length probability vector (updated in place).
    rows:
        Indices of the light records (``SET_EPS < p < 1 - SET_EPS``).
    codes:
        Integer cell code of each light record (from a partition's
        ``cell_codes``).
    rng:
        Randomness source.

    Returns
    -------
    ``(committed, active_rows, active_probs, active_codes)``:
    rows whose probability reached one (they join the sample), and the
    per-cell fractional leftovers -- the "active records" the final
    aggregation phase consumes -- with their probabilities and cells.
    """
    rows = np.asarray(rows, dtype=np.int64)
    codes = np.asarray(codes)
    order = np.argsort(codes, kind="stable")
    rows = rows[order]
    codes = codes[order]
    starts = run_starts(codes)
    leftovers = segmented_chain_aggregate(p, rows, starts, rng)
    committed = rows[p[rows] >= 1.0 - SET_EPS]
    resolved = leftovers >= 0
    active = leftovers[resolved]
    active_probs = p[active]
    fractional = (active_probs > SET_EPS) & (active_probs < 1.0 - SET_EPS)
    return (
        committed,
        active[fractional],
        active_probs[fractional],
        codes[starts][resolved][fractional],
    )


class IOAggregator:
    """Streaming pair aggregation guided by a partition of the domain.

    Parameters
    ----------
    tau:
        The IPPS threshold for the target sample size (from pass 1).
        ``tau == 0`` means every positive-weight key is sampled exactly.
    cell_of:
        Maps a key tuple to a hashable cell identifier.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        tau: float,
        cell_of: Callable[[Tuple[int, ...]], Hashable],
        rng: np.random.Generator,
    ):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self._tau = float(tau)
        self._cell_of = cell_of
        self._rng = rng
        self._active: Dict[Hashable, Record] = {}
        self._sample: List[Tuple[Tuple[int, ...], float]] = []
        self._mass_in = 0.0  # total probability mass fed (for invariants)

    @property
    def tau(self) -> float:
        """The IPPS threshold in use."""
        return self._tau

    @property
    def sample(self) -> List[Tuple[Tuple[int, ...], float]]:
        """Keys already committed to the sample (probability one)."""
        return self._sample

    @property
    def active_count(self) -> int:
        """Number of cells currently holding an active fractional key."""
        return len(self._active)

    def probability_of(self, weight: float) -> float:
        """IPPS inclusion probability of a weight under the threshold."""
        if weight <= 0:
            return 0.0
        if self._tau == 0.0:
            return 1.0
        return min(1.0, weight / self._tau)

    def process(self, key: Tuple[int, ...], weight: float) -> None:
        """Process one stream item (Algorithm 3 body)."""
        p = self.probability_of(weight)
        if p == 0.0:
            return
        self._mass_in += p
        if p >= 1.0 - SET_EPS:
            self._sample.append((key, weight))
            return
        cell = self._cell_of(key)
        resident = self._active.get(cell)
        if resident is None:
            self._active[cell] = (key, weight, p)
            return
        res_key, res_weight, res_p = resident
        new_res_p, new_p = pair_aggregate_values(res_p, p, self._rng)
        del self._active[cell]
        for rec_key, rec_weight, rec_p in (
            (res_key, res_weight, new_res_p),
            (key, weight, new_p),
        ):
            if rec_p >= 1.0 - SET_EPS:
                self._sample.append((rec_key, rec_weight))
            elif rec_p > SET_EPS:
                self._active[cell] = (rec_key, rec_weight, rec_p)

    def active_records(self) -> List[Record]:
        """The surviving active keys (for the final aggregation phase)."""
        return list(self._active.values())

    def conservation_error(self) -> float:
        """|mass in - (committed + active)|: should be ~0 at all times."""
        mass_out = float(len(self._sample)) + sum(
            rec[2] for rec in self._active.values()
        )
        return abs(self._mass_in - mass_out)
