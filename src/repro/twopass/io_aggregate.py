"""IO-AGGREGATE (paper Algorithm 3): streaming per-cell pair aggregation.

Pass 2 of the two-pass pipeline.  Each incoming key either enters the
sample directly (IPPS probability one), becomes its cell's active key,
or pair-aggregates with the cell's current active key.  Memory is one
record per cell plus the growing sample: O(s + |L|).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

import numpy as np

from repro.core.aggregation import SET_EPS, pair_aggregate_values

#: An in-flight record: (key tuple, original weight, current probability).
Record = Tuple[Tuple[int, ...], float, float]


class IOAggregator:
    """Streaming pair aggregation guided by a partition of the domain.

    Parameters
    ----------
    tau:
        The IPPS threshold for the target sample size (from pass 1).
        ``tau == 0`` means every positive-weight key is sampled exactly.
    cell_of:
        Maps a key tuple to a hashable cell identifier.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        tau: float,
        cell_of: Callable[[Tuple[int, ...]], Hashable],
        rng: np.random.Generator,
    ):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self._tau = float(tau)
        self._cell_of = cell_of
        self._rng = rng
        self._active: Dict[Hashable, Record] = {}
        self._sample: List[Tuple[Tuple[int, ...], float]] = []
        self._mass_in = 0.0  # total probability mass fed (for invariants)

    @property
    def tau(self) -> float:
        """The IPPS threshold in use."""
        return self._tau

    @property
    def sample(self) -> List[Tuple[Tuple[int, ...], float]]:
        """Keys already committed to the sample (probability one)."""
        return self._sample

    @property
    def active_count(self) -> int:
        """Number of cells currently holding an active fractional key."""
        return len(self._active)

    def probability_of(self, weight: float) -> float:
        """IPPS inclusion probability of a weight under the threshold."""
        if weight <= 0:
            return 0.0
        if self._tau == 0.0:
            return 1.0
        return min(1.0, weight / self._tau)

    def process(self, key: Tuple[int, ...], weight: float) -> None:
        """Process one stream item (Algorithm 3 body)."""
        p = self.probability_of(weight)
        if p == 0.0:
            return
        self._mass_in += p
        if p >= 1.0 - SET_EPS:
            self._sample.append((key, weight))
            return
        cell = self._cell_of(key)
        resident = self._active.get(cell)
        if resident is None:
            self._active[cell] = (key, weight, p)
            return
        res_key, res_weight, res_p = resident
        new_res_p, new_p = pair_aggregate_values(res_p, p, self._rng)
        del self._active[cell]
        for rec_key, rec_weight, rec_p in (
            (res_key, res_weight, new_res_p),
            (key, weight, new_p),
        ):
            if rec_p >= 1.0 - SET_EPS:
                self._sample.append((rec_key, rec_weight))
            elif rec_p > SET_EPS:
                self._active[cell] = (rec_key, rec_weight, rec_p)

    def active_records(self) -> List[Record]:
        """The surviving active keys (for the final aggregation phase)."""
        return list(self._active.values())

    def conservation_error(self) -> float:
        """|mass in - (committed + active)|: should be ~0 at all times."""
        mass_out = float(len(self._sample)) + sum(
            rec[2] for rec in self._active.values()
        )
        return abs(self._mass_in - mass_out)
