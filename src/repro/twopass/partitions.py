"""Partitions of the key domain induced by the pass-1 guide sample.

Each partition exposes ``cell_of(key) -> hashable`` used by
IO-AGGREGATE to co-locate nearby keys, and enough structure for the
final aggregation of active keys.  With a guide sample of size
Omega(s log s), every cell has probability mass <= 1 w.h.p. (it is an
eps-net of the range space), which is what bounds the two-pass
discrepancy.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.aware.kd import KDNode, build_kd_hierarchy, kd_cell_ids
from repro.structures.hierarchy import RadixHierarchy
from repro.structures.product import ProductDomain


def _key_column(coords: np.ndarray) -> np.ndarray:
    """First coordinate column of a 1-D key batch (accepts (n,) too)."""
    coords = np.asarray(coords)
    return coords[:, 0] if coords.ndim == 2 else coords


class OrderPartition:
    """Cells between consecutive guide keys of an ordered domain.

    Guide keys ``i_1 < ... < i_t`` induce cells ``(-inf, i_1]``,
    ``(i_j, i_{j+1}]`` and ``(i_t, +inf)`` -- ``t + 1`` cells total.
    """

    def __init__(self, guide_keys: Sequence[int]):
        self._boundaries = np.unique(np.asarray(guide_keys, dtype=np.int64))

    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return self._boundaries.size + 1

    def cell_of(self, key) -> int:
        """Cell index of a key (1-D keys or 1-tuples accepted)."""
        value = key[0] if isinstance(key, tuple) else key
        return int(np.searchsorted(self._boundaries, value, side="left"))

    def cell_codes(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of` over a key batch (same integers)."""
        return np.searchsorted(
            self._boundaries, _key_column(coords), side="left"
        ).astype(np.int64)


class KDPartition:
    """Leaves of a kd-tree built over the guide sample (product domains)."""

    def __init__(
        self,
        guide_coords: np.ndarray,
        guide_probs: np.ndarray,
        domain: Optional[ProductDomain] = None,
        split_rule: str = "median",
        strict_seed: bool = False,
    ):
        guide_coords = np.atleast_2d(np.asarray(guide_coords))
        if guide_coords.shape[0] == 0:
            raise ValueError("guide sample is empty; cannot build partition")
        self.tree: KDNode = build_kd_hierarchy(
            guide_coords,
            np.asarray(guide_probs, dtype=float),
            domain=domain,
            leaf_mass=1.0,
            split_rule=split_rule,
            scalar=strict_seed,
        )

    def cell_of(self, key: Tuple[int, ...]) -> int:
        """Leaf cell id containing the key."""
        return self.tree.locate(key).cell_id

    def cell_codes(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of` over a coordinate batch.

        Returns the same leaf cell ids as the per-key walk (one boolean
        mask per tree node instead of one descent per point).
        """
        return kd_cell_ids(self.tree, coords)


class HierarchyAncestorPartition:
    """Lowest-selected-ancestor cells of a hierarchy (Section 5).

    Selects every ancestor (including the leaf node itself) of every
    guide key; a key's cell is its deepest selected ancestor.  Yields
    Δ < 1 w.h.p. but the number of selected nodes grows with the
    hierarchy depth, so it is best for shallow hierarchies.
    """

    def __init__(self, hierarchy: RadixHierarchy, guide_keys: Sequence[int]):
        self._hierarchy = hierarchy
        selected: Set[Tuple[int, int]] = {(0, 0)}
        for key in guide_keys:
            key = int(key)
            selected.add((hierarchy.depth, key))
            for depth, node in hierarchy.ancestors(key):
                selected.add((depth, node))
        self._selected = selected
        # Per-depth sorted node arrays for the vectorized router.
        by_depth: Dict[int, List[int]] = {}
        for depth, node in selected:
            by_depth.setdefault(depth, []).append(node)
        self._selected_by_depth = {
            depth: np.sort(np.asarray(nodes, dtype=np.int64))
            for depth, nodes in by_depth.items()
        }

    @property
    def num_cells(self) -> int:
        """Number of selected nodes (upper bound on active keys held)."""
        return len(self._selected)

    def cell_of(self, key) -> Tuple[int, int]:
        """Deepest selected ancestor node of the key."""
        value = int(key[0] if isinstance(key, tuple) else key)
        h = self._hierarchy
        candidate = (h.depth, value)
        if candidate in self._selected:
            return candidate
        for depth, node in h.ancestors(value):
            if (depth, node) in self._selected:
                return (depth, node)
        return (0, 0)

    def cell_codes(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of`, as ``depth * num_leaves + node``.

        One sorted-membership pass per hierarchy level, deepest first;
        each key takes the first (deepest) selected ancestor it hits.
        :meth:`decode_cell_code` recovers the ``(depth, node)`` tuple.
        """
        values = _key_column(coords)
        h = self._hierarchy
        stride = np.int64(h.num_leaves)
        codes = np.zeros(values.shape[0], dtype=np.int64)  # root = (0, 0)
        pending = np.ones(values.shape[0], dtype=bool)
        for depth in range(h.depth, 0, -1):
            selected = self._selected_by_depth.get(depth)
            if selected is None or not pending.any():
                continue
            rows = np.flatnonzero(pending)
            nodes = np.asarray(h.node_of(values[rows], depth), dtype=np.int64)
            pos = np.searchsorted(selected, nodes)
            hit = pos < selected.size
            hit[hit] = selected[pos[hit]] == nodes[hit]
            hit_rows = rows[hit]
            codes[hit_rows] = np.int64(depth) * stride + nodes[hit]
            pending[hit_rows] = False
        return codes

    def decode_cell_code(self, code: int) -> Tuple[int, int]:
        """The ``(depth, node)`` cell behind a :meth:`cell_codes` value."""
        stride = self._hierarchy.num_leaves
        return int(code) // stride, int(code) % stride


class DisjointPartition:
    """Cells for a flat partition structure (disjoint ranges).

    One cell per range label observed in the guide sample, plus one
    cell for every maximal run of unobserved labels between consecutive
    observed ones (at most ``2 s' + 1`` cells total).

    ``labeler`` (optional) maps a *key* to its range label so the
    partition can be used directly as a two-pass ``cell_of``.
    """

    def __init__(self, guide_labels: Sequence[int], labeler=None):
        self._seen = np.unique(np.asarray(guide_labels, dtype=np.int64))
        self._labeler = labeler

    @property
    def num_cells(self) -> int:
        """Number of distinct cells reachable."""
        return 2 * self._seen.size + 1

    def cell_of(self, label) -> Tuple[str, int]:
        """Cell of a label (or of a key when a labeler was supplied)."""
        if self._labeler is not None:
            label = self._labeler(label)
        value = int(label[0] if isinstance(label, tuple) else label)
        pos = int(np.searchsorted(self._seen, value, side="left"))
        if pos < self._seen.size and self._seen[pos] == value:
            return ("range", value)
        return ("gap", pos)

    def cell_codes(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of`, as ``2 * pos + exact_match``.

        Observed labels get odd codes (``("range", value)``), gap runs
        even codes (``("gap", pos)``); distinct cells map to distinct
        codes.  When a labeler was supplied it is applied per row (the
        labeler is an arbitrary Python callable); the grouping itself
        stays vectorized.
        """
        if self._labeler is not None:
            rows = np.asarray(coords)
            if rows.ndim == 1:
                rows = rows.reshape(-1, 1)
            # Native-int key tuples, exactly what the scalar path's
            # Dataset.iter_items hands the labeler.
            values = np.asarray(
                [
                    int(self._labeler(tuple(int(x) for x in row)))
                    for row in rows
                ],
                dtype=np.int64,
            )
        else:
            values = _key_column(coords).astype(np.int64)
        pos = np.searchsorted(self._seen, values, side="left")
        exact = pos < self._seen.size
        exact[exact] = self._seen[pos[exact]] == values[exact]
        return 2 * pos.astype(np.int64) + exact

    def decode_cell_code(self, code: int) -> Tuple[str, int]:
        """The cell tuple behind a :meth:`cell_codes` value."""
        code = int(code)
        if code % 2:
            return ("range", int(self._seen[code // 2]))
        return ("gap", code // 2)
