"""I/O-efficient two-pass structure-aware sampling (paper Section 5).

Two read-only streaming passes over the (unsorted) data using memory
O~(s):

1. Pass 1 computes the exact IPPS threshold tau_s (Algorithm 4) and a
   structure-oblivious guide sample S' of size s' (default 5s, as in
   the paper's experiments).
2. The guide sample induces a partition L of the key domain in which
   every cell has probability mass <= 1 with high probability.
3. Pass 2 runs IO-AGGREGATE (Algorithm 3): at most one active
   fractional key per cell, pair-aggregating within cells.
4. The surviving active keys are aggregated following the structure
   (kd-tree / sorted order / hierarchy).
"""

from repro.twopass.partitions import (
    OrderPartition,
    KDPartition,
    HierarchyAncestorPartition,
    DisjointPartition,
)
from repro.twopass.io_aggregate import IOAggregator
from repro.twopass.two_pass import TwoPassSampler, two_pass_summary

__all__ = [
    "OrderPartition",
    "KDPartition",
    "HierarchyAncestorPartition",
    "DisjointPartition",
    "IOAggregator",
    "TwoPassSampler",
    "two_pass_summary",
]
