"""Out-of-core query backends.

:mod:`repro.backends.pushdown` persists flat interval tables
(:class:`repro.structures.intervals.IntervalTable`) into SQLite and
answers range-sum batteries with window-function SQL, bit-identical to
the in-memory kernels.  Summaries spill to it automatically when their
interval table exceeds the configurable RAM budget.
"""

from repro.backends.pushdown import (  # noqa: F401
    PushdownStore,
    SpilledTable,
    ram_budget,
    set_ram_budget,
)
