"""SQLite pushdown backend for flat interval tables.

Persists :class:`~repro.structures.intervals.IntervalTable` columns
into a WAL-mode SQLite database (the same connection conventions as
``repro.durable``'s checkpoint store) and answers the same range-sum
batteries the in-memory kernels serve -- **bit-identically**.  This is
the out-of-core tier: when a summary's interval table exceeds the
configurable RAM budget (:func:`ram_budget`), ``query_many`` spills
the table here and pushes each battery down as SQL instead of holding
the columns resident.

The correctness contract is exact, not approximate, and rests on two
facts:

* every *derived integer* (contained cell runs, straddle candidates)
  is computed in NumPy with the identical expressions the in-memory
  scan uses, then shipped to SQLite as probe rows -- the SQL never
  does arithmetic whose rounding or division semantics could diverge;
* every *float* stored (per-level inclusive prefix sums ``cum``,
  masses) comes from the same ``np.cumsum`` the in-memory prefix uses,
  and SQLite ``REAL`` round-trips IEEE doubles losslessly, so the
  prefix differences subtract the very same doubles.

The one window function involved carries prefix values to probe
positions::

    MAX(cum) OVER (PARTITION BY level ORDER BY val, side
                   ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW)

over interval rows (``side 0``, real ``cum``) unioned with probe rows
(``side ±1``, ``cum NULL``): because ``cum`` increases with ``cell``
inside a level, the running ``MAX`` at a probe is exactly the prefix
value at the probe's rank -- ``side -1`` excludes the probe's own cell
(cells strictly below ``a``), ``side +1`` includes it (cells at most
``b``).  Straddling cells resolve with a plain equality join.  Full
derivation and the schema live in ``structures/INTERVALS.md``.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.structures.intervals import IntervalTable

#: Default RAM budget (bytes) above which summaries spill their
#: interval tables to a :class:`PushdownStore`.  Overridable via the
#: ``REPRO_PUSHDOWN_BUDGET`` environment variable or
#: :func:`set_ram_budget`; summaries may also carry a per-instance
#: ``pushdown_budget`` attribute.
_DEFAULT_BUDGET = 256 * 1024 * 1024
_budget_override: Optional[int] = None


def ram_budget() -> int:
    """The effective module-wide RAM budget in bytes."""
    if _budget_override is not None:
        return _budget_override
    raw = os.environ.get("REPRO_PUSHDOWN_BUDGET")
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return _DEFAULT_BUDGET


def set_ram_budget(budget: Optional[int]) -> None:
    """Override the module-wide RAM budget (``None`` restores env)."""
    global _budget_override
    _budget_override = None if budget is None else int(budget)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS tables (
    table_id TEXT PRIMARY KEY,
    kind     TEXT    NOT NULL,
    height   INTEGER NOT NULL,
    rows     INTEGER NOT NULL,
    total    REAL    NOT NULL
);
CREATE TABLE IF NOT EXISTS levels (
    table_id TEXT    NOT NULL,
    level    INTEGER NOT NULL,
    span     INTEGER NOT NULL,
    n        INTEGER NOT NULL,
    PRIMARY KEY (table_id, level)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS intervals (
    table_id TEXT    NOT NULL,
    level    INTEGER NOT NULL,
    cell     INTEGER NOT NULL,
    lo       INTEGER NOT NULL,
    hi       INTEGER NOT NULL,
    pre      INTEGER NOT NULL,
    post     INTEGER NOT NULL,
    mass     REAL    NOT NULL,
    cum      REAL    NOT NULL,
    PRIMARY KEY (table_id, level, cell)
) WITHOUT ROWID;
"""


class PushdownStore:
    """Interval tables on disk, queried with window-function SQL.

    Connection conventions mirror ``repro.durable``'s SQLite backend:
    WAL journal, ``synchronous=NORMAL``, a busy timeout, one
    connection guarded by a lock (``check_same_thread=False`` so any
    thread may serve queries).
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._lock = threading.Lock()
        cur = self._conn.cursor()
        cur.execute("PRAGMA journal_mode=WAL")
        cur.execute("PRAGMA synchronous=NORMAL")
        cur.execute("PRAGMA foreign_keys=ON")
        cur.execute("PRAGMA busy_timeout=30000")
        cur.executescript(_SCHEMA)
        self._conn.commit()

    @classmethod
    def temp(cls) -> "PushdownStore":
        """A store on a fresh temporary file, removed on collection."""
        fd, path = tempfile.mkstemp(prefix="repro-pushdown-",
                                    suffix=".sqlite")
        os.close(fd)
        store = cls(path)
        weakref.finalize(store, _cleanup_temp, path)
        return store

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def put(self, table_id: str, table: IntervalTable) -> None:
        """Persist ``table`` under ``table_id`` (replacing any prior).

        Only scannable tables (1-D, uniform span per level) push down;
        rows are stored with their level-local cell index and the
        *inclusive* per-level prefix ``cum`` -- the same doubles as the
        in-memory prefix, written once at put time.
        """
        if not table.scannable():
            raise ValueError(
                "pushdown requires a 1-D uniform-span interval table"
            )
        lo = table.lo[:, 0]
        hi = table.hi[:, 0]
        spans = table.level_spans
        starts = table.level_starts
        level_rows = []
        interval_rows = []
        for j in range(table.level_values.shape[0]):
            s, e = int(starts[j]), int(starts[j + 1])
            span = int(spans[j])
            cells = lo[s:e] // span
            cum = np.cumsum(table.mass[s:e])
            lvl = int(table.level_values[j])
            level_rows.append((table_id, lvl, span, e - s))
            interval_rows.extend(
                zip(
                    [table_id] * (e - s),
                    [lvl] * (e - s),
                    cells.tolist(),
                    lo[s:e].tolist(),
                    hi[s:e].tolist(),
                    table.pre[s:e].tolist(),
                    table.post[s:e].tolist(),
                    table.mass[s:e].tolist(),
                    cum.tolist(),
                )
            )
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute("DELETE FROM tables WHERE table_id=?",
                            (table_id,))
                cur.execute("DELETE FROM levels WHERE table_id=?",
                            (table_id,))
                cur.execute("DELETE FROM intervals WHERE table_id=?",
                            (table_id,))
                cur.execute(
                    "INSERT INTO tables VALUES (?,?,?,?,?)",
                    (table_id, table.kind, table.height, len(table),
                     table.total),
                )
                cur.executemany(
                    "INSERT INTO levels VALUES (?,?,?,?)", level_rows
                )
                cur.executemany(
                    "INSERT INTO intervals VALUES (?,?,?,?,?,?,?,?,?)",
                    interval_rows,
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    def get(self, table_id: str) -> IntervalTable:
        """Rebuild the stored table, bit-exact."""
        with self._lock:
            cur = self._conn.cursor()
            meta = cur.execute(
                "SELECT kind, height FROM tables WHERE table_id=?",
                (table_id,),
            ).fetchone()
            if meta is None:
                raise KeyError(table_id)
            rows = cur.execute(
                "SELECT level, lo, hi, pre, post, mass FROM intervals"
                " WHERE table_id=? ORDER BY level, cell",
                (table_id,),
            ).fetchall()
        cols = (
            list(zip(*rows)) if rows
            else [[], [], [], [], [], []]
        )
        return IntervalTable(
            np.asarray(cols[0], dtype=np.int64),
            np.asarray(cols[1], dtype=np.int64),
            np.asarray(cols[2], dtype=np.int64),
            np.asarray(cols[5], dtype=float),
            pre=np.asarray(cols[3], dtype=np.int64),
            post=np.asarray(cols[4], dtype=np.int64),
            kind=str(meta[0]),
            height=int(meta[1]),
        )

    def table_ids(self) -> List[str]:
        """Stored table ids, sorted."""
        with self._lock:
            cur = self._conn.execute(
                "SELECT table_id FROM tables ORDER BY table_id"
            )
            return [row[0] for row in cur.fetchall()]

    def delete(self, table_id: str) -> None:
        """Drop a stored table (no error if absent)."""
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                for tbl in ("tables", "levels", "intervals"):
                    cur.execute(
                        f"DELETE FROM {tbl} WHERE table_id=?", (table_id,)
                    )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    def handle(self, table_id: str) -> "SpilledTable":
        """A query handle bound to one stored table."""
        return SpilledTable(self, table_id)

    # ------------------------------------------------------------------
    # Query pushdown
    # ------------------------------------------------------------------
    def _level_meta(self, table_id: str) -> List[Tuple[int, int]]:
        with self._lock:
            cur = self._conn.execute(
                "SELECT level, span FROM levels WHERE table_id=?"
                " ORDER BY level",
                (table_id,),
            )
            return [(int(l), int(s)) for l, s in cur.fetchall()]

    def range_sums(
        self,
        table_id: str,
        lo: np.ndarray,
        hi: np.ndarray,
        levels: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Battery range sums pushed down to SQL (see module docstring).

        Bit-identical to ``IntervalTable.scan_bounds`` on the same
        table: identical NumPy-derived probe integers, identical
        stored doubles, identical per-level fold order (level
        ascending; contained run, then the lo-side straddler, then the
        hi-side straddler).
        """
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        q = lo.shape[0]
        meta = self._level_meta(table_id)
        if levels is not None:
            wanted = set(int(v) for v in levels)
            have = {lvl for lvl, _ in meta}
            missing = wanted - have
            if missing:
                raise ValueError(f"levels {sorted(missing)} not in table")
            meta = [(lvl, s) for lvl, s in meta if lvl in wanted]
        if q == 0 or not meta:
            return np.zeros(q, dtype=float)

        # All derived integers computed here, in NumPy, with the exact
        # in-memory expressions; SQL only carries prefix values and
        # resolves straddle-cell existence.
        probe_rows = []
        cand_rows = []
        cands: Dict[Tuple[int, int], np.ndarray] = {}
        for lvl, s in meta:
            a = (lo + s - 1) // s
            b = (hi + 1) // s - 1
            c_lo = lo // s
            c_hi = hi // s
            probe_rows.extend(
                (lvl, val, -1, qid) for qid, val in enumerate(a.tolist())
            )
            probe_rows.extend(
                (lvl, val, 1, qid) for qid, val in enumerate(b.tolist())
            )
            lo_cand = np.where(
                (lo % s != 0) | (a > b), c_lo, np.int64(-1)
            )
            hi_cand = np.where(
                ((hi + 1) % s != 0) & (c_hi != c_lo), c_hi, np.int64(-1)
            )
            cands[(lvl, 0)] = lo_cand
            cands[(lvl, 1)] = hi_cand
            for kind, cand in ((0, lo_cand), (1, hi_cand)):
                rows = np.flatnonzero(cand >= 0)
                cand_rows.extend(
                    zip([lvl] * rows.size, cand[rows].tolist(),
                        [kind] * rows.size, rows.tolist())
                )

        with self._lock:
            cur = self._conn.cursor()
            cur.execute(
                "CREATE TEMP TABLE IF NOT EXISTS probes"
                " (level INTEGER, val INTEGER, side INTEGER,"
                "  qid INTEGER)"
            )
            cur.execute(
                "CREATE TEMP TABLE IF NOT EXISTS cands"
                " (level INTEGER, cell INTEGER, kind INTEGER,"
                "  qid INTEGER)"
            )
            cur.execute("DELETE FROM probes")
            cur.execute("DELETE FROM cands")
            cur.executemany("INSERT INTO probes VALUES (?,?,?,?)",
                            probe_rows)
            cur.executemany("INSERT INTO cands VALUES (?,?,?,?)",
                            cand_rows)
            # Carry per-level prefix values to every probe: interval
            # rows (side 0) supply cum, probe rows (side ±1) pick up
            # the running MAX = the last preceding cell's cum.  The
            # filter sits outside the subquery so the window sees all
            # rows.
            carried = cur.execute(
                """
                SELECT qid, level, side, carried FROM (
                    SELECT qid, level, side,
                           MAX(cum) OVER (
                               PARTITION BY level
                               ORDER BY val, side
                               ROWS BETWEEN UNBOUNDED PRECEDING
                                    AND CURRENT ROW
                           ) AS carried
                    FROM (
                        SELECT level, cell AS val, 0 AS side,
                               NULL AS qid, cum
                        FROM intervals WHERE table_id = ?
                        UNION ALL
                        SELECT level, val, side, qid, NULL AS cum
                        FROM probes
                    )
                ) WHERE qid IS NOT NULL
                """,
                (table_id,),
            ).fetchall()
            straddle = cur.execute(
                """
                SELECT c.level, c.kind, c.qid, i.mass
                FROM cands c
                JOIN intervals i
                  ON i.table_id = ? AND i.level = c.level
                 AND i.cell = c.cell
                """,
                (table_id,),
            ).fetchall()
            cur.execute("DELETE FROM probes")
            cur.execute("DELETE FROM cands")

        level_index = {lvl: j for j, (lvl, _) in enumerate(meta)}
        ca = np.zeros((len(meta), q), dtype=float)
        cb = np.zeros((len(meta), q), dtype=float)
        for qid, lvl, side, value in carried:
            if value is None:
                continue
            (ca if side == -1 else cb)[level_index[lvl], qid] = value
        hits: Dict[Tuple[int, int], List[Tuple[int, float]]] = {}
        for lvl, kind, qid, mass in straddle:
            hits.setdefault((lvl, kind), []).append((qid, mass))

        per_box = np.zeros(q, dtype=float)
        for j, (lvl, s) in enumerate(meta):
            # Contained run: prefix difference, +0.0 for empty runs
            # (cum is nondecreasing per level, so a reversed pair can
            # only mean an empty run).
            per_box += np.maximum(0.0, cb[j] - ca[j])
            for kind in (0, 1):
                got = hits.get((lvl, kind))
                if not got:
                    continue
                got.sort()
                rows = np.asarray([g[0] for g in got], dtype=np.int64)
                mass = np.asarray([g[1] for g in got], dtype=float)
                cand = cands[(lvl, kind)][rows]
                n_lo = cand * s
                n_hi = n_lo + s - 1
                overlap = (
                    np.minimum(hi[rows], n_hi)
                    - np.maximum(lo[rows], n_lo) + 1
                )
                per_box[rows] += mass * overlap / float(s)
        return per_box


class SpilledTable:
    """A :class:`PushdownStore` handle bound to one table id.

    What summaries hold after spilling: answers the same batteries as
    the in-memory table, out-of-core.
    """

    __slots__ = ("store", "table_id")

    def __init__(self, store: PushdownStore, table_id: str):
        self.store = store
        self.table_id = table_id

    def range_sums(
        self, lo: np.ndarray, hi: np.ndarray,
        levels: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        return self.store.range_sums(self.table_id, lo, hi,
                                     levels=levels)

    def load(self) -> IntervalTable:
        """Pull the table back into RAM."""
        return self.store.get(self.table_id)


def _cleanup_temp(path: str) -> None:
    for suffix in ("", "-wal", "-shm"):
        try:
            os.remove(path + suffix)
        except OSError:
            pass
