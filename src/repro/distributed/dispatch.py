"""Non-blocking coordinator dispatch: a selector thread owning one transport.

The synchronous coordinator of PR 3 serialized everything on one
blocking ``send``/``poll`` loop: a snapshot collection could not
overlap an ingest hand-off, and a query fan-out had to wait for
whichever frame happened to be in flight.  :class:`AsyncDispatcher`
inverts that: **one background thread owns the transport** (every
``send``/``poll``/``alive`` call happens there, so no transport needs
to be thread-safe) and callers on any thread enqueue requests through
:meth:`AsyncDispatcher.submit`, which returns a :class:`ReplyFuture`
immediately.

Flow control is explicit and per worker:

* at most ``max_inflight`` reply-expecting requests are *on the wire*
  per worker (a worker handles frames sequentially, so a deeper window
  only buys pipe buffering, not parallelism);
* at most ``max_pending`` requests may be queued per worker in total;
  beyond that :meth:`submit` blocks (backpressure) or raises
  :class:`Backpressure` when ``block=False`` (shed-on-overload).

Ordering: requests to one worker are sent strictly in submission
order (fire-and-forget frames ride the same FIFO, so an ``ingest``
enqueued before a ``snapshot`` is observed by it), and because the
worker runtime answers reply-expecting frames in order, replies are
matched to futures FIFO per worker.

Wire accounting stays **exact under concurrency**: the dispatcher
thread brackets every ``transport.send`` with a
:class:`~repro.distributed.transport.WireStats` delta and stamps the
request's share (``bytes_sent``/``shm_bytes``) onto its future, so
concurrent operations can each sum their own futures instead of
racing on before/after snapshots of the shared counters.

Worker death fails that worker's queued and outstanding futures with
:class:`~repro.distributed.transport.TransportError`; retry policy
stays the caller's (the coordinator re-dispatches build tasks, snapshot
collection shrinks its reply target).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs as _obs
from repro.distributed import codec
from repro.distributed.transport import BaseTransport, TransportError

__all__ = [
    "AsyncDispatcher",
    "Backpressure",
    "DispatchStats",
    "ReplyFuture",
]


class Backpressure(RuntimeError):
    """A bounded dispatch queue is full and the caller chose not to wait."""


class ReplyFuture:
    """One request's eventual reply (resolved by the dispatcher thread).

    ``result()`` decodes the reply frame lazily on the *waiting*
    thread, keeping the dispatcher thread free of codec work.  The
    per-request wire share (``bytes_sent``, ``bytes_received``,
    ``shm_bytes``) is stamped by the dispatcher as the frames move.
    """

    __slots__ = (
        "_cond", "_frame", "_message", "_error",
        "worker_id", "bytes_sent", "bytes_received", "shm_bytes",
        "submitted_at",
    )

    def __init__(self, cond: threading.Condition, worker_id: int):
        self._cond = cond
        self._frame: Optional[bytes] = None
        self._message: Optional[dict] = None
        self._error: Optional[BaseException] = None
        self.worker_id = worker_id
        self.bytes_sent = 0
        self.bytes_received = 0
        self.shm_bytes = 0
        #: Monotonic submit stamp; set only when telemetry is enabled.
        self.submitted_at = 0.0

    def done(self) -> bool:
        """Whether a reply (or a failure) has landed."""
        return self._frame is not None or self._error is not None

    def exception(self) -> Optional[BaseException]:
        """The failure, if the request failed (``None`` while pending/ok)."""
        return self._error

    def result(self, timeout: Optional[float] = None) -> dict:
        """Wait for and decode the reply message.

        Raises the request's :class:`TransportError` when the worker
        died, or :class:`TimeoutError` when ``timeout`` elapses first.
        """
        with self._cond:
            if not self._cond.wait_for(self.done, timeout):
                raise TimeoutError(
                    f"no reply from worker {self.worker_id} "
                    f"within {timeout}s"
                )
        if self._error is not None:
            raise self._error
        if self._message is None:
            self._message = codec.decode_message(self._frame)
        return self._message

    # Dispatcher-thread side -------------------------------------------
    def _resolve(self, frame: bytes) -> None:
        with self._cond:
            self._frame = frame
            self._cond.notify_all()

    def _fail(self, error: BaseException) -> None:
        with self._cond:
            self._error = error
            self._cond.notify_all()


class DispatchStats:
    """Counters the dispatcher accumulates over its life.

    Thread-safety contract: counters are written from *two* threads --
    ``submitted``/``rejected``/``backpressure_waits``/
    ``max_queue_depth`` by whichever caller thread runs ``submit()``,
    ``dispatched``/``completed``/``orphans`` by the dispatcher thread,
    and ``failed`` by either (``stop()`` on the caller, send failures
    and death sweeps on the dispatcher).  A bare ``+= 1`` is a racy
    read-modify-write across those threads, so every internal call
    site goes through :meth:`inc`, which increments the field's
    backing :class:`repro.obs.Counter` under its lock.  The historical
    attribute reads (``stats.completed`` ...) and ``snapshot()`` are
    unchanged; the same counters surface in a metrics registry under
    ``dispatch.*`` via :meth:`obs_metrics`.
    """

    _FIELDS = (
        "submitted", "dispatched", "completed", "failed",
        "backpressure_waits", "rejected", "orphans", "max_queue_depth",
    )

    __slots__ = tuple("_" + field for field in _FIELDS) + ("__weakref__",)

    def __init__(self):
        for field in self._FIELDS:
            setattr(self, "_" + field, _obs.Counter())

    def inc(self, field: str, n: int = 1) -> None:
        """Atomically bump one counter (safe from any thread)."""
        getattr(self, "_" + field).inc(n)

    def record_depth(self, depth: int) -> None:
        """Raise the ``max_queue_depth`` high-water mark."""
        counter = self._max_queue_depth
        with counter._lock:
            if depth > counter._value:
                counter._value = depth

    def snapshot(self) -> Dict[str, int]:
        return {key: getattr(self, key) for key in self._FIELDS}

    def obs_metrics(self):
        """Registry collector hook: ``dispatch.<field>``."""
        for field in self._FIELDS:
            yield "dispatch." + field, {}, getattr(self, "_" + field)


def _dispatch_stat(field: str):
    slot = "_" + field

    def _get(self):
        return getattr(self, slot).value

    def _set(self, value):
        getattr(self, slot).set(value)

    return property(_get, _set, doc=f"Total {field.replace('_', ' ')}.")


for _field in DispatchStats._FIELDS:
    setattr(DispatchStats, _field, _dispatch_stat(_field))
del _field


class _Request:
    __slots__ = ("frame", "future", "reply_expected")

    def __init__(self, frame, future, reply_expected):
        self.frame = frame
        self.future = future
        self.reply_expected = reply_expected


#: How long the dispatcher sleeps when fully idle (no queued work, no
#: outstanding replies).  Submissions interrupt the sleep via the
#: condition, so this only bounds how lazily worker *deaths* are
#: discovered while idle.
_IDLE_WAIT_S = 0.05


class AsyncDispatcher:
    """Background send/receive loop over a started transport.

    Parameters
    ----------
    transport:
        A started :class:`~repro.distributed.transport.BaseTransport`.
        From this point on the dispatcher thread is the only caller of
        its ``send``/``poll``/``alive``; tear-down order is
        ``dispatcher.stop()`` then ``transport.stop()``.
    max_inflight:
        Reply-expecting requests on the wire per worker.
    max_pending:
        Total queued + outstanding requests per worker before
        :meth:`submit` exerts backpressure.
    poll_interval:
        Transport poll granularity while replies are outstanding.
    registry:
        Metrics registry (defaults to the process-global one).  When
        enabled, the dispatcher records submit->reply latency into
        ``dispatch.reply_latency_seconds`` and tracks a live
        ``dispatch.queue_depth`` gauge; disabled, the hot path pays
        one ``enabled`` branch per submit/reply.
    """

    def __init__(
        self,
        transport: BaseTransport,
        *,
        max_inflight: int = 2,
        max_pending: int = 128,
        poll_interval: float = 0.002,
        registry=None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._transport = transport
        self._max_inflight = int(max_inflight)
        self._max_pending = int(max_pending)
        self._poll_interval = float(poll_interval)
        self._cond = threading.Condition()
        #: Shared completion condition every future waits on.
        self._completion = threading.Condition()
        self._pending: Dict[int, deque] = {}
        self._outstanding: Dict[int, deque] = {}
        self._alive = set(range(transport.num_workers))
        self._running = True
        self.stats = DispatchStats()
        self._obs = registry if registry is not None else _obs.get_registry()
        self._obs.attach(self.stats)
        self._obs_enabled = self._obs.enabled
        self._reply_latency = self._obs.histogram(
            "dispatch.reply_latency_seconds"
        )
        self._depth_gauge = self._obs.gauge("dispatch.queue_depth")
        self._thread = threading.Thread(
            target=self._run, name="repro-dispatcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Caller-side API (any thread)
    # ------------------------------------------------------------------
    def _depth(self, worker_id: int) -> int:
        return (
            len(self._pending.get(worker_id, ()))
            + len(self._outstanding.get(worker_id, ()))
        )

    def queue_depth(self, worker_id: int) -> int:
        """Queued + outstanding requests for one worker right now."""
        with self._cond:
            return self._depth(worker_id)

    def alive_workers(self) -> List[int]:
        """The dispatcher's view of reachable workers.

        Refreshed by the dispatcher thread every loop; may lag a death
        by up to one idle wait, never by more.
        """
        with self._cond:
            return sorted(self._alive)

    def submit(
        self,
        worker_id: int,
        message,
        *,
        reply_expected: bool = True,
        compress: bool = True,
        block: bool = True,
        timeout: Optional[float] = 60.0,
    ) -> Optional[ReplyFuture]:
        """Enqueue one message for a worker; returns its future.

        ``message`` may be a dict (encoded here, on the caller's
        thread) or an already-encoded frame.  Fire-and-forget requests
        (``reply_expected=False``) return ``None``.

        Backpressure: when the worker's queue is at ``max_pending``,
        blocks until space frees (bounded by ``timeout``) -- or raises
        :class:`Backpressure` immediately when ``block=False``.
        """
        if isinstance(message, dict):
            frame = codec.encode_message(message, compress=compress)
        else:
            frame = message
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        with self._cond:
            if not self._running:
                raise TransportError("dispatcher is stopped")
            if worker_id not in self._alive:
                raise TransportError(f"worker {worker_id} is dead")
            while self._depth(worker_id) >= self._max_pending:
                if not block:
                    self.stats.inc("rejected")
                    raise Backpressure(
                        f"worker {worker_id} queue full "
                        f"({self._max_pending} requests)"
                    )
                self.stats.inc("backpressure_waits")
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise Backpressure(
                        f"worker {worker_id} queue still full "
                        f"after {timeout}s"
                    )
                self._cond.wait(
                    _IDLE_WAIT_S if remaining is None
                    else min(remaining, _IDLE_WAIT_S)
                )
                if not self._running:
                    raise TransportError("dispatcher is stopped")
                if worker_id not in self._alive:
                    raise TransportError(f"worker {worker_id} died")
            future = (
                ReplyFuture(self._completion, worker_id)
                if reply_expected else None
            )
            if future is not None and self._obs_enabled:
                future.submitted_at = time.monotonic()
            self._pending.setdefault(worker_id, deque()).append(
                _Request(frame, future, reply_expected)
            )
            self.stats.inc("submitted")
            depth = self._depth(worker_id)
            self.stats.record_depth(depth)
            if self._obs_enabled:
                self._depth_gauge.set(depth)
            self._cond.notify_all()
        return future

    def capacity(self, worker_id: int) -> int:
        """Free queue slots for a worker (0 means submit would block)."""
        with self._cond:
            if worker_id not in self._alive:
                return 0
            return max(0, self._max_pending - self._depth(worker_id))

    def load(self, worker_id: int) -> int:
        """Current queue depth (scheduling hint: lower is idler)."""
        return self.queue_depth(worker_id)

    def wait_any(
        self,
        futures: Sequence[ReplyFuture],
        timeout: Optional[float] = None,
    ) -> bool:
        """Block until any future is done (True) or timeout (False)."""
        futures = [f for f in futures if f is not None]
        if not futures:
            return False
        with self._completion:
            return self._completion.wait_for(
                lambda: any(f.done() for f in futures), timeout
            )

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Stop the dispatch thread, draining queued sends first.

        Futures still unanswered after the drain fail with
        :class:`TransportError`.  Idempotent; the transport itself is
        *not* stopped (the owner tears it down afterwards).
        """
        with self._cond:
            self._running = False
            self._cond.notify_all()
        self._thread.join(timeout=drain_timeout)
        leftovers: List[_Request] = []
        with self._cond:
            for queue in list(self._pending.values()):
                leftovers.extend(queue)
                queue.clear()
            for queue in list(self._outstanding.values()):
                leftovers.extend(queue)
                queue.clear()
        for request in leftovers:
            if request.future is not None:
                request.future._fail(
                    TransportError("dispatcher stopped before reply")
                )
            self.stats.inc("failed")

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _collect_sends(self) -> List[tuple]:
        """Pop sendable requests (per-worker FIFO, bounded windows)."""
        to_send = []
        with self._cond:
            for worker_id, queue in self._pending.items():
                if worker_id not in self._alive:
                    continue
                outstanding = self._outstanding.setdefault(
                    worker_id, deque()
                )
                while queue:
                    request = queue[0]
                    if (
                        request.reply_expected
                        and len(outstanding) >= self._max_inflight
                    ):
                        break
                    queue.popleft()
                    if request.reply_expected:
                        # Counted as outstanding from this moment, so
                        # the backpressure bound spans send + reply.
                        outstanding.append(request)
                    to_send.append((worker_id, request))
        return to_send

    def _send_one(self, worker_id: int, request: _Request) -> bool:
        stats = self._transport.stats
        sent_before = stats.bytes_sent
        shm_before = stats.shm_bytes
        try:
            self._transport.send(
                worker_id,
                request.frame,
                reply_expected=request.reply_expected,
            )
        except TransportError as exc:
            with self._cond:
                outstanding = self._outstanding.get(worker_id)
                if outstanding and request in outstanding:
                    outstanding.remove(request)
                self._cond.notify_all()
            if request.future is not None:
                request.future._fail(exc)
            self.stats.inc("failed")
            return False
        self.stats.inc("dispatched")
        if request.future is not None:
            request.future.bytes_sent = stats.bytes_sent - sent_before
            request.future.shm_bytes = stats.shm_bytes - shm_before
        else:
            # Fire-and-forget frames free their queue slot on send.
            with self._cond:
                self._cond.notify_all()
        return True

    def _resolve_replies(self, frames: Iterable[tuple]) -> int:
        resolved = 0
        for worker_id, frame in frames:
            with self._cond:
                outstanding = self._outstanding.get(worker_id)
                request = (
                    outstanding.popleft() if outstanding else None
                )
                if request is not None:
                    self._cond.notify_all()
            if request is None:
                # A reply with no matching request: a worker answered
                # a fire-and-forget frame (protocol error surface) or
                # an already-failed request.  Nothing waits for it.
                self.stats.inc("orphans")
                continue
            request.future.bytes_received = len(frame)
            self.stats.inc("completed")
            if self._obs_enabled and request.future.submitted_at:
                self._reply_latency.observe(
                    time.monotonic() - request.future.submitted_at
                )
            request.future._resolve(
                frame if isinstance(frame, bytes) else bytes(frame)
            )
            resolved += 1
        return resolved

    def _sweep_deaths(self) -> None:
        for worker_id in list(self._alive):
            if self._transport.alive(worker_id):
                continue
            with self._cond:
                self._alive.discard(worker_id)
                casualties = list(self._pending.pop(worker_id, ()))
                casualties += list(self._outstanding.pop(worker_id, ()))
                self._cond.notify_all()
            for request in casualties:
                if request.future is not None:
                    request.future._fail(
                        TransportError(f"worker {worker_id} died")
                    )
                self.stats.inc("failed")

    def _run(self) -> None:
        while True:
            to_send = self._collect_sends()
            for worker_id, request in to_send:
                self._send_one(worker_id, request)
            with self._cond:
                has_outstanding = any(
                    queue for queue in self._outstanding.values()
                )
                has_pending = any(
                    queue for queue in self._pending.values()
                )
                if not self._running and not has_pending:
                    break
            if to_send or has_pending:
                frames = self._transport.poll(0)
            elif has_outstanding:
                # Some transports (in-process) poll without blocking;
                # pace the loop so a stalled worker cannot spin it.
                started = time.monotonic()
                frames = self._transport.poll(self._poll_interval)
                if not frames:
                    leftover = (
                        self._poll_interval
                        - (time.monotonic() - started)
                    )
                    if leftover > 0:
                        time.sleep(leftover)
            else:
                frames = self._transport.poll(0)
            resolved = self._resolve_replies(frames)
            self._sweep_deaths()
            if to_send or resolved or has_pending:
                continue
            if not has_outstanding:
                with self._cond:
                    if self._running and not any(
                        queue for queue in self._pending.values()
                    ):
                        self._cond.wait(_IDLE_WAIT_S)
