"""Pluggable coordinator<->worker transports.

A transport moves opaque byte frames between the coordinator and N
workers; everything above it (tasks, summaries, retries) is encoded by
:mod:`repro.distributed.codec`, so the three implementations differ
only in where the worker runs:

* :class:`InProcessTransport` -- the worker runtime runs inline in the
  coordinator process.  Zero infrastructure, fully deterministic, and
  it still exercises the complete encode -> ship -> decode path, so
  it is the reference transport for tests.
* :class:`MultiprocessingTransport` -- one OS process per worker,
  framed over :mod:`multiprocessing` pipes.  The single-host
  production shape: builds scale with cores.
* :class:`TCPTransport` -- workers connect to the coordinator over
  TCP sockets (here: local worker processes dialing 127.0.0.1, but
  the framing and handshake are host-agnostic, so the same wire works
  across machines).
* :class:`SharedMemoryTransport` -- same-host worker processes, but
  large request frames land in :mod:`multiprocessing.shared_memory`
  segments and only a tiny ``(name, length)`` descriptor crosses the
  pipe: shard shipping is one mapped write instead of a pipe copy.

Every transport tallies a :class:`WireStats` (frames/bytes in each
direction, shared-memory bytes moved out-of-band), which is how the
benchmarks account ``bytes_on_wire`` per mode.

Failure model: a worker that dies (process exit, closed pipe, reset
socket) is reported dead by :meth:`BaseTransport.alive`; frames it
never answered are the coordinator's to re-dispatch.  Transports never
retry on their own.

Thread ownership: transports are *not* thread-safe.  Under the async
coordinator every :meth:`BaseTransport.send` / ``poll`` / ``alive``
call is made by the single :class:`~repro.distributed.dispatch.\
AsyncDispatcher` selector thread; callers never touch the transport
directly, they enqueue through ``submit()``.  Teardown order follows
ownership: stop the dispatcher first (it drains and parks its thread),
then ``transport.stop()``.  The dispatcher's bounded per-worker queues
also cap how many unanswered frames sit in a pipe at once, which keeps
the multiprocessing transport clear of the classic
both-directions-full pipe deadlock.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import select
import socket
import struct
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs

_LEN = struct.Struct("<I")
_U8 = struct.Struct("<B")

#: Hard cap on a single frame (guards against a corrupt length header).
MAX_FRAME_BYTES = 1 << 31


class TransportError(RuntimeError):
    """The transport cannot deliver frames (dead worker, closed pipe)."""


class WireStats:
    """Byte/frame counters one transport accumulates over its life.

    ``bytes_sent``/``bytes_received`` count what actually crossed the
    serialized channel (pipe, socket, or inline call); frames routed
    through shared memory count their descriptor there and their
    payload under ``shm_bytes`` -- the whole point of that transport
    is that the payload never crosses the pipe.

    Storage is a :class:`repro.obs.Counter` per field, so the same
    numbers surface in a :class:`~repro.obs.MetricsRegistry` snapshot
    (``wire.*`` namespace, labelled by transport) while the historical
    attribute reads / ``+=`` writes keep working unchanged.  Thread
    safety: all writes come from the single dispatcher selector thread
    (the transport ownership contract above); cross-thread *reads* --
    the dispatcher stamping per-future deltas, benchmarks snapshotting
    -- see each counter atomically.
    """

    _FIELDS = (
        "frames_sent", "bytes_sent", "frames_received", "bytes_received",
        "shm_frames", "shm_bytes",
    )

    __slots__ = tuple("_" + field for field in _FIELDS) + (
        "transport_name", "__weakref__",
    )

    def __init__(self, transport_name: str = "?"):
        self.transport_name = transport_name
        for field in self._FIELDS:
            setattr(self, "_" + field, _obs.Counter())

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict (benchmark records)."""
        return {key: getattr(self, key) for key in self._FIELDS}

    def obs_metrics(self):
        """Registry collector hook: ``wire.<field>{transport=...}``."""
        labels = {"transport": self.transport_name}
        for field in self._FIELDS:
            yield "wire." + field, labels, getattr(self, "_" + field)


def _wire_stat(field: str):
    slot = "_" + field

    def _get(self):
        return getattr(self, slot).value

    def _set(self, value):
        getattr(self, slot).set(value)

    return property(_get, _set, doc=f"Total {field.replace('_', ' ')}.")


for _field in WireStats._FIELDS:
    setattr(WireStats, _field, _wire_stat(_field))
del _field


class BaseTransport:
    """Common surface: start N workers, send/poll frames, track deaths."""

    name = "?"
    #: Whether frames reach workers without a serialized copy (shared
    #: memory).  The coordinator skips array compression on such
    #: transports: raw frames decode as zero-copy views, which beats
    #: decompressing.
    zero_copy = False

    def __init__(self):
        self.stats = WireStats(self.name)
        _obs.get_registry().attach(self.stats)

    def start(self, num_workers: int) -> None:
        """Spawn/attach ``num_workers`` workers (ids ``0..n-1``)."""
        raise NotImplementedError

    def send(
        self, worker_id: int, frame: bytes, *, reply_expected: bool = True
    ) -> None:
        """Ship one frame to a worker; raises :class:`TransportError`
        if the worker is already dead.  ``reply_expected`` is a routing
        hint (shared-memory segment reclamation); most transports
        ignore it."""
        raise NotImplementedError

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        """Collect ``(worker_id, frame)`` replies ready within
        ``timeout`` seconds (0 = non-blocking).  Workers discovered
        dead during the poll are recorded, not raised."""
        raise NotImplementedError

    def alive(self, worker_id: int) -> bool:
        """Whether the worker is still reachable."""
        raise NotImplementedError

    @property
    def num_workers(self) -> int:
        raise NotImplementedError

    def stop(self) -> None:
        """Tear everything down (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
        return False


# ----------------------------------------------------------------------
# In-process
# ----------------------------------------------------------------------

class InProcessTransport(BaseTransport):
    """Workers run inline; frames make a full encode/decode round trip.

    ``handler_factory`` builds one frame handler per worker --
    ``handler(frame) -> reply_frame | None`` -- and defaults to a fresh
    :class:`repro.distributed.worker.WorkerRuntime` each.  Tests inject
    failing handlers here to exercise the coordinator's retry path
    without real processes.
    """

    name = "inprocess"

    def __init__(
        self,
        handler_factory: Optional[Callable[[int], Callable]] = None,
    ):
        super().__init__()
        self._handler_factory = handler_factory
        self._handlers: Dict[int, Callable] = {}
        self._inbox: deque = deque()
        self._dead: set = set()
        self._n = 0

    def _default_factory(self, worker_id: int) -> Callable:
        from repro.distributed.worker import WorkerRuntime

        runtime = WorkerRuntime()

        def handle(frame: bytes) -> Optional[bytes]:
            reply, stop = runtime.handle_frame(frame)
            if stop:
                raise TransportError("worker exited")
            return reply

        return handle

    def start(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        factory = self._handler_factory or self._default_factory
        self._handlers = {k: factory(k) for k in range(num_workers)}
        self._n = num_workers

    def send(
        self, worker_id: int, frame: bytes, *, reply_expected: bool = True
    ) -> None:
        if worker_id in self._dead:
            raise TransportError(f"worker {worker_id} is dead")
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)
        try:
            reply = self._handlers[worker_id](frame)
        except TransportError:
            self._dead.add(worker_id)
            return
        except Exception:
            # A handler that escapes the worker runtime's own error
            # wrapping is the in-process analogue of a crashed process.
            self._dead.add(worker_id)
            return
        if reply is not None:
            self.stats.frames_received += 1
            self.stats.bytes_received += len(reply)
            self._inbox.append((worker_id, reply))

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        ready = list(self._inbox)
        self._inbox.clear()
        return ready

    def alive(self, worker_id: int) -> bool:
        return worker_id < self._n and worker_id not in self._dead

    @property
    def num_workers(self) -> int:
        return self._n

    def stop(self) -> None:
        self._handlers = {}
        self._inbox.clear()


# ----------------------------------------------------------------------
# Multiprocessing pipes
# ----------------------------------------------------------------------

def _pipe_worker_main(conn) -> None:
    """Worker process entry: frames in, frames out, exit on EOF."""
    from repro.distributed.worker import WorkerRuntime

    runtime = WorkerRuntime()
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break
        reply, stop = runtime.handle_frame(frame)
        if reply is not None:
            try:
                conn.send_bytes(reply)
            except (BrokenPipeError, OSError):
                break
        if stop:
            break
    conn.close()


class MultiprocessingTransport(BaseTransport):
    """One process per worker, length-framed over multiprocessing pipes."""

    name = "multiprocessing"
    #: Worker process entry point (subclass hook: the shared-memory
    #: transport swaps in a descriptor-aware loop).
    _worker_target = staticmethod(_pipe_worker_main)

    def __init__(self):
        super().__init__()
        self._conns: Dict[int, multiprocessing.connection.Connection] = {}
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._dead: set = set()
        self._n = 0

    def start(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        ctx = multiprocessing.get_context()
        for worker_id in range(num_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=type(self)._worker_target, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._conns[worker_id] = parent
            self._procs[worker_id] = proc
        self._n = num_workers

    def send(
        self, worker_id: int, frame: bytes, *, reply_expected: bool = True
    ) -> None:
        if not self.alive(worker_id):
            raise TransportError(f"worker {worker_id} is dead")
        try:
            self._conns[worker_id].send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            self._dead.add(worker_id)
            raise TransportError(
                f"worker {worker_id} pipe broken: {exc}"
            ) from exc
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        conns = {
            conn: worker_id
            for worker_id, conn in self._conns.items()
            if worker_id not in self._dead
        }
        if not conns:
            return []
        ready = multiprocessing.connection.wait(
            list(conns), timeout=timeout
        )
        frames: List[Tuple[int, bytes]] = []
        for conn in ready:
            worker_id = conns[conn]
            try:
                frames.append((worker_id, conn.recv_bytes()))
            except (EOFError, OSError):
                self._dead.add(worker_id)
        for _worker_id, frame in frames:
            self.stats.frames_received += 1
            self.stats.bytes_received += len(frame)
        return frames

    def alive(self, worker_id: int) -> bool:
        if worker_id in self._dead:
            return False
        proc = self._procs.get(worker_id)
        if proc is None:
            return False
        if not proc.is_alive():
            # Exited processes may still have undrained pipe data; only
            # declare death once the pipe has nothing more to give.
            conn = self._conns[worker_id]
            if not conn.poll(0):
                self._dead.add(worker_id)
                return False
        return True

    @property
    def num_workers(self) -> int:
        return self._n

    def stop(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._conns = {}
        self._procs = {}


# ----------------------------------------------------------------------
# Shared memory (same-host, zero-copy request payloads)
# ----------------------------------------------------------------------

#: Magic prefix of a shared-memory frame descriptor.  Inline frames
#: start with the codec magics (``RSUM``/``RMSG``), so the two are
#: unambiguous on the same pipe.
SHM_DESC_MAGIC = b"SHMD"


def _attach_segment(name: str):
    """Attach to an existing segment without resource-tracker tracking.

    ``SharedMemory(name=...)`` unconditionally registers the mapping
    with the process's resource tracker (CPython bpo-38119; the
    ``track=`` opt-out only exists from 3.13).  Segments here are
    strictly coordinator-owned, and whether a worker's tracker is its
    own or shared with the coordinator depends on start-method and
    timing -- either way a worker-side registration ends in spurious
    unlinks or double-unregister noise at exit.  Masking ``register``
    for the duration of the attach keeps every tracker out of it.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def pack_shm_descriptor(name: str, length: int) -> bytes:
    """A ``(segment name, frame length)`` descriptor frame."""
    raw = name.encode("ascii")
    return SHM_DESC_MAGIC + _U8.pack(len(raw)) + raw + _LEN.pack(length)


def unpack_shm_descriptor(frame: bytes) -> Optional[Tuple[str, int]]:
    """Parse a descriptor frame; ``None`` if ``frame`` is inline data."""
    if frame[:4] != SHM_DESC_MAGIC:
        return None
    (name_len,) = _U8.unpack_from(frame, 4)
    name = frame[5:5 + name_len].decode("ascii")
    (length,) = _LEN.unpack_from(frame, 5 + name_len)
    return name, length


def _shm_worker_main(conn) -> None:
    """Worker process entry: pipe frames plus shared-memory descriptors.

    Attached segments are cached by name (the coordinator reuses
    segments across requests).  The coordinator owns every segment and
    unlinks them at :meth:`SharedMemoryTransport.stop`; the worker
    attaches *untracked* (:func:`_attach_segment`) so no resource
    tracker -- the worker's own or one shared with the coordinator --
    ever unlinks or double-accounts an owned segment behind the
    owner's back.
    """
    from repro.distributed.worker import WorkerRuntime

    runtime = WorkerRuntime()
    attached: Dict[str, object] = {}
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            descriptor = unpack_shm_descriptor(frame)
            if descriptor is not None:
                name, length = descriptor
                segment = attached.get(name)
                if segment is None:
                    segment = _attach_segment(name)
                    attached[name] = segment
                payload = segment.buf[:length]
                try:
                    # The runtime decodes zero-copy views into the
                    # segment; nothing may retain them past the reply
                    # (the coordinator reuses the segment as soon as
                    # the reply lands), which holds because build
                    # replies carry a freshly encoded summary frame.
                    reply, stop = runtime.handle_frame(payload)
                finally:
                    payload.release()
            else:
                reply, stop = runtime.handle_frame(frame)
            if reply is not None:
                try:
                    conn.send_bytes(reply)
                except (BrokenPipeError, OSError):
                    break
            if stop:
                break
    finally:
        for segment in attached.values():
            try:
                segment.close()
            except (BufferError, OSError):
                pass
        conn.close()


class _Segment:
    """One coordinator-owned shared-memory segment."""

    __slots__ = ("shm", "capacity", "in_use")

    def __init__(self, shm, capacity: int):
        self.shm = shm
        self.capacity = capacity
        self.in_use = False


class SharedMemoryTransport(MultiprocessingTransport):
    """Same-host workers; big request frames travel via shared memory.

    Extends the pipe transport: frames below ``min_shm_bytes`` (and
    all fire-and-forget frames) go inline, larger reply-expecting
    frames are written into a pooled shared-memory segment and only a
    :func:`pack_shm_descriptor` crosses the pipe.  Segment lifecycle
    is strictly coordinator-owned:

    * one pool per worker, power-of-two capacities, reused across
      requests (workers cache their mappings by name);
    * a worker handles frames sequentially, so its oldest outstanding
      reply-expecting request is the one a reply answers -- the FIFO
      ``_awaiting`` queue reclaims that request's segment when the
      reply lands;
    * a dead worker's segments simply stay unreclaimed until
      :meth:`stop`, which closes and unlinks everything -- worker
      death reports exactly as on the plain pipe transport.
    """

    name = "shared-memory"
    zero_copy = True
    _worker_target = staticmethod(_shm_worker_main)

    #: Grow-only pool floor: segments are at least 1 MiB so repeated
    #: mid-size frames never allocate.
    _MIN_SEGMENT_BYTES = 1 << 20

    def __init__(self, *, min_shm_bytes: int = 1 << 16):
        super().__init__()
        self._min_shm_bytes = int(min_shm_bytes)
        self._segments: Dict[int, List[_Segment]] = {}
        self._awaiting: Dict[int, deque] = {}

    def _take_segment(self, worker_id: int, nbytes: int) -> _Segment:
        from multiprocessing import shared_memory

        pool = self._segments.setdefault(worker_id, [])
        for segment in pool:
            if not segment.in_use and segment.capacity >= nbytes:
                segment.in_use = True
                return segment
        capacity = max(
            self._MIN_SEGMENT_BYTES, 1 << max(0, nbytes - 1).bit_length()
        )
        shm = shared_memory.SharedMemory(create=True, size=capacity)
        segment = _Segment(shm, capacity)
        segment.in_use = True
        pool.append(segment)
        return segment

    def send(
        self, worker_id: int, frame: bytes, *, reply_expected: bool = True
    ) -> None:
        if not self.alive(worker_id):
            raise TransportError(f"worker {worker_id} is dead")
        queue = self._awaiting.setdefault(worker_id, deque())
        if not reply_expected or len(frame) < self._min_shm_bytes:
            super().send(worker_id, frame, reply_expected=reply_expected)
            if reply_expected:
                queue.append(None)
            return
        segment = self._take_segment(worker_id, len(frame))
        segment.shm.buf[:len(frame)] = frame
        descriptor = pack_shm_descriptor(segment.shm.name, len(frame))
        try:
            self._conns[worker_id].send_bytes(descriptor)
        except (BrokenPipeError, OSError) as exc:
            segment.in_use = False
            self._dead.add(worker_id)
            raise TransportError(
                f"worker {worker_id} pipe broken: {exc}"
            ) from exc
        queue.append(segment)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(descriptor)
        self.stats.shm_frames += 1
        self.stats.shm_bytes += len(frame)

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        replies = super().poll(timeout)
        for worker_id, _frame in replies:
            queue = self._awaiting.get(worker_id)
            if queue:
                segment = queue.popleft()
                if segment is not None:
                    segment.in_use = False
        return replies

    def stop(self) -> None:
        # Tear the fleet down first: workers drop their mappings on
        # EOF, then the owner unlinks every segment exactly once.
        super().stop()
        for pool in self._segments.values():
            for segment in pool:
                try:
                    segment.shm.close()
                except (BufferError, OSError):
                    pass
                try:
                    segment.shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
        self._segments = {}
        self._awaiting = {}


# ----------------------------------------------------------------------
# TCP sockets
# ----------------------------------------------------------------------

def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from a socket."""
    (length,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {length} bytes exceeds the cap")
    return _read_exact(sock, length)


def write_frame(sock: socket.socket, frame: bytes) -> None:
    """Write one length-prefixed frame to a socket."""
    sock.sendall(_LEN.pack(len(frame)) + frame)


def _tcp_worker_main(host: str, port: int) -> None:
    """Worker process entry: dial the coordinator and serve frames."""
    from repro.distributed.worker import WorkerRuntime

    sock = socket.create_connection((host, port))
    runtime = WorkerRuntime()
    try:
        while True:
            try:
                frame = read_frame(sock)
            except (EOFError, OSError):
                break
            reply, stop = runtime.handle_frame(frame)
            if reply is not None:
                try:
                    write_frame(sock, reply)
                except OSError:
                    break
            if stop:
                break
    finally:
        sock.close()


class TCPTransport(BaseTransport):
    """Workers dial the coordinator over TCP (multi-host-shaped).

    The coordinator listens on ``host:port`` (an ephemeral local port
    by default) and, when ``spawn_local`` is true, launches one local
    worker process per slot that connects back in.  With
    ``spawn_local=False`` it only listens: point real remote workers
    (:func:`serve_worker`) at the advertised address.
    """

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn_local: bool = True,
        accept_timeout: float = 30.0,
    ):
        super().__init__()
        self._host = host
        self._port = port
        self._spawn_local = spawn_local
        self._accept_timeout = accept_timeout
        self._listener: Optional[socket.socket] = None
        self._socks: Dict[int, socket.socket] = {}
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._dead: set = set()
        self._n = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) workers should dial."""
        if self._listener is None:
            raise TransportError("transport not started")
        return self._listener.getsockname()[:2]

    def start(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen(num_workers)
        self._listener.settimeout(self._accept_timeout)
        host, port = self.address
        if self._spawn_local:
            ctx = multiprocessing.get_context()
            for worker_id in range(num_workers):
                proc = ctx.Process(
                    target=_tcp_worker_main, args=(host, port), daemon=True
                )
                proc.start()
                self._procs[worker_id] = proc
        for worker_id in range(num_workers):
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                self.stop()
                raise TransportError(
                    f"worker {worker_id} never connected"
                ) from None
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._socks[worker_id] = sock
        self._n = num_workers

    def send(
        self, worker_id: int, frame: bytes, *, reply_expected: bool = True
    ) -> None:
        if not self.alive(worker_id):
            raise TransportError(f"worker {worker_id} is dead")
        try:
            write_frame(self._socks[worker_id], frame)
        except OSError as exc:
            self._dead.add(worker_id)
            raise TransportError(
                f"worker {worker_id} socket broken: {exc}"
            ) from exc
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame) + _LEN.size

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        socks = {
            sock: worker_id
            for worker_id, sock in self._socks.items()
            if worker_id not in self._dead
        }
        if not socks:
            return []
        ready, _, _ = select.select(list(socks), [], [], timeout)
        frames: List[Tuple[int, bytes]] = []
        for sock in ready:
            worker_id = socks[sock]
            try:
                frames.append((worker_id, read_frame(sock)))
            except (EOFError, OSError, TransportError):
                self._dead.add(worker_id)
        for _worker_id, frame in frames:
            self.stats.frames_received += 1
            self.stats.bytes_received += len(frame) + _LEN.size
        return frames

    def alive(self, worker_id: int) -> bool:
        return (
            worker_id in self._socks and worker_id not in self._dead
        )

    @property
    def num_workers(self) -> int:
        return self._n

    def stop(self) -> None:
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for proc in self._procs.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._socks = {}
        self._procs = {}


def serve_worker(host: str, port: int) -> None:
    """Run one worker against a remote coordinator (blocking).

    The multi-host entry point: start the coordinator with
    ``TCPTransport(host, port, spawn_local=False)`` and run this on
    each worker machine.
    """
    _tcp_worker_main(host, port)


#: Transport name -> factory, the coordinator's lookup table.
TRANSPORTS: Dict[str, Callable[[], BaseTransport]] = {
    "inprocess": InProcessTransport,
    "multiprocessing": MultiprocessingTransport,
    "mp": MultiprocessingTransport,
    "shared-memory": SharedMemoryTransport,
    "shm": SharedMemoryTransport,
    "tcp": TCPTransport,
}


def make_transport(spec) -> BaseTransport:
    """Resolve a transport spec (name or instance) to an instance."""
    if isinstance(spec, BaseTransport):
        return spec
    try:
        return TRANSPORTS[spec]()
    except KeyError:
        raise KeyError(
            f"unknown transport {spec!r}; have {sorted(set(TRANSPORTS))}"
        ) from None
