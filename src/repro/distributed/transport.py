"""Pluggable coordinator<->worker transports.

A transport moves opaque byte frames between the coordinator and N
workers; everything above it (tasks, summaries, retries) is encoded by
:mod:`repro.distributed.codec`, so the three implementations differ
only in where the worker runs:

* :class:`InProcessTransport` -- the worker runtime runs inline in the
  coordinator process.  Zero infrastructure, fully deterministic, and
  it still exercises the complete encode -> ship -> decode path, so
  it is the reference transport for tests.
* :class:`MultiprocessingTransport` -- one OS process per worker,
  framed over :mod:`multiprocessing` pipes.  The single-host
  production shape: builds scale with cores.
* :class:`TCPTransport` -- workers connect to the coordinator over
  TCP sockets (here: local worker processes dialing 127.0.0.1, but
  the framing and handshake are host-agnostic, so the same wire works
  across machines).

Failure model: a worker that dies (process exit, closed pipe, reset
socket) is reported dead by :meth:`BaseTransport.alive`; frames it
never answered are the coordinator's to re-dispatch.  Transports never
retry on their own.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import select
import socket
import struct
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

_LEN = struct.Struct("<I")

#: Hard cap on a single frame (guards against a corrupt length header).
MAX_FRAME_BYTES = 1 << 31


class TransportError(RuntimeError):
    """The transport cannot deliver frames (dead worker, closed pipe)."""


class BaseTransport:
    """Common surface: start N workers, send/poll frames, track deaths."""

    name = "?"

    def start(self, num_workers: int) -> None:
        """Spawn/attach ``num_workers`` workers (ids ``0..n-1``)."""
        raise NotImplementedError

    def send(self, worker_id: int, frame: bytes) -> None:
        """Ship one frame to a worker; raises :class:`TransportError`
        if the worker is already dead."""
        raise NotImplementedError

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        """Collect ``(worker_id, frame)`` replies ready within
        ``timeout`` seconds (0 = non-blocking).  Workers discovered
        dead during the poll are recorded, not raised."""
        raise NotImplementedError

    def alive(self, worker_id: int) -> bool:
        """Whether the worker is still reachable."""
        raise NotImplementedError

    @property
    def num_workers(self) -> int:
        raise NotImplementedError

    def stop(self) -> None:
        """Tear everything down (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
        return False


# ----------------------------------------------------------------------
# In-process
# ----------------------------------------------------------------------

class InProcessTransport(BaseTransport):
    """Workers run inline; frames make a full encode/decode round trip.

    ``handler_factory`` builds one frame handler per worker --
    ``handler(frame) -> reply_frame | None`` -- and defaults to a fresh
    :class:`repro.distributed.worker.WorkerRuntime` each.  Tests inject
    failing handlers here to exercise the coordinator's retry path
    without real processes.
    """

    name = "inprocess"

    def __init__(
        self,
        handler_factory: Optional[Callable[[int], Callable]] = None,
    ):
        self._handler_factory = handler_factory
        self._handlers: Dict[int, Callable] = {}
        self._inbox: deque = deque()
        self._dead: set = set()
        self._n = 0

    def _default_factory(self, worker_id: int) -> Callable:
        from repro.distributed.worker import WorkerRuntime

        runtime = WorkerRuntime()

        def handle(frame: bytes) -> Optional[bytes]:
            reply, stop = runtime.handle_frame(frame)
            if stop:
                raise TransportError("worker exited")
            return reply

        return handle

    def start(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        factory = self._handler_factory or self._default_factory
        self._handlers = {k: factory(k) for k in range(num_workers)}
        self._n = num_workers

    def send(self, worker_id: int, frame: bytes) -> None:
        if worker_id in self._dead:
            raise TransportError(f"worker {worker_id} is dead")
        try:
            reply = self._handlers[worker_id](frame)
        except TransportError:
            self._dead.add(worker_id)
            return
        except Exception:
            # A handler that escapes the worker runtime's own error
            # wrapping is the in-process analogue of a crashed process.
            self._dead.add(worker_id)
            return
        if reply is not None:
            self._inbox.append((worker_id, reply))

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        ready = list(self._inbox)
        self._inbox.clear()
        return ready

    def alive(self, worker_id: int) -> bool:
        return worker_id < self._n and worker_id not in self._dead

    @property
    def num_workers(self) -> int:
        return self._n

    def stop(self) -> None:
        self._handlers = {}
        self._inbox.clear()


# ----------------------------------------------------------------------
# Multiprocessing pipes
# ----------------------------------------------------------------------

def _pipe_worker_main(conn) -> None:
    """Worker process entry: frames in, frames out, exit on EOF."""
    from repro.distributed.worker import WorkerRuntime

    runtime = WorkerRuntime()
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break
        reply, stop = runtime.handle_frame(frame)
        if reply is not None:
            try:
                conn.send_bytes(reply)
            except (BrokenPipeError, OSError):
                break
        if stop:
            break
    conn.close()


class MultiprocessingTransport(BaseTransport):
    """One process per worker, length-framed over multiprocessing pipes."""

    name = "multiprocessing"

    def __init__(self):
        self._conns: Dict[int, multiprocessing.connection.Connection] = {}
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._dead: set = set()
        self._n = 0

    def start(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        ctx = multiprocessing.get_context()
        for worker_id in range(num_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_pipe_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._conns[worker_id] = parent
            self._procs[worker_id] = proc
        self._n = num_workers

    def send(self, worker_id: int, frame: bytes) -> None:
        if not self.alive(worker_id):
            raise TransportError(f"worker {worker_id} is dead")
        try:
            self._conns[worker_id].send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            self._dead.add(worker_id)
            raise TransportError(
                f"worker {worker_id} pipe broken: {exc}"
            ) from exc

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        conns = {
            conn: worker_id
            for worker_id, conn in self._conns.items()
            if worker_id not in self._dead
        }
        if not conns:
            return []
        ready = multiprocessing.connection.wait(
            list(conns), timeout=timeout
        )
        frames: List[Tuple[int, bytes]] = []
        for conn in ready:
            worker_id = conns[conn]
            try:
                frames.append((worker_id, conn.recv_bytes()))
            except (EOFError, OSError):
                self._dead.add(worker_id)
        return frames

    def alive(self, worker_id: int) -> bool:
        if worker_id in self._dead:
            return False
        proc = self._procs.get(worker_id)
        if proc is None:
            return False
        if not proc.is_alive():
            # Exited processes may still have undrained pipe data; only
            # declare death once the pipe has nothing more to give.
            conn = self._conns[worker_id]
            if not conn.poll(0):
                self._dead.add(worker_id)
                return False
        return True

    @property
    def num_workers(self) -> int:
        return self._n

    def stop(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._conns = {}
        self._procs = {}


# ----------------------------------------------------------------------
# TCP sockets
# ----------------------------------------------------------------------

def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from a socket."""
    (length,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {length} bytes exceeds the cap")
    return _read_exact(sock, length)


def write_frame(sock: socket.socket, frame: bytes) -> None:
    """Write one length-prefixed frame to a socket."""
    sock.sendall(_LEN.pack(len(frame)) + frame)


def _tcp_worker_main(host: str, port: int) -> None:
    """Worker process entry: dial the coordinator and serve frames."""
    from repro.distributed.worker import WorkerRuntime

    sock = socket.create_connection((host, port))
    runtime = WorkerRuntime()
    try:
        while True:
            try:
                frame = read_frame(sock)
            except (EOFError, OSError):
                break
            reply, stop = runtime.handle_frame(frame)
            if reply is not None:
                try:
                    write_frame(sock, reply)
                except OSError:
                    break
            if stop:
                break
    finally:
        sock.close()


class TCPTransport(BaseTransport):
    """Workers dial the coordinator over TCP (multi-host-shaped).

    The coordinator listens on ``host:port`` (an ephemeral local port
    by default) and, when ``spawn_local`` is true, launches one local
    worker process per slot that connects back in.  With
    ``spawn_local=False`` it only listens: point real remote workers
    (:func:`serve_worker`) at the advertised address.
    """

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn_local: bool = True,
        accept_timeout: float = 30.0,
    ):
        self._host = host
        self._port = port
        self._spawn_local = spawn_local
        self._accept_timeout = accept_timeout
        self._listener: Optional[socket.socket] = None
        self._socks: Dict[int, socket.socket] = {}
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._dead: set = set()
        self._n = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) workers should dial."""
        if self._listener is None:
            raise TransportError("transport not started")
        return self._listener.getsockname()[:2]

    def start(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen(num_workers)
        self._listener.settimeout(self._accept_timeout)
        host, port = self.address
        if self._spawn_local:
            ctx = multiprocessing.get_context()
            for worker_id in range(num_workers):
                proc = ctx.Process(
                    target=_tcp_worker_main, args=(host, port), daemon=True
                )
                proc.start()
                self._procs[worker_id] = proc
        for worker_id in range(num_workers):
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                self.stop()
                raise TransportError(
                    f"worker {worker_id} never connected"
                ) from None
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._socks[worker_id] = sock
        self._n = num_workers

    def send(self, worker_id: int, frame: bytes) -> None:
        if not self.alive(worker_id):
            raise TransportError(f"worker {worker_id} is dead")
        try:
            write_frame(self._socks[worker_id], frame)
        except OSError as exc:
            self._dead.add(worker_id)
            raise TransportError(
                f"worker {worker_id} socket broken: {exc}"
            ) from exc

    def poll(self, timeout: Optional[float]) -> List[Tuple[int, bytes]]:
        socks = {
            sock: worker_id
            for worker_id, sock in self._socks.items()
            if worker_id not in self._dead
        }
        if not socks:
            return []
        ready, _, _ = select.select(list(socks), [], [], timeout)
        frames: List[Tuple[int, bytes]] = []
        for sock in ready:
            worker_id = socks[sock]
            try:
                frames.append((worker_id, read_frame(sock)))
            except (EOFError, OSError, TransportError):
                self._dead.add(worker_id)
        return frames

    def alive(self, worker_id: int) -> bool:
        return (
            worker_id in self._socks and worker_id not in self._dead
        )

    @property
    def num_workers(self) -> int:
        return self._n

    def stop(self) -> None:
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for proc in self._procs.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._socks = {}
        self._procs = {}


def serve_worker(host: str, port: int) -> None:
    """Run one worker against a remote coordinator (blocking).

    The multi-host entry point: start the coordinator with
    ``TCPTransport(host, port, spawn_local=False)`` and run this on
    each worker machine.
    """
    _tcp_worker_main(host, port)


#: Transport name -> factory, the coordinator's lookup table.
TRANSPORTS: Dict[str, Callable[[], BaseTransport]] = {
    "inprocess": InProcessTransport,
    "multiprocessing": MultiprocessingTransport,
    "mp": MultiprocessingTransport,
    "tcp": TCPTransport,
}


def make_transport(spec) -> BaseTransport:
    """Resolve a transport spec (name or instance) to an instance."""
    if isinstance(spec, BaseTransport):
        return spec
    try:
        return TRANSPORTS[spec]()
    except KeyError:
        raise KeyError(
            f"unknown transport {spec!r}; have {sorted(set(TRANSPORTS))}"
        ) from None
