"""The worker side of the distributed build/ingest protocol.

A worker is a stateful frame handler: the coordinator ships it control
messages (:func:`repro.distributed.codec.encode_message`) and it
answers with result frames.  The same runtime serves every transport
-- in-process, pipe, socket -- because transports only move bytes.

Message protocol (all fields codec primitives):

* ``build``: one batch shard build.  Carries the method name, summary
  size, per-shard seed, the shard's rows, and the domain spec; replies
  ``result`` with the built summary as a codec frame.  Failures reply
  ``result`` with ``ok=False`` and the error text -- the coordinator
  decides whether to retry elsewhere.
* ``open_stream`` / ``ingest`` / ``snapshot``: the streaming path.  A
  landmark stream holds one incremental summary per method (exactly
  the stream engine's pane machinery); a stream opened with a
  ``window`` spec holds a full :class:`~repro.stream.engine.
  StreamEngine`, so tumbling/sliding panes seal at the same event-time
  boundaries they would in process.  ``ingest`` absorbs a micro-batch
  slice (fire-and-forget, no reply, timestamps ride along),
  ``snapshot`` freezes and ships every method's summary frame
  upstream.
* ``checkpoint`` -> ``checkpoint_state``: ship the stream's *live*
  state (serialized via :mod:`repro.durable`) so the coordinator can
  persist it; ``restore_stream`` rebuilds a stream from that state on
  a fresh worker -- the crash-recovery pair.
* ``ping`` -> ``pong``: health probe.
* ``shutdown``: clean exit.  ``exit``: abrupt exit without a reply
  (the crash-injection hook used by the retry tests).
"""

from __future__ import annotations

import traceback
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.types import Dataset
from repro.distributed import codec
from repro.engine import registry
from repro.stream.incremental import derive_seed, incremental_summary


def _writable(value):
    """A writable copy of a zero-copy decoded array (pass-through else)."""
    arr = np.asarray(value)
    return arr if arr.flags.writeable else arr.copy()


class WorkerRuntime:
    """Per-worker state machine: handles one decoded message at a time."""

    def __init__(self):
        #: stream id -> {"incs": {method: IncrementalSummary},
        #:               "domain": ProductDomain, "items": int}
        self._streams: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def handle_frame(self, frame) -> Tuple[Optional[bytes], bool]:
        """Handle one message frame; returns ``(reply_frame, stop)``.

        ``frame`` may be ``bytes`` or a ``memoryview`` (shared-memory
        transports hand the mapped segment over directly).  Decoding is
        zero-copy: raw arrays are read-only views into the frame, which
        build tasks consume in place; handlers that retain state past
        this call (``ingest``) copy what they keep.

        Undecodable frames produce an ``error`` reply rather than
        killing the worker: a protocol mismatch should surface at the
        coordinator, not as a silent death.
        """
        try:
            message = codec.decode_message(frame, copy=False)
        except codec.CodecError as exc:
            reply = {"type": "error", "error": f"bad frame: {exc}"}
            return codec.encode_message(reply), False
        reply, stop = self.handle(message)
        encoded = codec.encode_message(reply) if reply is not None else None
        return encoded, stop

    def handle(self, message: dict) -> Tuple[Optional[dict], bool]:
        """Handle one decoded message; returns ``(reply, stop)``."""
        kind = message.get("type")
        if kind == "build":
            return self._handle_build(message), False
        if kind == "open_stream":
            return self._handle_open_stream(message), False
        if kind == "ingest":
            return self._handle_ingest(message), False
        if kind == "snapshot":
            return self._handle_snapshot(message), False
        if kind == "checkpoint":
            return self._handle_checkpoint(message), False
        if kind == "restore_stream":
            return self._handle_restore_stream(message), False
        if kind == "ping":
            return {"type": "pong"}, False
        if kind == "shutdown":
            return None, True
        if kind == "exit":  # crash simulation: vanish without a reply
            return None, True
        return {"type": "error", "error": f"unknown message {kind!r}"}, False

    # ------------------------------------------------------------------
    # Batch builds
    # ------------------------------------------------------------------
    def _handle_build(self, message: dict) -> dict:
        task_id = message.get("task_id", -1)
        try:
            domain = codec.decode_domain(message["domain"])
            shard = Dataset(
                coords=message["coords"],
                weights=message["weights"],
                domain=domain,
            )
            rng = np.random.default_rng(int(message["seed"]))
            summary = registry.build(
                message["method"], shard, int(message["size"]), rng
            )
            return {
                "type": "result",
                "task_id": task_id,
                "ok": True,
                "summary": codec.to_bytes(summary),
                "size": int(getattr(summary, "size", 0)),
            }
        except Exception:
            return {
                "type": "result",
                "task_id": task_id,
                "ok": False,
                "error": traceback.format_exc(limit=8),
            }

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def _open_state(self, message: dict) -> dict:
        """Build a stream's state dict from an open/restore message.

        A ``window`` spec upgrades the stream from the flat landmark
        incs to a full :class:`~repro.stream.engine.StreamEngine`, so
        pane boundaries on the worker match the in-process engine's.
        """
        domain = codec.decode_domain(message["domain"])
        seed = int(message["seed"])
        stale = float(message.get("stale_fraction", 0.0))
        window_spec = message.get("window")
        if window_spec is not None:
            from repro.stream.engine import StreamEngine, Window

            engine = StreamEngine(
                domain,
                list(message["methods"]),
                int(message["size"]),
                window=Window(
                    window_spec["kind"],
                    float(window_spec["width"]),
                    float(window_spec["pane"]),
                ),
                seed=seed,
                stale_fraction=stale,
            )
            return {
                "engine": engine,
                "incs": None,
                "domain": domain,
                "items": 0,
                "error": None,
            }
        incs = {
            name: incremental_summary(
                name,
                domain,
                int(message["size"]),
                seed=derive_seed(seed, name),
                stale_fraction=stale,
            )
            for name in message["methods"]
        }
        return {
            "engine": None,
            "incs": incs,
            "domain": domain,
            "items": 0,
            "error": None,
        }

    def _handle_open_stream(self, message: dict) -> dict:
        try:
            stream_id = message["stream"]
            self._streams[stream_id] = self._open_state(message)
            return {"type": "opened", "stream": stream_id, "ok": True}
        except Exception:
            return {
                "type": "opened",
                "stream": message.get("stream"),
                "ok": False,
                "error": traceback.format_exc(limit=8),
            }

    def _handle_ingest(self, message: dict) -> Optional[dict]:
        # Fire-and-forget: ingest errors are recorded, not raised, and
        # surface as a failed reply at the next snapshot -- a bad
        # batch must not kill the worker and silently lose its slice.
        stream = self._streams.get(message.get("stream"))
        if stream is None:
            return None
        try:
            # Ingested batches outlive this frame (incremental
            # summaries may retain slices), so detach them from the
            # zero-copy decode before updating.
            coords = _writable(message["coords"])
            weights = _writable(message["weights"])
            engine = stream["engine"]
            if engine is not None:
                from repro.stream.types import MicroBatch

                timestamp = message.get("timestamp")
                stamps = message.get("timestamps")
                engine.process(MicroBatch(
                    coords,
                    weights,
                    None if timestamp is None else float(timestamp),
                    None if stamps is None else _writable(stamps),
                ))
                stream["items"] = engine.items_seen
            else:
                for inc in stream["incs"].values():
                    inc.update(coords, weights)
                stream["items"] += int(np.asarray(weights).shape[0])
        except Exception:
            stream["error"] = traceback.format_exc(limit=8)
        return None

    def _handle_snapshot(self, message: dict) -> dict:
        request_id = message.get("request_id", -1)
        stream_id = message.get("stream")
        stream = self._streams.get(stream_id)
        if stream is None:
            return {
                "type": "snapshots",
                "stream": stream_id,
                "request_id": request_id,
                "ok": False,
                "error": f"unknown stream {stream_id!r}",
            }
        if stream["error"] is not None:
            return {
                "type": "snapshots",
                "stream": stream_id,
                "request_id": request_id,
                "ok": False,
                "error": f"ingest failed earlier:\n{stream['error']}",
            }
        try:
            engine = stream["engine"]
            if engine is not None:
                summaries = {
                    name: codec.to_bytes(engine.snapshot(name))
                    for name in engine.methods
                }
            else:
                summaries = {
                    name: codec.to_bytes(inc.snapshot())
                    for name, inc in stream["incs"].items()
                }
            return {
                "type": "snapshots",
                "stream": stream_id,
                "request_id": request_id,
                "ok": True,
                "summaries": summaries,
                "items": stream["items"],
            }
        except Exception:
            return {
                "type": "snapshots",
                "stream": stream_id,
                "request_id": request_id,
                "ok": False,
                "error": traceback.format_exc(limit=8),
            }

    # ------------------------------------------------------------------
    # Crash recovery: checkpoint shipping + state restoration
    # ------------------------------------------------------------------
    def _handle_checkpoint(self, message: dict) -> dict:
        request_id = message.get("request_id", -1)
        stream_id = message.get("stream")
        stream = self._streams.get(stream_id)
        if stream is None or stream["error"] is not None:
            error = (
                f"unknown stream {stream_id!r}" if stream is None
                else f"ingest failed earlier:\n{stream['error']}"
            )
            return {
                "type": "checkpoint_state",
                "stream": stream_id,
                "request_id": request_id,
                "ok": False,
                "error": error,
            }
        try:
            from repro.durable import encode_incremental

            engine = stream["engine"]
            if engine is not None:
                state = {
                    "kind": "engine",
                    "payload": engine._checkpoint_payload(),
                }
            else:
                state = {
                    "kind": "landmark",
                    "incs": {
                        name: encode_incremental(inc)
                        for name, inc in stream["incs"].items()
                    },
                }
            return {
                "type": "checkpoint_state",
                "stream": stream_id,
                "request_id": request_id,
                "ok": True,
                "state": state,
                "items": stream["items"],
            }
        except Exception:
            return {
                "type": "checkpoint_state",
                "stream": stream_id,
                "request_id": request_id,
                "ok": False,
                "error": traceback.format_exc(limit=8),
            }

    def _handle_restore_stream(self, message: dict) -> dict:
        """Open a stream pre-loaded with checkpointed live state."""
        try:
            stream_id = message["stream"]
            entry = self._open_state(message)
            state = message["state"]
            if state["kind"] == "engine":
                entry["engine"]._restore_from_payload(state["payload"])
                entry["items"] = entry["engine"].items_seen
            else:
                from repro.durable import decode_incremental

                domain = entry["domain"]
                seed = int(message["seed"])
                entry["incs"] = {
                    name: decode_incremental(
                        spec,
                        name=name,
                        domain=domain,
                        size=int(message["size"]),
                        seed=derive_seed(seed, name),
                        stale_fraction=float(
                            message.get("stale_fraction", 0.0)
                        ),
                    )
                    for name, spec in state["incs"].items()
                }
                entry["items"] = int(message.get("items", 0))
            self._streams[stream_id] = entry
            return {"type": "restored", "stream": stream_id, "ok": True}
        except Exception:
            return {
                "type": "restored",
                "stream": message.get("stream"),
                "ok": False,
                "error": traceback.format_exc(limit=8),
            }
