"""Distributed build/serve subsystem.

Four layers turn the in-process engine into a multi-worker system:

* :mod:`repro.distributed.codec` -- versioned, compact wire codecs:
  bit-exact summary frames (via the ``to_state``/``from_state`` hooks
  registered next to each summary class) plus the control-message
  format.
* :mod:`repro.distributed.worker` -- the stateful worker runtime:
  builds shard summaries (batch) or ingests micro-batch slices
  (streaming) and ships serialized summaries upstream.
* :mod:`repro.distributed.coordinator` -- schedules workers over
  pluggable transports (in-process, multiprocessing pipes, shared
  memory, TCP sockets), retries/reassigns failed tasks, and folds
  what comes back with the mergeable-summary protocol:
  :func:`distributed_build` for batch, :class:`DistributedIngest` for
  streams.
* :mod:`repro.distributed.frontend` -- :class:`QueryFrontend`: serves
  range-query batteries against the latest folded state with an LRU
  snapshot cache and per-snapshot sort-order reuse.

Two serving-tier layers ride on those (see ``SERVING.md``):

* :mod:`repro.distributed.dispatch` -- :class:`AsyncDispatcher`: the
  coordinator's non-blocking dispatch thread with bounded per-worker
  queues, explicit :class:`Backpressure`, and per-request wire
  accounting (every synchronous coordinator call is a thin wrapper
  over it).
* :class:`ServingFrontend` -- the long-lived multi-tenant query
  service: concurrent ``submit()``, cross-supplier fan-out,
  deadline + size flushing, admission control with shed-on-overload.
"""

from repro.distributed.codec import (
    CodecError,
    TruncatedPayloadError,
    VersionMismatchError,
    WIRE_VERSION,
    decode_message,
    encode_message,
    from_bytes,
    to_bytes,
)
from repro.distributed.coordinator import (
    Coordinator,
    DistributedBuild,
    DistributedError,
    DistributedIngest,
    distributed_build,
)
from repro.distributed.dispatch import (
    AsyncDispatcher,
    Backpressure,
    DispatchStats,
    ReplyFuture,
)
from repro.distributed.frontend import (
    FrontendStats,
    OverloadError,
    QueryFrontend,
    ServedAnswer,
    ServingFrontend,
)
from repro.distributed.transport import (
    InProcessTransport,
    MultiprocessingTransport,
    SharedMemoryTransport,
    TCPTransport,
    TransportError,
    WireStats,
    make_transport,
    serve_worker,
)
from repro.distributed.worker import WorkerRuntime

__all__ = [
    "AsyncDispatcher",
    "Backpressure",
    "CodecError",
    "Coordinator",
    "DispatchStats",
    "DistributedBuild",
    "DistributedError",
    "DistributedIngest",
    "FrontendStats",
    "InProcessTransport",
    "MultiprocessingTransport",
    "OverloadError",
    "QueryFrontend",
    "ReplyFuture",
    "ServedAnswer",
    "ServingFrontend",
    "SharedMemoryTransport",
    "TCPTransport",
    "TransportError",
    "TruncatedPayloadError",
    "VersionMismatchError",
    "WIRE_VERSION",
    "WireStats",
    "WorkerRuntime",
    "decode_message",
    "distributed_build",
    "encode_message",
    "from_bytes",
    "make_transport",
    "serve_worker",
    "to_bytes",
]
