"""Query-serving frontend over a (possibly live) summary supplier.

:class:`QueryFrontend` sits between query clients and any *snapshot
supplier* -- a :class:`~repro.distributed.coordinator.DistributedIngest`
fleet, a local :class:`~repro.stream.engine.StreamEngine`, or anything
else exposing ``snapshot(method)`` plus a version counter.  It answers
large range-query batteries against the latest folded state while
ingest continues, with two layers of reuse:

* an **LRU snapshot cache** keyed by ``(method, supplier version)``:
  while the supplier's state is unchanged, repeated batteries skip the
  fold/collect entirely (for a distributed supplier that is the whole
  worker round trip);
* **sort-order reuse** through the cached summary objects themselves:
  a retained :class:`~repro.core.estimator.SampleSummary` /
  :class:`~repro.summaries.exact.ExactSummary` carries its own
  :class:`~repro.structures.ranges.SortOrderCache`, so consecutive
  batteries at one version pay the per-axis sorts once and then only
  the sweep (the PR-2 caching machinery, now serving distributed
  state).

Keeping a handful of slots (not one) matters under interleaved
multi-method serving: method A's battery must not evict method B's
freshly sorted snapshot.

Snapshots arriving from a distributed supplier are decoded zero-copy
(``codec.from_bytes(..., copy=False)`` in
:meth:`~repro.distributed.coordinator.DistributedIngest._collect`):
the cached summary's raw arrays are read-only views into the received
frame, which is safe here precisely because the cache never mutates a
snapshot -- it only queries it.

**Micro-batching.**  Query traffic usually arrives one query at a
time; answering each alone forfeits the batched kernels.  With
``batch_size > 1`` the frontend collects submitted queries
(:meth:`QueryFrontend.submit` returns a :class:`PendingAnswer`
immediately) and answers each method's accumulated battery with *one*
``query_many`` kernel call per flush -- amortizing the query-plan
compilation, the snapshot lookup and the cached sort orders across the
batch.  A flush happens automatically when ``batch_size`` queries are
pending, explicitly via :meth:`QueryFrontend.flush`, or lazily the
first time a pending answer is read.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.structures.ranges import Box, QueryPlan, compile_query_plan


def _batch_bucket(size: int) -> int:
    """Power-of-two ceiling bucket for the batch-size histogram."""
    return 1 << max(0, size - 1).bit_length() if size > 1 else size


class FrontendStats:
    """Cache/batch effectiveness counters (monitoring surface).

    ``batch_hist`` histograms flush sizes into power-of-two buckets
    (bucket 8 counts flushes of 5..8 queries), so the telemetry stays
    bounded no matter how the batch knob is tuned.  ``shed`` counts
    submissions refused by admission control (always 0 for the plain
    :class:`QueryFrontend`, which has no bounded queue).

    Thread-safety contract: under a :class:`ServingFrontend` these
    counters are written by tenant threads (``submitted``/``shed``)
    *and* the flusher thread (``flushes``, the batch histogram), so a
    bare ``+= 1`` would be a racy read-modify-write.  Every counter is
    backed by a :class:`repro.obs.Counter` sharing one lock, mutated
    through :meth:`inc` / :meth:`record_batch`; the dataclass-era
    attribute reads and ``as_dict()`` shape are unchanged.  The same
    counters surface in a metrics registry as ``serving.<field>``
    (labelled by ``scope``) via :meth:`obs_metrics`.
    """

    _FIELDS = (
        "hits", "misses", "evictions", "batteries", "queries",
        "submitted", "flushes", "shed",
    )

    __slots__ = tuple("_" + name for name in _FIELDS) + (
        "_lock", "batch_hist", "scope", "__weakref__",
    )

    def __init__(self, scope: str = "frontend"):
        self._lock = threading.Lock()
        self.scope = scope
        self.batch_hist: Dict[int, int] = {}
        for name in self._FIELDS:
            setattr(self, "_" + name, _obs.Counter(self._lock))

    def inc(self, name: str, n: int = 1) -> None:
        """Atomically bump one counter (safe from any thread)."""
        getattr(self, "_" + name).inc(n)

    def record_batch(self, size: int) -> None:
        bucket = _batch_bucket(size)
        with self._lock:
            self.batch_hist[bucket] = self.batch_hist.get(bucket, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            name: getattr(self, "_" + name).value for name in self._FIELDS
        }
        with self._lock:
            out["batch_hist"] = dict(sorted(self.batch_hist.items()))
        return out

    def obs_metrics(self):
        """Registry collector hook: ``serving.<field>{scope=...}``."""
        labels = {"scope": self.scope}
        for name in self._FIELDS:
            yield "serving." + name, labels, getattr(self, "_" + name)


def _frontend_stat(name: str):
    slot = "_" + name

    def _get(self):
        return getattr(self, slot).value

    def _set(self, value):
        getattr(self, slot).set(value)

    return property(_get, _set, doc=f"Total {name}.")


for _name in FrontendStats._FIELDS:
    setattr(FrontendStats, _name, _frontend_stat(_name))
del _name


class PendingAnswer:
    """Handle for a micro-batched query (resolved at the next flush)."""

    __slots__ = ("_frontend", "_value", "_error")

    def __init__(self, frontend: "QueryFrontend"):
        self._frontend = frontend
        self._value: Optional[float] = None
        self._error: Optional[BaseException] = None

    @property
    def ready(self) -> bool:
        """Whether the answer (or its failure) has been computed."""
        return self._value is not None or self._error is not None

    def result(self) -> float:
        """The answer, flushing the frontend's pending batch if needed.

        Re-raises the kernel's exception when this query's flush group
        failed (e.g. a dimensionality mismatch).
        """
        if not self.ready:
            try:
                self._frontend.flush()
            except Exception:
                pass  # the failure is recorded on the affected handles
        if self._error is not None:
            raise self._error
        if self._value is None:  # pragma: no cover - internal invariant
            raise RuntimeError("flush did not resolve this query")
        return self._value


def _supplier_version(supplier) -> int:
    """The supplier's state version (stream engines count batches)."""
    version = getattr(supplier, "version", None)
    if version is None:
        version = getattr(supplier, "batches_seen", None)
    if version is None:
        raise TypeError(
            f"{type(supplier).__name__} exposes neither .version nor "
            ".batches_seen; cannot key the snapshot cache"
        )
    return int(version)


class QueryFrontend:
    """LRU-cached range-query serving over a snapshot supplier.

    Parameters
    ----------
    supplier:
        Object with ``snapshot(method) -> summary`` and a ``version``
        (or ``batches_seen``) counter that changes whenever ingested
        state changes.
    slots:
        Maximum ``(method, version)`` snapshot entries retained.
    batch_size:
        Micro-batching knob: :meth:`submit` collects up to this many
        queries before answering them all with one kernel call per
        method.  The default of 1 answers every submission
        immediately (one-at-a-time serving).
    """

    def __init__(self, supplier, *, slots: int = 8, batch_size: int = 1):
        if slots < 1:
            raise ValueError("need at least one cache slot")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self._supplier = supplier
        self._slots = int(slots)
        self._batch_size = int(batch_size)
        self._pending: List[Tuple[str, object, PendingAnswer]] = []
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self.stats = FrontendStats()
        _obs.get_registry().attach(self.stats)

    # ------------------------------------------------------------------
    # Snapshot cache
    # ------------------------------------------------------------------
    def snapshot(self, method: str):
        """The latest folded summary for ``method`` (cached per version)."""
        key = (method, _supplier_version(self._supplier))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.inc("hits")
            return cached
        self.stats.inc("misses")
        summary = self._supplier.snapshot(method)
        self._cache[key] = summary
        while len(self._cache) > self._slots:
            self._cache.popitem(last=False)
            self.stats.inc("evictions")
        return summary

    def invalidate(self) -> None:
        """Drop every cached snapshot (e.g. after supplier reset)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, method: str, query) -> float:
        """One range-sum estimate against the latest state."""
        snap = self.snapshot(method)
        self.stats.inc("queries")
        if isinstance(query, Box):
            return float(snap.query(query))
        return float(snap.query_multi(query))

    def query_many(self, method: str, queries: Sequence) -> List[float]:
        """A whole battery against the latest state (vectorized path).

        Accepts a raw battery or a pre-compiled
        :class:`~repro.structures.ranges.QueryPlan` (the plan passes
        straight through to the summary's kernel).
        """
        queries = (
            queries if isinstance(queries, QueryPlan) else list(queries)
        )
        snap = self.snapshot(method)
        self.stats.inc("batteries")
        self.stats.inc("queries", len(queries))
        return list(snap.query_many(queries))

    def serve(
        self,
        queries: Sequence,
        methods: Optional[Sequence[str]] = None,
    ) -> Dict[str, List[float]]:
        """One battery across several methods (dashboard shape).

        The battery is compiled into one shared query plan, so the
        bounds stacking is paid once rather than once per method.
        """
        plan = compile_query_plan(queries)
        if methods is None:
            methods = getattr(self._supplier, "methods", None)
            if methods is None:
                raise ValueError(
                    "supplier does not list methods; pass methods="
                )
        return {
            method: self.query_many(method, plan) for method in methods
        }

    # ------------------------------------------------------------------
    # Micro-batched serving
    # ------------------------------------------------------------------
    def submit(self, method: str, query) -> PendingAnswer:
        """Enqueue one query for micro-batched answering.

        Returns a :class:`PendingAnswer` immediately; the answer is
        computed when ``batch_size`` queries are pending (automatic
        flush), on an explicit :meth:`flush`, or lazily when the
        handle's :meth:`~PendingAnswer.result` is first read.  Answers
        match one-at-a-time :meth:`query` calls against the same
        supplier version up to the batched kernels' floating-point
        summation order (<= 1e-9 relative; bit-identical for kernels
        that share the scalar path's float semantics) -- micro-batching
        changes the kernel granularity, not the estimator.
        """
        handle = PendingAnswer(self)
        self._pending.append((method, query, handle))
        self.stats.inc("submitted")
        if len(self._pending) >= self._batch_size:
            try:
                self.flush()
            except Exception:
                # A neighboring group's kernel failure is recorded on
                # that group's handles (their result() re-raises it);
                # this caller still gets its own handle back.
                pass
        return handle

    def flush(self) -> int:
        """Answer every pending query with one kernel call per method.

        Returns the number of queries resolved.  Pending queries are
        grouped by method (submission order preserved within a group)
        and each group is answered by a single ``query_many`` against
        the method's cached snapshot.  When a group's kernel call
        fails, the group falls back to per-query answering so one
        malformed query cannot poison its co-batched neighbors: only
        the actually-failing queries carry the error (their
        ``result()`` re-raises it).  The first such failure is then
        re-raised here; auto-flushes from :meth:`submit` swallow it.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        by_method: "OrderedDict[str, List[Tuple[object, PendingAnswer]]]" = (
            OrderedDict()
        )
        for method, query, handle in pending:
            by_method.setdefault(method, []).append((query, handle))
        first_error: Optional[Exception] = None
        for method, entries in by_method.items():
            try:
                answers = self.query_many(method, [q for q, _h in entries])
            except Exception:
                # Fault isolation: answer the group one query at a
                # time (still through the batched kernel, so the
                # validation semantics stay identical), pinning errors
                # only on the queries that fail.
                for query, handle in entries:
                    try:
                        handle._value = float(
                            self.query_many(method, [query])[0]
                        )
                    except Exception as error:
                        handle._error = error
                        if first_error is None:
                            first_error = error
                continue
            for (_query, handle), answer in zip(entries, answers):
                handle._value = float(answer)
        self.stats.inc("flushes")
        self.stats.record_batch(len(pending))
        if first_error is not None:
            raise first_error
        return len(pending)


# ----------------------------------------------------------------------
# Long-lived serving: concurrent submit, deadline flush, admission control
# ----------------------------------------------------------------------

class OverloadError(RuntimeError):
    """Admission control refused a submission (queue full / tenant cap)."""


class ServedAnswer:
    """Thread-safe handle for one query submitted to a :class:`ServingFrontend`.

    Resolved by the frontend's flusher thread; ``done_at`` is stamped
    (``time.monotonic()``) the moment the answer lands, so open-loop
    harnesses can measure service completion without depending on when
    the waiting thread gets scheduled again.
    """

    __slots__ = ("_cond", "_value", "_error", "tenant", "done_at")

    def __init__(self, cond: threading.Condition, tenant: str):
        self._cond = cond
        self._value: Optional[float] = None
        self._error: Optional[BaseException] = None
        self.tenant = tenant
        self.done_at: Optional[float] = None

    def done(self) -> bool:
        return self._value is not None or self._error is not None

    def result(self, timeout: Optional[float] = None) -> float:
        """Wait for the flushed answer (re-raises its kernel error)."""
        with self._cond:
            if not self._cond.wait_for(self.done, timeout):
                raise TimeoutError(
                    f"no answer within {timeout}s (tenant {self.tenant!r})"
                )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    # Flusher-thread side ----------------------------------------------
    def _resolve(self, value: float) -> None:
        with self._cond:
            self._value = float(value)
            self.done_at = time.monotonic()
            self._cond.notify_all()

    def _fail(self, error: BaseException) -> None:
        with self._cond:
            self._error = error
            self.done_at = time.monotonic()
            self._cond.notify_all()


class _QueueEntry:
    __slots__ = ("method", "query", "answer", "enqueued_at")

    def __init__(self, method, query, answer, enqueued_at):
        self.method = method
        self.query = query
        self.answer = answer
        self.enqueued_at = enqueued_at


class ServingFrontend:
    """Long-lived multi-tenant serving over one or more snapshot suppliers.

    Where :class:`QueryFrontend` micro-batches within a single caller,
    this is the *service* shape: many tenants call :meth:`submit`
    concurrently from their own threads, and one background flusher
    thread answers the accumulated cross-tenant batch with the batched
    kernels -- so the amortization that PR 5 demonstrated closed-loop
    becomes reachable under live concurrent traffic.

    * **Cross-supplier fan-out**: with several suppliers the battery
      is compiled once, answered by every supplier's cached snapshot,
      and the per-query estimates are summed -- valid because the
      range-sum estimators are additive over disjoint data slices
      (each supplier covering its own shard of the stream).
    * **Deadline + size flush**: a batch is flushed when it reaches
      ``batch_size`` queries or when its oldest entry has waited
      ``max_delay_ms`` -- bounding tail latency under light load while
      still amortizing under heavy load.
    * **Admission control**: at most ``max_pending`` queries may be
      queued; beyond that :meth:`submit` sheds with
      :class:`OverloadError` (open-loop overload must shed, not build
      an unbounded queue).  Per-tenant fairness caps any one tenant at
      ``max(1, int(max_pending * tenant_share))`` pending queries, so
      a flooding tenant sheds while the others keep being admitted.

    Each supplier gets its own inner :class:`QueryFrontend` (snapshot
    LRU + sort-order reuse); only the flusher thread touches them, so
    they need no locking of their own.

    **Per-tenant accounting** is always on: every tenant gets a
    served/shed counter pair and a power-of-two log-bucket latency
    histogram (enqueue -> answer-resolved, measured from the stamps
    the open-loop harness already relies on), surfaced through
    ``stats()["tenants"]`` and -- labelled ``tenant=...`` -- through
    any attached metrics registry.  Latencies are recorded once per
    flush via the histogram's vectorized ``observe_many``, so the
    accounting costs per-batch, not per-query, work.

    ``registry`` (default: the process-global one) additionally gates
    the pay-for-what-you-use extras: flush spans, the
    ``serving.batch_size`` histogram and the live queue-depth gauge.
    """

    def __init__(
        self,
        suppliers,
        *,
        slots: int = 8,
        batch_size: int = 64,
        max_delay_ms: float = 2.0,
        max_pending: int = 1024,
        tenant_share: float = 0.25,
        start: bool = True,
        registry=None,
    ):
        if not isinstance(suppliers, (list, tuple)):
            suppliers = [suppliers]
        if not suppliers:
            raise ValueError("need at least one supplier")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not (0.0 < tenant_share <= 1.0):
            raise ValueError("tenant_share must be in (0, 1]")
        self._backends = [
            QueryFrontend(supplier, slots=slots) for supplier in suppliers
        ]
        self._batch_size = int(batch_size)
        self._max_delay = float(max_delay_ms) / 1000.0
        self._max_pending = int(max_pending)
        self._tenant_cap = max(1, int(max_pending * tenant_share))
        self._cond = threading.Condition()
        #: Shared completion condition every ServedAnswer waits on.
        self._completion = threading.Condition()
        self._queue: "deque[_QueueEntry]" = deque()
        self._tenant_pending: Dict[str, int] = {}
        self._flush_lock = threading.Lock()
        self._stats = FrontendStats(scope="serving")
        self._flushes_size = _obs.Counter()
        self._flushes_deadline = _obs.Counter()
        self._flushes_forced = _obs.Counter()
        self._shed_tenant = _obs.Counter()
        self._max_queue_depth = 0  # guarded by self._cond
        # Always-on per-tenant accounting (keys appear on first use;
        # mutation under self._cond for the counters created in
        # submit(), the histograms are internally locked).
        self._tenant_served: Dict[str, _obs.Counter] = {}
        self._tenant_shed: Dict[str, _obs.Counter] = {}
        self._tenant_lat: Dict[str, _obs.Histogram] = {}
        self._obs = registry if registry is not None else _obs.get_registry()
        self._obs.attach(self._stats)
        self._obs.attach(self)
        self._obs_enabled = self._obs.enabled
        self._batch_size_hist = self._obs.histogram("serving.batch_size")
        self._queue_gauge = self._obs.gauge("serving.queue_depth")
        self._running = False
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    def _tenant(self, store: Dict, tenant: str, factory):
        """The tenant's metric, created under ``self._cond`` on first use."""
        metric = store.get(tenant)
        if metric is None:
            metric = store[tenant] = factory()
        return metric

    def obs_metrics(self):
        """Registry collector hook: per-tenant + flush-reason metrics."""
        with self._cond:
            served = list(self._tenant_served.items())
            shed = list(self._tenant_shed.items())
            lat = list(self._tenant_lat.items())
        for tenant, counter in served:
            yield "serving.tenant_served", {"tenant": tenant}, counter
        for tenant, counter in shed:
            yield "serving.tenant_shed", {"tenant": tenant}, counter
        for tenant, hist in lat:
            yield "serving.tenant_latency_seconds", {"tenant": tenant}, hist
        yield "serving.flushes_size", {}, self._flushes_size
        yield "serving.flushes_deadline", {}, self._flushes_deadline
        yield "serving.flushes_forced", {}, self._flushes_forced
        yield "serving.shed_tenant", {}, self._shed_tenant

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the flusher thread (idempotent)."""
        with self._cond:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._run, name="repro-serving-flusher", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the flusher, draining queued queries first (idempotent)."""
        with self._cond:
            stopping = self._running
            self._running = False
            self._cond.notify_all()
        if stopping and self._thread is not None:
            self._thread.join(timeout=10.0)
        self.flush()  # resolve anything still queued (start=False path)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(self, method: str, query, tenant: str = "default") -> ServedAnswer:
        """Enqueue one query; returns a :class:`ServedAnswer` immediately.

        Raises :class:`OverloadError` when the pending queue is full or
        the tenant is over its fair share -- callers are expected to
        back off (shed-on-overload keeps the served tail bounded).
        """
        with self._cond:
            if len(self._queue) >= self._max_pending:
                self._stats.inc("shed")
                self._tenant(self._tenant_shed, tenant, _obs.Counter).inc()
                raise OverloadError(
                    f"pending queue full ({self._max_pending} queries)"
                )
            if self._tenant_pending.get(tenant, 0) >= self._tenant_cap:
                self._stats.inc("shed")
                self._shed_tenant.inc()
                self._tenant(self._tenant_shed, tenant, _obs.Counter).inc()
                raise OverloadError(
                    f"tenant {tenant!r} over its fair share "
                    f"({self._tenant_cap} pending queries)"
                )
            answer = ServedAnswer(self._completion, tenant)
            self._queue.append(
                _QueueEntry(method, query, answer, time.monotonic())
            )
            self._tenant_pending[tenant] = (
                self._tenant_pending.get(tenant, 0) + 1
            )
            self._stats.inc("submitted")
            depth = len(self._queue)
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth
            if self._obs_enabled:
                self._queue_gauge.set(depth)
            # Wake the flusher when the batch is full -- and on the
            # first entry, so an idle flusher starts this batch's
            # max_delay deadline clock instead of sleeping through it.
            if depth == 1 or depth >= self._batch_size:
                self._cond.notify_all()
        return answer

    def pending(self) -> int:
        """Queries queued but not yet flushed."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Flushing (flusher thread, or the caller when not started)
    # ------------------------------------------------------------------
    def _take_locked(self, limit: Optional[int]) -> List[_QueueEntry]:
        count = (
            len(self._queue) if limit is None
            else min(limit, len(self._queue))
        )
        batch = [self._queue.popleft() for _ in range(count)]
        for entry in batch:
            tenant = entry.answer.tenant
            left = self._tenant_pending.get(tenant, 1) - 1
            if left <= 0:
                self._tenant_pending.pop(tenant, None)
            else:
                self._tenant_pending[tenant] = left
        if batch:
            self._cond.notify_all()  # free admission slots
        return batch

    def flush(self) -> int:
        """Drain and answer everything queued right now (synchronous).

        The manual path for ``start=False`` frontends (tests, offline
        replay); counted separately from size/deadline flushes.
        """
        with self._cond:
            batch = self._take_locked(None)
        if not batch:
            return 0
        self._flushes_forced.inc()
        self._answer(batch)
        return len(batch)

    def _run(self) -> None:
        while True:
            batch: List[_QueueEntry] = []
            size_flush = False
            with self._cond:
                if not self._running and not self._queue:
                    break
                if len(self._queue) >= self._batch_size:
                    size_flush = True
                    batch = self._take_locked(self._batch_size)
                elif self._queue:
                    wait = (
                        self._queue[0].enqueued_at + self._max_delay
                        - time.monotonic()
                    )
                    if wait > 0 and self._running:
                        self._cond.wait(wait)
                        continue
                    batch = self._take_locked(None)
                else:
                    self._cond.wait(0.05)
                    continue
            if size_flush:
                self._flushes_size.inc()
            else:
                self._flushes_deadline.inc()
            self._answer(batch)

    def _answer(self, batch: List[_QueueEntry]) -> None:
        """Answer one drained batch: one kernel call per method per backend."""
        with self._flush_lock:
            span = (
                self._obs.span("serving.flush", size=len(batch))
                if self._obs_enabled else _obs.NULL_SPAN
            )
            with span:
                by_method: "OrderedDict[str, List[_QueueEntry]]" = (
                    OrderedDict()
                )
                for entry in batch:
                    by_method.setdefault(entry.method, []).append(entry)
                self._stats.inc("flushes")
                self._stats.record_batch(len(batch))
                if self._obs_enabled:
                    self._batch_size_hist.observe(len(batch))
                for method, entries in by_method.items():
                    queries = [entry.query for entry in entries]
                    try:
                        # Compile the battery once; every backend's
                        # kernel consumes the same plan (the serve()
                        # trick, across suppliers instead of methods).
                        plan = (
                            compile_query_plan(queries)
                            if len(self._backends) > 1 else queries
                        )
                        per_backend = [
                            backend.query_many(method, plan)
                            for backend in self._backends
                        ]
                    except Exception:
                        self._answer_singly(method, entries)
                        continue
                    for entry, values in zip(entries, zip(*per_backend)):
                        entry.answer._resolve(sum(values))
            self._account_latency(batch)

    def _account_latency(self, batch: List[_QueueEntry]) -> None:
        """Record enqueue->resolve latency per tenant, one pass per flush.

        ``done_at`` is stamped by ``_resolve``/``_fail``, so every
        entry of a flushed batch carries its service time already;
        grouping by tenant and using ``observe_many`` keeps the cost
        per-batch.  Served counts track *answered* queries (failed
        ones still count: the tenant occupied a slot either way).
        """
        by_tenant: Dict[str, List[float]] = {}
        for entry in batch:
            done_at = entry.answer.done_at
            if done_at is None:  # pragma: no cover - answer paths stamp it
                continue
            by_tenant.setdefault(entry.answer.tenant, []).append(
                done_at - entry.enqueued_at
            )
        for tenant, latencies in by_tenant.items():
            with self._cond:
                served = self._tenant(
                    self._tenant_served, tenant, _obs.Counter
                )
                hist = self._tenant(
                    self._tenant_lat, tenant, _obs.Histogram
                )
            served.inc(len(latencies))
            hist.observe_many(latencies)

    def _answer_singly(self, method: str, entries: List[_QueueEntry]) -> None:
        """Fault isolation: pin errors on the queries that actually fail."""
        for entry in entries:
            try:
                total = 0.0
                for backend in self._backends:
                    total += float(backend.query_many(method, [entry.query])[0])
            except Exception as error:
                entry.answer._fail(error)
            else:
                entry.answer._resolve(total)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Merged serving + per-backend cache telemetry, one flat dict.

        Cache counters (hits/misses/evictions) are summed across the
        per-supplier frontends; serving counters (submitted, sheds,
        flush reasons, batch histogram, queue depths) come from this
        service's own lifetime.  ``tenants`` maps every tenant seen so
        far to its served/shed counts, shed ratio and latency
        percentiles (power-of-two bucket upper bounds, milliseconds)
        -- the per-tenant accounting the admission-control counters
        only hinted at.
        """
        merged = self._stats.as_dict()
        for key in ("hits", "misses", "evictions", "batteries", "queries"):
            merged[key] = sum(
                getattr(backend.stats, key) for backend in self._backends
            )
        with self._cond:
            merged.update({
                "suppliers": len(self._backends),
                "flushes_size": self._flushes_size.value,
                "flushes_deadline": self._flushes_deadline.value,
                "flushes_forced": self._flushes_forced.value,
                "shed_tenant": self._shed_tenant.value,
                "max_queue_depth": self._max_queue_depth,
                "pending": len(self._queue),
            })
            tenants = sorted(
                set(self._tenant_served) | set(self._tenant_shed)
            )
            served = {
                t: c.value for t, c in self._tenant_served.items()
            }
            shed = {t: c.value for t, c in self._tenant_shed.items()}
            hists = dict(self._tenant_lat)
        per_tenant: Dict[str, Dict[str, object]] = {}
        for tenant in tenants:
            n_served = served.get(tenant, 0)
            n_shed = shed.get(tenant, 0)
            entry: Dict[str, object] = {
                "served": n_served,
                "shed": n_shed,
                "shed_ratio": (
                    n_shed / (n_served + n_shed)
                    if (n_served + n_shed) else 0.0
                ),
            }
            hist = hists.get(tenant)
            if hist is not None and hist.count:
                entry.update({
                    "p50_ms": hist.percentile(0.50) * 1e3,
                    "p95_ms": hist.percentile(0.95) * 1e3,
                    "p99_ms": hist.percentile(0.99) * 1e3,
                    "mean_ms": hist.total / hist.count * 1e3,
                })
            per_tenant[tenant] = entry
        merged["tenants"] = per_tenant
        return merged
