"""Query-serving frontend over a (possibly live) summary supplier.

:class:`QueryFrontend` sits between query clients and any *snapshot
supplier* -- a :class:`~repro.distributed.coordinator.DistributedIngest`
fleet, a local :class:`~repro.stream.engine.StreamEngine`, or anything
else exposing ``snapshot(method)`` plus a version counter.  It answers
large range-query batteries against the latest folded state while
ingest continues, with two layers of reuse:

* an **LRU snapshot cache** keyed by ``(method, supplier version)``:
  while the supplier's state is unchanged, repeated batteries skip the
  fold/collect entirely (for a distributed supplier that is the whole
  worker round trip);
* **sort-order reuse** through the cached summary objects themselves:
  a retained :class:`~repro.core.estimator.SampleSummary` /
  :class:`~repro.summaries.exact.ExactSummary` carries its own
  :class:`~repro.structures.ranges.SortOrderCache`, so consecutive
  batteries at one version pay the per-axis sorts once and then only
  the sweep (the PR-2 caching machinery, now serving distributed
  state).

Keeping a handful of slots (not one) matters under interleaved
multi-method serving: method A's battery must not evict method B's
freshly sorted snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.structures.ranges import Box


@dataclass
class FrontendStats:
    """Cache effectiveness counters (monitoring surface)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    batteries: int = 0
    queries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "batteries": self.batteries,
            "queries": self.queries,
        }


def _supplier_version(supplier) -> int:
    """The supplier's state version (stream engines count batches)."""
    version = getattr(supplier, "version", None)
    if version is None:
        version = getattr(supplier, "batches_seen", None)
    if version is None:
        raise TypeError(
            f"{type(supplier).__name__} exposes neither .version nor "
            ".batches_seen; cannot key the snapshot cache"
        )
    return int(version)


class QueryFrontend:
    """LRU-cached range-query serving over a snapshot supplier.

    Parameters
    ----------
    supplier:
        Object with ``snapshot(method) -> summary`` and a ``version``
        (or ``batches_seen``) counter that changes whenever ingested
        state changes.
    slots:
        Maximum ``(method, version)`` snapshot entries retained.
    """

    def __init__(self, supplier, *, slots: int = 8):
        if slots < 1:
            raise ValueError("need at least one cache slot")
        self._supplier = supplier
        self._slots = int(slots)
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self.stats = FrontendStats()

    # ------------------------------------------------------------------
    # Snapshot cache
    # ------------------------------------------------------------------
    def snapshot(self, method: str):
        """The latest folded summary for ``method`` (cached per version)."""
        key = (method, _supplier_version(self._supplier))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        summary = self._supplier.snapshot(method)
        self._cache[key] = summary
        while len(self._cache) > self._slots:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return summary

    def invalidate(self) -> None:
        """Drop every cached snapshot (e.g. after supplier reset)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, method: str, query) -> float:
        """One range-sum estimate against the latest state."""
        snap = self.snapshot(method)
        self.stats.queries += 1
        if isinstance(query, Box):
            return float(snap.query(query))
        return float(snap.query_multi(query))

    def query_many(self, method: str, queries: Sequence) -> List[float]:
        """A whole battery against the latest state (vectorized path)."""
        queries = list(queries)
        snap = self.snapshot(method)
        self.stats.batteries += 1
        self.stats.queries += len(queries)
        return list(snap.query_many(queries))

    def serve(
        self,
        queries: Sequence,
        methods: Optional[Sequence[str]] = None,
    ) -> Dict[str, List[float]]:
        """One battery across several methods (dashboard shape)."""
        queries = list(queries)
        if methods is None:
            methods = getattr(self._supplier, "methods", None)
            if methods is None:
                raise ValueError(
                    "supplier does not list methods; pass methods="
                )
        return {
            method: self.query_many(method, queries) for method in methods
        }
