"""Query-serving frontend over a (possibly live) summary supplier.

:class:`QueryFrontend` sits between query clients and any *snapshot
supplier* -- a :class:`~repro.distributed.coordinator.DistributedIngest`
fleet, a local :class:`~repro.stream.engine.StreamEngine`, or anything
else exposing ``snapshot(method)`` plus a version counter.  It answers
large range-query batteries against the latest folded state while
ingest continues, with two layers of reuse:

* an **LRU snapshot cache** keyed by ``(method, supplier version)``:
  while the supplier's state is unchanged, repeated batteries skip the
  fold/collect entirely (for a distributed supplier that is the whole
  worker round trip);
* **sort-order reuse** through the cached summary objects themselves:
  a retained :class:`~repro.core.estimator.SampleSummary` /
  :class:`~repro.summaries.exact.ExactSummary` carries its own
  :class:`~repro.structures.ranges.SortOrderCache`, so consecutive
  batteries at one version pay the per-axis sorts once and then only
  the sweep (the PR-2 caching machinery, now serving distributed
  state).

Keeping a handful of slots (not one) matters under interleaved
multi-method serving: method A's battery must not evict method B's
freshly sorted snapshot.

Snapshots arriving from a distributed supplier are decoded zero-copy
(``codec.from_bytes(..., copy=False)`` in
:meth:`~repro.distributed.coordinator.DistributedIngest._collect`):
the cached summary's raw arrays are read-only views into the received
frame, which is safe here precisely because the cache never mutates a
snapshot -- it only queries it.

**Micro-batching.**  Query traffic usually arrives one query at a
time; answering each alone forfeits the batched kernels.  With
``batch_size > 1`` the frontend collects submitted queries
(:meth:`QueryFrontend.submit` returns a :class:`PendingAnswer`
immediately) and answers each method's accumulated battery with *one*
``query_many`` kernel call per flush -- amortizing the query-plan
compilation, the snapshot lookup and the cached sort orders across the
batch.  A flush happens automatically when ``batch_size`` queries are
pending, explicitly via :meth:`QueryFrontend.flush`, or lazily the
first time a pending answer is read.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.structures.ranges import Box, QueryPlan, compile_query_plan


@dataclass
class FrontendStats:
    """Cache effectiveness counters (monitoring surface)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    batteries: int = 0
    queries: int = 0
    submitted: int = 0
    flushes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "batteries": self.batteries,
            "queries": self.queries,
            "submitted": self.submitted,
            "flushes": self.flushes,
        }


class PendingAnswer:
    """Handle for a micro-batched query (resolved at the next flush)."""

    __slots__ = ("_frontend", "_value", "_error")

    def __init__(self, frontend: "QueryFrontend"):
        self._frontend = frontend
        self._value: Optional[float] = None
        self._error: Optional[BaseException] = None

    @property
    def ready(self) -> bool:
        """Whether the answer (or its failure) has been computed."""
        return self._value is not None or self._error is not None

    def result(self) -> float:
        """The answer, flushing the frontend's pending batch if needed.

        Re-raises the kernel's exception when this query's flush group
        failed (e.g. a dimensionality mismatch).
        """
        if not self.ready:
            try:
                self._frontend.flush()
            except Exception:
                pass  # the failure is recorded on the affected handles
        if self._error is not None:
            raise self._error
        if self._value is None:  # pragma: no cover - internal invariant
            raise RuntimeError("flush did not resolve this query")
        return self._value


def _supplier_version(supplier) -> int:
    """The supplier's state version (stream engines count batches)."""
    version = getattr(supplier, "version", None)
    if version is None:
        version = getattr(supplier, "batches_seen", None)
    if version is None:
        raise TypeError(
            f"{type(supplier).__name__} exposes neither .version nor "
            ".batches_seen; cannot key the snapshot cache"
        )
    return int(version)


class QueryFrontend:
    """LRU-cached range-query serving over a snapshot supplier.

    Parameters
    ----------
    supplier:
        Object with ``snapshot(method) -> summary`` and a ``version``
        (or ``batches_seen``) counter that changes whenever ingested
        state changes.
    slots:
        Maximum ``(method, version)`` snapshot entries retained.
    batch_size:
        Micro-batching knob: :meth:`submit` collects up to this many
        queries before answering them all with one kernel call per
        method.  The default of 1 answers every submission
        immediately (one-at-a-time serving).
    """

    def __init__(self, supplier, *, slots: int = 8, batch_size: int = 1):
        if slots < 1:
            raise ValueError("need at least one cache slot")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self._supplier = supplier
        self._slots = int(slots)
        self._batch_size = int(batch_size)
        self._pending: List[Tuple[str, object, PendingAnswer]] = []
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self.stats = FrontendStats()

    # ------------------------------------------------------------------
    # Snapshot cache
    # ------------------------------------------------------------------
    def snapshot(self, method: str):
        """The latest folded summary for ``method`` (cached per version)."""
        key = (method, _supplier_version(self._supplier))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        summary = self._supplier.snapshot(method)
        self._cache[key] = summary
        while len(self._cache) > self._slots:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return summary

    def invalidate(self) -> None:
        """Drop every cached snapshot (e.g. after supplier reset)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, method: str, query) -> float:
        """One range-sum estimate against the latest state."""
        snap = self.snapshot(method)
        self.stats.queries += 1
        if isinstance(query, Box):
            return float(snap.query(query))
        return float(snap.query_multi(query))

    def query_many(self, method: str, queries: Sequence) -> List[float]:
        """A whole battery against the latest state (vectorized path).

        Accepts a raw battery or a pre-compiled
        :class:`~repro.structures.ranges.QueryPlan` (the plan passes
        straight through to the summary's kernel).
        """
        queries = (
            queries if isinstance(queries, QueryPlan) else list(queries)
        )
        snap = self.snapshot(method)
        self.stats.batteries += 1
        self.stats.queries += len(queries)
        return list(snap.query_many(queries))

    def serve(
        self,
        queries: Sequence,
        methods: Optional[Sequence[str]] = None,
    ) -> Dict[str, List[float]]:
        """One battery across several methods (dashboard shape).

        The battery is compiled into one shared query plan, so the
        bounds stacking is paid once rather than once per method.
        """
        plan = compile_query_plan(queries)
        if methods is None:
            methods = getattr(self._supplier, "methods", None)
            if methods is None:
                raise ValueError(
                    "supplier does not list methods; pass methods="
                )
        return {
            method: self.query_many(method, plan) for method in methods
        }

    # ------------------------------------------------------------------
    # Micro-batched serving
    # ------------------------------------------------------------------
    def submit(self, method: str, query) -> PendingAnswer:
        """Enqueue one query for micro-batched answering.

        Returns a :class:`PendingAnswer` immediately; the answer is
        computed when ``batch_size`` queries are pending (automatic
        flush), on an explicit :meth:`flush`, or lazily when the
        handle's :meth:`~PendingAnswer.result` is first read.  Answers
        match one-at-a-time :meth:`query` calls against the same
        supplier version up to the batched kernels' floating-point
        summation order (<= 1e-9 relative; bit-identical for kernels
        that share the scalar path's float semantics) -- micro-batching
        changes the kernel granularity, not the estimator.
        """
        handle = PendingAnswer(self)
        self._pending.append((method, query, handle))
        self.stats.submitted += 1
        if len(self._pending) >= self._batch_size:
            try:
                self.flush()
            except Exception:
                # A neighboring group's kernel failure is recorded on
                # that group's handles (their result() re-raises it);
                # this caller still gets its own handle back.
                pass
        return handle

    def flush(self) -> int:
        """Answer every pending query with one kernel call per method.

        Returns the number of queries resolved.  Pending queries are
        grouped by method (submission order preserved within a group)
        and each group is answered by a single ``query_many`` against
        the method's cached snapshot.  When a group's kernel call
        fails, the group falls back to per-query answering so one
        malformed query cannot poison its co-batched neighbors: only
        the actually-failing queries carry the error (their
        ``result()`` re-raises it).  The first such failure is then
        re-raised here; auto-flushes from :meth:`submit` swallow it.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        by_method: "OrderedDict[str, List[Tuple[object, PendingAnswer]]]" = (
            OrderedDict()
        )
        for method, query, handle in pending:
            by_method.setdefault(method, []).append((query, handle))
        first_error: Optional[Exception] = None
        for method, entries in by_method.items():
            try:
                answers = self.query_many(method, [q for q, _h in entries])
            except Exception:
                # Fault isolation: answer the group one query at a
                # time (still through the batched kernel, so the
                # validation semantics stay identical), pinning errors
                # only on the queries that fail.
                for query, handle in entries:
                    try:
                        handle._value = float(
                            self.query_many(method, [query])[0]
                        )
                    except Exception as error:
                        handle._error = error
                        if first_error is None:
                            first_error = error
                continue
            for (_query, handle), answer in zip(entries, answers):
                handle._value = float(answer)
        self.stats.flushes += 1
        if first_error is not None:
            raise first_error
        return len(pending)
