"""Coordinator: schedule shard builds / pane ingest across N workers.

The coordinator owns a transport, ships control messages to workers,
and folds whatever summaries come back with the existing mergeable
protocol (``merge`` / ``from_shards``) -- the same statistical
machinery as the in-process engine, so a distributed build is
indistinguishable from :func:`repro.engine.builder.build_sharded`
given the same seed (tested bit-for-bit per method).

Two entry points sit on top of the generic :class:`Coordinator`:

* :func:`distributed_build` -- batch: partition a dataset, build one
  summary per shard on the workers, fold.  Failed or crashed worker
  tasks are retried and reassigned to surviving workers.
* :class:`DistributedIngest` -- streaming: each worker ingests the
  micro-batch slices the coordinator routes to it (panes are
  shard-equivalent), and ships serialized snapshots upstream on
  demand; the coordinator folds them into the latest queryable state.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs as _obs
from repro.core.types import Dataset
from repro.distributed import codec
from repro.distributed.dispatch import (
    AsyncDispatcher,
    Backpressure,
    ReplyFuture,
)
from repro.distributed.transport import (
    BaseTransport,
    TransportError,
    make_transport,
)
from repro.engine import registry
from repro.engine.builder import (
    _MAX_DEFAULT_WORKERS,
    fold_merge,
    fold_snapshots,
)
from repro.engine.shard import shard_dataset
from repro.stream.incremental import derive_seed
from repro.stream.types import MicroBatch
from repro.structures.ranges import compile_query_plan


class DistributedError(RuntimeError):
    """A distributed operation could not be completed."""


#: Message types the coordinator fires and forgets.  Everything else
#: expects a reply, which is what shared-memory transports key segment
#: reclamation on.
_NO_REPLY_TYPES = frozenset({"ingest", "shutdown", "exit"})


def _default_workers() -> int:
    return max(1, min(os.cpu_count() or 1, _MAX_DEFAULT_WORKERS))


class Coordinator:
    """Generic message scheduler over a transport's worker fleet.

    Since the async serving tier, every coordinator runs its transport
    behind an :class:`~repro.distributed.dispatch.AsyncDispatcher` --
    a selector thread with bounded per-worker request queues and
    explicit backpressure -- and the synchronous API below
    (:meth:`send` / :meth:`gather` / :meth:`run_tasks`) is a thin
    wrapper that enqueues requests and waits on their futures.  The
    observable behavior (retry semantics, error surfacing, and the
    bit-exact build results) is unchanged; what the dispatch layer
    adds is overlap: snapshot collection, ingest hand-off and query
    fan-out from different threads now interleave on the wire instead
    of serializing on one blocking ``send``.

    Parameters
    ----------
    transport:
        A transport name (``"inprocess"``, ``"multiprocessing"``/
        ``"mp"``, ``"shared-memory"``, ``"tcp"``) or a pre-built
        :class:`~repro.distributed.transport.BaseTransport` instance
        (not yet started).
    num_workers:
        Fleet size; defaults to the available parallelism (capped
        like the in-process engine).
    max_retries:
        How many times one task may be re-dispatched after a worker
        error or death before the operation fails.
    poll_interval:
        Transport poll granularity in seconds.
    timeout:
        Overall deadline for one :meth:`run_tasks` / :meth:`gather`
        call.
    max_inflight / max_pending:
        Per-worker dispatch windows (see
        :class:`~repro.distributed.dispatch.AsyncDispatcher`).
    """

    def __init__(
        self,
        transport: Union[str, BaseTransport] = "inprocess",
        num_workers: Optional[int] = None,
        *,
        max_retries: int = 2,
        poll_interval: float = 0.02,
        timeout: float = 600.0,
        max_inflight: int = 2,
        max_pending: int = 128,
        registry=None,
    ):
        self._transport = make_transport(transport)
        self._num_workers = num_workers or _default_workers()
        self._max_retries = int(max_retries)
        self._poll_interval = float(poll_interval)
        self._timeout = float(timeout)
        self._obs = registry if registry is not None else _obs.get_registry()
        self._transport.start(self._num_workers)
        self._dispatcher = AsyncDispatcher(
            self._transport,
            max_inflight=max_inflight,
            max_pending=max_pending,
            poll_interval=min(self._poll_interval, 0.005),
            registry=self._obs,
        )
        #: Futures of :meth:`send` calls awaiting :meth:`gather`.
        self._replies: List[ReplyFuture] = []
        self._replies_lock = threading.Lock()
        self._closed = False
        #: Total task re-dispatches observed (provenance/monitoring).
        self.retries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def transport(self) -> BaseTransport:
        return self._transport

    @property
    def dispatcher(self) -> AsyncDispatcher:
        """The non-blocking dispatch layer (async submission surface)."""
        return self._dispatcher

    @property
    def num_workers(self) -> int:
        return self._num_workers

    def alive_workers(self) -> List[int]:
        """Ids of workers still reachable (the dispatcher's view)."""
        return self._dispatcher.alive_workers()

    def close(self) -> None:
        """Shut the fleet down (idempotent)."""
        if self._closed:
            return
        for worker_id in self.alive_workers():
            try:
                self.send(worker_id, {"type": "shutdown"})
            except TransportError:
                pass
        self._dispatcher.stop()
        self._transport.stop()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def submit(
        self,
        worker_id: int,
        message: dict,
        *,
        block: bool = True,
        timeout: Optional[float] = 60.0,
    ) -> Optional[ReplyFuture]:
        """Non-blocking send: enqueue one message, get its future.

        The async-path primitive.  Reply-expecting messages on a
        zero-copy (shared-memory) transport skip array compression:
        their frames never cross the pipe, and the worker decodes raw
        arrays as views into the segment, so raw is strictly cheaper
        than compressed there.  Fire-and-forget messages return
        ``None``.  ``block=False`` sheds with
        :class:`~repro.distributed.dispatch.Backpressure` instead of
        waiting for queue space.
        """
        reply_expected = message.get("type") not in _NO_REPLY_TYPES
        compress = not (reply_expected and self._transport.zero_copy)
        return self._dispatcher.submit(
            worker_id,
            codec.encode_message(message, compress=compress),
            reply_expected=reply_expected,
            block=block,
            timeout=timeout,
        )

    def send(self, worker_id: int, message: dict) -> None:
        """Encode and ship one message to one worker (sync wrapper).

        Reply-expecting sends park their future in the coordinator's
        reply pool, where :meth:`gather` harvests it -- the historical
        send-then-gather call pattern, now non-blocking underneath.
        """
        future = self.submit(worker_id, message)
        if future is not None:
            with self._replies_lock:
                self._replies.append(future)

    def gather(
        self,
        expected: Union[int, Callable[[], int]],
        *,
        match: Optional[Callable[[dict], bool]] = None,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        """Collect ``expected`` matching replies from the fleet.

        Non-matching replies are discarded.  ``expected`` may be a
        callable re-evaluated every poll round, so callers that can
        tolerate loss (snapshot collection) shrink the target as
        workers die instead of blocking until the deadline.  Replies
        of requests whose worker died are dropped (the shrinking
        target is what accounts for them).
        """
        target = expected if callable(expected) else (lambda: expected)
        deadline = time.monotonic() + (timeout or self._timeout)
        replies: List[dict] = []
        while len(replies) < target():
            if time.monotonic() > deadline:
                raise DistributedError(
                    f"timed out with {len(replies)}/{target()} replies"
                )
            with self._replies_lock:
                pool = list(self._replies)
            progressed = False
            for future in pool:
                if not future.done():
                    continue
                with self._replies_lock:
                    try:
                        self._replies.remove(future)
                    except ValueError:  # another gather raced it away
                        continue
                progressed = True
                if future.exception() is not None:
                    continue  # worker died; the target shrinks instead
                message = future.result()
                if message.get("type") == "error":
                    # Protocol-level worker errors (bad frame, version
                    # mismatch) fail the operation loudly, not by
                    # timeout.
                    raise DistributedError(
                        f"worker error: {message.get('error')}"
                    )
                if match is None or match(message):
                    replies.append(message)
            if progressed:
                continue
            if not self.alive_workers():
                raise DistributedError(
                    "all workers died while gathering replies"
                )
            self._dispatcher.wait_any(pool, timeout=self._poll_interval)
        return replies

    # ------------------------------------------------------------------
    # Task scheduling with retry/reassignment
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[dict],
        *,
        wire: Optional[Dict[str, int]] = None,
    ) -> List[dict]:
        """Run every task to completion; returns replies in task order.

        Each task dict is shipped with an injected ``task_id`` and must
        produce a ``result`` reply carrying it back.  A worker error
        (``ok=False``) or death re-queues the task -- preferring a
        *different* worker, since the idle pool is rotated -- until
        ``max_retries`` re-dispatches are spent.

        ``wire``, when given, accumulates this call's exact wire share
        (``frames_sent``/``bytes_sent``/``bytes_received``/
        ``shm_bytes``) summed from the per-request futures.  Unlike
        before/after snapshots of the transport's shared counters, the
        sums stay correct when other operations are on the wire
        concurrently.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        with self._obs.span("coordinator.run_tasks", tasks=len(tasks)):
            return self._run_tasks_inner(tasks, wire)

    def _run_tasks_inner(
        self,
        tasks: List[dict],
        wire: Optional[Dict[str, int]],
    ) -> List[dict]:
        pending = deque(range(len(tasks)))
        results: List[Optional[dict]] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        #: task index -> (worker id, reply future)
        inflight: Dict[int, tuple] = {}
        idle = deque(self.alive_workers())
        remaining = len(tasks)
        deadline = time.monotonic() + self._timeout

        def account(future: ReplyFuture) -> None:
            if wire is None:
                return
            if future.bytes_sent or future.shm_bytes:
                wire["frames_sent"] = wire.get("frames_sent", 0) + 1
            wire["bytes_sent"] = (
                wire.get("bytes_sent", 0) + future.bytes_sent
            )
            wire["bytes_received"] = (
                wire.get("bytes_received", 0) + future.bytes_received
            )
            wire["shm_bytes"] = (
                wire.get("shm_bytes", 0) + future.shm_bytes
            )

        def requeue(index: int, why: str) -> None:
            if attempts[index] > self._max_retries:
                raise DistributedError(
                    f"task {index} failed after "
                    f"{attempts[index]} attempts: {why}"
                )
            self.retries += 1
            pending.append(index)

        while remaining:
            if time.monotonic() > deadline:
                raise DistributedError(
                    f"timed out with {remaining} tasks outstanding"
                )
            alive = set(self.alive_workers())
            idle = deque(
                worker_id for worker_id in idle if worker_id in alive
            )
            if not inflight and not idle and pending:
                raise DistributedError(
                    f"no workers left with {remaining} tasks outstanding"
                )
            # Dispatch.
            while pending and idle:
                index = pending.popleft()
                worker_id = idle.popleft()
                attempts[index] += 1
                try:
                    future = self.submit(
                        worker_id, {**tasks[index], "task_id": index}
                    )
                except TransportError as exc:
                    requeue(index, str(exc))
                    continue
                inflight[index] = (worker_id, future)
            # Collect: each task's reply resolves its own future, so
            # worker death (the future fails with TransportError) and
            # stale duplicates need no task-id bookkeeping here.
            progressed = False
            for index, (worker_id, future) in list(inflight.items()):
                if not future.done():
                    continue
                progressed = True
                del inflight[index]
                account(future)
                error = future.exception()
                if error is not None:
                    # Worker died mid-task; it does not rejoin the
                    # idle pool, so the retry lands elsewhere.
                    requeue(index, str(error))
                    continue
                message = future.result()
                idle.append(worker_id)
                if message.get("type") == "error":
                    requeue(
                        index,
                        f"worker error: {message.get('error')}",
                    )
                elif message.get("type") != "result":
                    requeue(
                        index,
                        f"unexpected reply {message.get('type')!r}",
                    )
                elif message.get("ok"):
                    results[index] = message
                    remaining -= 1
                else:
                    requeue(index, message.get("error", "worker error"))
            if not progressed and remaining:
                self._dispatcher.wait_any(
                    [future for _w, future in inflight.values()],
                    timeout=self._poll_interval,
                )
        return [reply for reply in results if reply is not None]


# ----------------------------------------------------------------------
# Batch: distributed shard builds
# ----------------------------------------------------------------------

@dataclass
class DistributedBuild:
    """Outcome of a distributed build: folded summary plus provenance.

    ``bytes_on_wire``/``frames_sent`` count this build's own frames
    (both directions), summed from the per-request futures on the
    async dispatch path -- exact even when other operations share the
    transport concurrently; ``shm_bytes`` counts payloads that moved
    out-of-band through shared memory instead.
    """

    summary: object
    num_workers: int
    num_tasks: int
    transport: str
    shard_sizes: List[int] = field(default_factory=list)
    retries: int = 0
    bytes_on_wire: int = 0
    frames_sent: int = 0
    shm_bytes: int = 0


def distributed_build(
    method: str,
    dataset: Dataset,
    s: int,
    rng: Optional[np.random.Generator] = None,
    *,
    num_workers: Optional[int] = None,
    transport: Union[str, BaseTransport] = "inprocess",
    strategy: str = "contiguous",
    max_retries: int = 2,
    coordinator: Optional[Coordinator] = None,
) -> DistributedBuild:
    """Build one summary per shard on remote workers and fold.

    Deterministic parity with the in-process engine: given the same
    ``rng`` state, shard count and strategy, the folded summary is
    *bit-identical* to ``build_sharded``'s -- per-shard seeds are
    drawn the same way, workers run the same registry builders, the
    codec round trip is bit-exact, and the fold consumes the same
    generator.  Which transport carried the bytes cannot matter.

    Pass an existing ``coordinator`` to amortize fleet startup across
    builds; otherwise a fleet is started and torn down per call.
    """
    if rng is None:
        rng = np.random.default_rng()
    if num_workers is None:
        num_workers = (
            coordinator.num_workers if coordinator is not None
            else _default_workers()
        )
    shards = shard_dataset(dataset, num_workers, strategy=strategy)
    if not shards:
        shards = [dataset]
    if len(shards) > 1 and not registry.is_mergeable(method):
        raise ValueError(
            f"method {method!r} does not build mergeable summaries; "
            "use num_workers=1 or a mergeable method"
        )
    seeds = [int(seed) for seed in rng.integers(0, 2**63, size=len(shards))]
    domain_spec = codec.encode_domain(dataset.domain)
    tasks = [
        {
            "type": "build",
            "method": method,
            "size": int(s),
            "seed": seed,
            "coords": shard.coords,
            "weights": shard.weights,
            "domain": domain_spec,
        }
        for shard, seed in zip(shards, seeds)
    ]
    own = coordinator is None
    coord = coordinator or Coordinator(
        transport, num_workers, max_retries=max_retries
    )
    wire: Dict[str, int] = {}
    try:
        replies = coord.run_tasks(tasks, wire=wire)
        # Reply frames are immutable bytes that live as long as any
        # view of them: decode the shipped summaries zero-copy.
        summaries = [
            codec.from_bytes(reply["summary"], copy=False)
            for reply in replies
        ]
    finally:
        if own:
            coord.close()
    merged = fold_merge(summaries, s=s, rng=rng)
    return DistributedBuild(
        summary=merged,
        num_workers=coord.num_workers,
        num_tasks=len(tasks),
        transport=coord.transport.name,
        shard_sizes=[int(reply["size"]) for reply in replies],
        retries=coord.retries,
        bytes_on_wire=(
            wire.get("bytes_sent", 0) + wire.get("bytes_received", 0)
        ),
        frames_sent=wire.get("frames_sent", 0),
        shm_bytes=wire.get("shm_bytes", 0),
    )


# ----------------------------------------------------------------------
# Streaming: distributed micro-batch ingest
# ----------------------------------------------------------------------

class DistributedIngest:
    """Route a micro-batch stream across workers; fold snapshots on demand.

    Every worker holds one incremental summary per method (the stream
    engine's pane machinery, seeded independently per worker via
    :func:`~repro.stream.incremental.derive_seed`), so the per-worker
    slices are shard-equivalent and fold with ``merge`` exactly like
    panes do.  ``ingest`` messages are fire-and-forget for throughput;
    :meth:`snapshot` is the barrier that collects and folds.

    Ingest is **landmark-only**: snapshots always cover everything
    dispatched so far.  Batch timestamps are accepted (stamped sources
    plug in unchanged, exactly as with a windowless
    :class:`~repro.stream.engine.StreamEngine`) but carry no window
    semantics on the workers; routing ``Window`` specs through
    ``open_stream`` is a ROADMAP follow-on.

    A worker lost mid-stream loses its slice (estimates remain
    unbiased over the surviving slices); the batch build path is the
    one with full retry semantics.
    """

    def __init__(
        self,
        domain,
        methods: Union[str, Sequence[str]],
        size: int,
        *,
        num_workers: Optional[int] = None,
        transport: Union[str, BaseTransport] = "inprocess",
        seed: int = 0,
        stream_id: str = "live",
        coordinator: Optional[Coordinator] = None,
    ):
        if isinstance(methods, str):
            methods = [methods]
        self._methods = list(methods)
        if not self._methods:
            raise ValueError("need at least one method")
        self._domain = domain
        self._size = int(size)
        self._seed = int(seed)
        self._stream_id = stream_id
        self._own_coordinator = coordinator is None
        self._coordinator = coordinator or Coordinator(
            transport, num_workers
        )
        self._version = 0
        self._items = 0
        self._next_request = 0
        self._round_robin = 0
        self._snap_cache: Optional[tuple] = None  # (version, {m: snaps})
        self._fold_cache: Dict[str, tuple] = {}  # method -> (ver, folded)
        domain_spec = codec.encode_domain(domain)
        workers = self._coordinator.alive_workers()
        for worker_id in workers:
            self._coordinator.send(worker_id, {
                "type": "open_stream",
                "stream": stream_id,
                "methods": self._methods,
                "size": self._size,
                "seed": derive_seed(self._seed, "worker", worker_id),
                "domain": domain_spec,
            })
        # Shrinking target: a worker dying mid-open must not stall the
        # constructor until the deadline (same pattern as _collect).
        asked = set(workers)
        opened = self._coordinator.gather(
            lambda: len(
                asked & set(self._coordinator.alive_workers())
            ),
            match=lambda m: (m.get("type") == "opened"
                             and m.get("stream") == stream_id),
        )
        failed = [m for m in opened if not m.get("ok")]
        if failed:
            self.close()
            raise DistributedError(
                f"open_stream failed: {failed[0].get('error')}"
            )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def process(self, batch) -> None:
        """Route one micro-batch to the next worker (round-robin).

        Accepts every batch shape :class:`~repro.stream.MicroBatch`
        coerces; timestamps ride along for source compatibility but
        workers keep landmark (all-time) state (see the class
        docstring).
        """
        batch = MicroBatch.coerce(batch)
        workers = self._coordinator.alive_workers()
        if not workers:
            raise DistributedError("no live workers to ingest into")
        worker_id = workers[self._round_robin % len(workers)]
        self._round_robin += 1
        self._coordinator.send(worker_id, {
            "type": "ingest",
            "stream": self._stream_id,
            "coords": batch.coords,
            "weights": batch.weights,
        })
        self._items += batch.n
        self._version += 1

    def dispatch(self, source, limit: Optional[int] = None) -> int:
        """Consume micro-batches from any iterable source.

        Returns the number of items dispatched from this call;
        ``limit`` caps the number of batches drawn.
        """
        before = self._items
        for count, batch in enumerate(source, start=1):
            self.process(batch)
            if limit is not None and count >= limit:
                break
        return self._items - before

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _collect(self) -> Dict[str, list]:
        """Per-method worker snapshots at the current version (cached)."""
        if (
            self._snap_cache is not None
            and self._snap_cache[0] == self._version
        ):
            return self._snap_cache[1]
        workers = self._coordinator.alive_workers()
        if not workers:
            raise DistributedError("no live workers to snapshot")
        request_id = self._next_request
        self._next_request += 1
        for worker_id in workers:
            self._coordinator.send(worker_id, {
                "type": "snapshot",
                "stream": self._stream_id,
                "request_id": request_id,
            })
        # Workers that die mid-collect lose their slice: the reply
        # target tracks the *live* fleet every poll round, so a death
        # after the request went out shrinks the wait instead of
        # stalling the collect until the deadline.
        asked = set(workers)
        replies = self._coordinator.gather(
            lambda: len(
                asked & set(self._coordinator.alive_workers())
            ),
            match=lambda m: (m.get("type") == "snapshots"
                             and m.get("request_id") == request_id),
        )
        failed = [m for m in replies if not m.get("ok")]
        if failed:
            raise DistributedError(
                f"snapshot failed: {failed[0].get('error')}"
            )
        per_method: Dict[str, list] = {name: [] for name in self._methods}
        for reply in replies:
            for name, frame in reply["summaries"].items():
                # Snapshot frames are immutable bytes kept alive by
                # their views: zero-copy decode feeds the frontend's
                # LRU snapshot cache without duplicating state arrays.
                per_method[name].append(codec.from_bytes(frame, copy=False))
        self._snap_cache = (self._version, per_method)
        return per_method

    def snapshot(self, method: str):
        """The folded queryable summary for ``method`` right now."""
        if method not in self._methods:
            raise KeyError(
                f"method {method!r} not registered; have {self._methods}"
            )
        cached = self._fold_cache.get(method)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        snaps = self._collect()[method]
        folded = self._fold(method, snaps)
        self._fold_cache[method] = (self._version, folded)
        return folded

    def _fold(self, method: str, snaps: list):
        rng = np.random.default_rng(
            derive_seed(self._seed, "fold", method, self._version)
        )
        return fold_snapshots(snaps, size=self._size, rng=rng)

    # ------------------------------------------------------------------
    # Queries / introspection
    # ------------------------------------------------------------------
    def query_many_now(self, queries: Sequence) -> Dict[str, List[float]]:
        """Live estimates for a query battery, per method.

        The battery is compiled into one shared
        :class:`~repro.structures.ranges.QueryPlan`, so the bounds
        stacking is paid once rather than once per method.
        """
        plan = compile_query_plan(queries)
        return {
            method: list(self.snapshot(method).query_many(plan))
            for method in self._methods
        }

    @property
    def methods(self) -> List[str]:
        return list(self._methods)

    @property
    def version(self) -> int:
        """Counter bumped per dispatched batch (snapshot cache key)."""
        return self._version

    @property
    def items_dispatched(self) -> int:
        return self._items

    def close(self) -> None:
        if self._own_coordinator:
            self._coordinator.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
