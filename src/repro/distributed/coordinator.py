"""Coordinator: schedule shard builds / pane ingest across N workers.

The coordinator owns a transport, ships control messages to workers,
and folds whatever summaries come back with the existing mergeable
protocol (``merge`` / ``from_shards``) -- the same statistical
machinery as the in-process engine, so a distributed build is
indistinguishable from :func:`repro.engine.builder.build_sharded`
given the same seed (tested bit-for-bit per method).

Two entry points sit on top of the generic :class:`Coordinator`:

* :func:`distributed_build` -- batch: partition a dataset, build one
  summary per shard on the workers, fold.  Failed or crashed worker
  tasks are retried and reassigned to surviving workers.
* :class:`DistributedIngest` -- streaming: each worker ingests the
  micro-batch slices the coordinator routes to it (panes are
  shard-equivalent), and ships serialized snapshots upstream on
  demand; the coordinator folds them into the latest queryable state.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs as _obs
from repro.core.types import Dataset
from repro.distributed import codec
from repro.distributed.dispatch import (
    AsyncDispatcher,
    Backpressure,
    ReplyFuture,
)
from repro.distributed.transport import (
    BaseTransport,
    TransportError,
    make_transport,
)
from repro.engine import registry
from repro.engine.builder import (
    _MAX_DEFAULT_WORKERS,
    fold_merge,
    fold_snapshots,
)
from repro.engine.shard import shard_dataset
from repro.stream.incremental import derive_seed
from repro.stream.types import MicroBatch
from repro.structures.ranges import compile_query_plan


class DistributedError(RuntimeError):
    """A distributed operation could not be completed."""


#: Message types the coordinator fires and forgets.  Everything else
#: expects a reply, which is what shared-memory transports key segment
#: reclamation on.
_NO_REPLY_TYPES = frozenset({"ingest", "shutdown", "exit"})


def _default_workers() -> int:
    return max(1, min(os.cpu_count() or 1, _MAX_DEFAULT_WORKERS))


class Coordinator:
    """Generic message scheduler over a transport's worker fleet.

    Since the async serving tier, every coordinator runs its transport
    behind an :class:`~repro.distributed.dispatch.AsyncDispatcher` --
    a selector thread with bounded per-worker request queues and
    explicit backpressure -- and the synchronous API below
    (:meth:`send` / :meth:`gather` / :meth:`run_tasks`) is a thin
    wrapper that enqueues requests and waits on their futures.  The
    observable behavior (retry semantics, error surfacing, and the
    bit-exact build results) is unchanged; what the dispatch layer
    adds is overlap: snapshot collection, ingest hand-off and query
    fan-out from different threads now interleave on the wire instead
    of serializing on one blocking ``send``.

    Parameters
    ----------
    transport:
        A transport name (``"inprocess"``, ``"multiprocessing"``/
        ``"mp"``, ``"shared-memory"``, ``"tcp"``) or a pre-built
        :class:`~repro.distributed.transport.BaseTransport` instance
        (not yet started).
    num_workers:
        Fleet size; defaults to the available parallelism (capped
        like the in-process engine).
    max_retries:
        How many times one task may be re-dispatched after a worker
        error or death before the operation fails.
    retry_backoff / retry_backoff_cap:
        Re-dispatch delay policy: the ``k``-th retry of a task waits
        ``U(0, min(cap, backoff * 2**(k-1)))`` seconds -- exponential
        backoff with full jitter, so a burst of failures spreads out
        instead of hammering the surviving workers in lockstep.
        Retries and their drawn delays are counted in the
        ``coordinator.task_retries`` / ``coordinator.
        retry_backoff_seconds`` obs metrics.  ``retry_backoff=0``
        restores immediate re-dispatch.
    poll_interval:
        Transport poll granularity in seconds.
    timeout:
        Overall deadline for one :meth:`run_tasks` / :meth:`gather`
        call.
    max_inflight / max_pending:
        Per-worker dispatch windows (see
        :class:`~repro.distributed.dispatch.AsyncDispatcher`).
    """

    def __init__(
        self,
        transport: Union[str, BaseTransport] = "inprocess",
        num_workers: Optional[int] = None,
        *,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 2.0,
        poll_interval: float = 0.02,
        timeout: float = 600.0,
        max_inflight: int = 2,
        max_pending: int = 128,
        registry=None,
    ):
        self._transport = make_transport(transport)
        self._num_workers = num_workers or _default_workers()
        self._max_retries = int(max_retries)
        self._retry_backoff = float(retry_backoff)
        self._retry_backoff_cap = float(retry_backoff_cap)
        self._poll_interval = float(poll_interval)
        self._timeout = float(timeout)
        self._obs = registry if registry is not None else _obs.get_registry()
        self._retry_ctr = self._obs.counter("coordinator.task_retries")
        self._backoff_hist = self._obs.histogram(
            "coordinator.retry_backoff_seconds"
        )
        self._transport.start(self._num_workers)
        self._dispatcher = AsyncDispatcher(
            self._transport,
            max_inflight=max_inflight,
            max_pending=max_pending,
            poll_interval=min(self._poll_interval, 0.005),
            registry=self._obs,
        )
        #: Futures of :meth:`send` calls awaiting :meth:`gather`.
        self._replies: List[ReplyFuture] = []
        self._replies_lock = threading.Lock()
        self._closed = False
        #: Total task re-dispatches observed (provenance/monitoring).
        self.retries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def transport(self) -> BaseTransport:
        return self._transport

    @property
    def dispatcher(self) -> AsyncDispatcher:
        """The non-blocking dispatch layer (async submission surface)."""
        return self._dispatcher

    @property
    def num_workers(self) -> int:
        return self._num_workers

    def alive_workers(self) -> List[int]:
        """Ids of workers still reachable (the dispatcher's view)."""
        return self._dispatcher.alive_workers()

    def retry_delay(self, attempt: int) -> float:
        """Draw the backoff before retry ``attempt`` (1-based).

        Exponential backoff with full jitter; recorded in the
        ``coordinator.retry_backoff_seconds`` histogram.
        """
        if self._retry_backoff <= 0:
            return 0.0
        ceiling = min(
            self._retry_backoff_cap,
            self._retry_backoff * (2.0 ** (max(int(attempt), 1) - 1)),
        )
        delay = random.uniform(0.0, ceiling)
        if self._obs.enabled:
            self._backoff_hist.observe(delay)
        return delay

    def close(self) -> None:
        """Shut the fleet down (idempotent)."""
        if self._closed:
            return
        for worker_id in self.alive_workers():
            try:
                self.send(worker_id, {"type": "shutdown"})
            except TransportError:
                pass
        self._dispatcher.stop()
        self._transport.stop()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def submit(
        self,
        worker_id: int,
        message: dict,
        *,
        block: bool = True,
        timeout: Optional[float] = 60.0,
    ) -> Optional[ReplyFuture]:
        """Non-blocking send: enqueue one message, get its future.

        The async-path primitive.  Reply-expecting messages on a
        zero-copy (shared-memory) transport skip array compression:
        their frames never cross the pipe, and the worker decodes raw
        arrays as views into the segment, so raw is strictly cheaper
        than compressed there.  Fire-and-forget messages return
        ``None``.  ``block=False`` sheds with
        :class:`~repro.distributed.dispatch.Backpressure` instead of
        waiting for queue space.
        """
        reply_expected = message.get("type") not in _NO_REPLY_TYPES
        compress = not (reply_expected and self._transport.zero_copy)
        return self._dispatcher.submit(
            worker_id,
            codec.encode_message(message, compress=compress),
            reply_expected=reply_expected,
            block=block,
            timeout=timeout,
        )

    def send(self, worker_id: int, message: dict) -> None:
        """Encode and ship one message to one worker (sync wrapper).

        Reply-expecting sends park their future in the coordinator's
        reply pool, where :meth:`gather` harvests it -- the historical
        send-then-gather call pattern, now non-blocking underneath.
        """
        future = self.submit(worker_id, message)
        if future is not None:
            with self._replies_lock:
                self._replies.append(future)

    def gather(
        self,
        expected: Union[int, Callable[[], int]],
        *,
        match: Optional[Callable[[dict], bool]] = None,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        """Collect ``expected`` matching replies from the fleet.

        Non-matching replies are discarded.  ``expected`` may be a
        callable re-evaluated every poll round, so callers that can
        tolerate loss (snapshot collection) shrink the target as
        workers die instead of blocking until the deadline.  Replies
        of requests whose worker died are dropped (the shrinking
        target is what accounts for them).
        """
        target = expected if callable(expected) else (lambda: expected)
        deadline = time.monotonic() + (timeout or self._timeout)
        replies: List[dict] = []
        while len(replies) < target():
            if time.monotonic() > deadline:
                raise DistributedError(
                    f"timed out with {len(replies)}/{target()} replies"
                )
            with self._replies_lock:
                pool = list(self._replies)
            progressed = False
            for future in pool:
                if not future.done():
                    continue
                with self._replies_lock:
                    try:
                        self._replies.remove(future)
                    except ValueError:  # another gather raced it away
                        continue
                progressed = True
                if future.exception() is not None:
                    continue  # worker died; the target shrinks instead
                message = future.result()
                if message.get("type") == "error":
                    # Protocol-level worker errors (bad frame, version
                    # mismatch) fail the operation loudly, not by
                    # timeout.
                    raise DistributedError(
                        f"worker error: {message.get('error')}"
                    )
                if match is None or match(message):
                    replies.append(message)
            if progressed:
                continue
            if not self.alive_workers():
                raise DistributedError(
                    "all workers died while gathering replies"
                )
            self._dispatcher.wait_any(pool, timeout=self._poll_interval)
        return replies

    # ------------------------------------------------------------------
    # Task scheduling with retry/reassignment
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[dict],
        *,
        wire: Optional[Dict[str, int]] = None,
    ) -> List[dict]:
        """Run every task to completion; returns replies in task order.

        Each task dict is shipped with an injected ``task_id`` and must
        produce a ``result`` reply carrying it back.  A worker error
        (``ok=False``) or death re-queues the task -- preferring a
        *different* worker, since the idle pool is rotated -- until
        ``max_retries`` re-dispatches are spent.

        ``wire``, when given, accumulates this call's exact wire share
        (``frames_sent``/``bytes_sent``/``bytes_received``/
        ``shm_bytes``) summed from the per-request futures.  Unlike
        before/after snapshots of the transport's shared counters, the
        sums stay correct when other operations are on the wire
        concurrently.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        with self._obs.span("coordinator.run_tasks", tasks=len(tasks)):
            return self._run_tasks_inner(tasks, wire)

    def _run_tasks_inner(
        self,
        tasks: List[dict],
        wire: Optional[Dict[str, int]],
    ) -> List[dict]:
        pending = deque(range(len(tasks)))
        results: List[Optional[dict]] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        #: task index -> (worker id, reply future)
        inflight: Dict[int, tuple] = {}
        idle = deque(self.alive_workers())
        remaining = len(tasks)
        deadline = time.monotonic() + self._timeout

        def account(future: ReplyFuture) -> None:
            if wire is None:
                return
            if future.bytes_sent or future.shm_bytes:
                wire["frames_sent"] = wire.get("frames_sent", 0) + 1
            wire["bytes_sent"] = (
                wire.get("bytes_sent", 0) + future.bytes_sent
            )
            wire["bytes_received"] = (
                wire.get("bytes_received", 0) + future.bytes_received
            )
            wire["shm_bytes"] = (
                wire.get("shm_bytes", 0) + future.shm_bytes
            )

        #: task index -> earliest re-dispatch time (backoff + jitter).
        eligible_at: Dict[int, float] = {}

        def requeue(index: int, why: str) -> None:
            if attempts[index] > self._max_retries:
                raise DistributedError(
                    f"task {index} failed after "
                    f"{attempts[index]} attempts: {why}"
                )
            self.retries += 1
            if self._obs.enabled:
                self._retry_ctr.inc()
            eligible_at[index] = (
                time.monotonic() + self.retry_delay(attempts[index])
            )
            pending.append(index)

        while remaining:
            if time.monotonic() > deadline:
                raise DistributedError(
                    f"timed out with {remaining} tasks outstanding"
                )
            alive = set(self.alive_workers())
            idle = deque(
                worker_id for worker_id in idle if worker_id in alive
            )
            if not inflight and not idle and pending:
                raise DistributedError(
                    f"no workers left with {remaining} tasks outstanding"
                )
            # Dispatch (retried tasks wait out their backoff first).
            now = time.monotonic()
            deferred: List[int] = []
            while pending and idle:
                index = pending.popleft()
                if eligible_at.get(index, 0.0) > now:
                    deferred.append(index)
                    continue
                worker_id = idle.popleft()
                attempts[index] += 1
                try:
                    future = self.submit(
                        worker_id, {**tasks[index], "task_id": index}
                    )
                except TransportError as exc:
                    requeue(index, str(exc))
                    continue
                inflight[index] = (worker_id, future)
            pending.extendleft(reversed(deferred))
            # Collect: each task's reply resolves its own future, so
            # worker death (the future fails with TransportError) and
            # stale duplicates need no task-id bookkeeping here.
            progressed = False
            for index, (worker_id, future) in list(inflight.items()):
                if not future.done():
                    continue
                progressed = True
                del inflight[index]
                account(future)
                error = future.exception()
                if error is not None:
                    # Worker died mid-task; it does not rejoin the
                    # idle pool, so the retry lands elsewhere.
                    requeue(index, str(error))
                    continue
                message = future.result()
                idle.append(worker_id)
                if message.get("type") == "error":
                    requeue(
                        index,
                        f"worker error: {message.get('error')}",
                    )
                elif message.get("type") != "result":
                    requeue(
                        index,
                        f"unexpected reply {message.get('type')!r}",
                    )
                elif message.get("ok"):
                    results[index] = message
                    remaining -= 1
                else:
                    requeue(index, message.get("error", "worker error"))
            if not progressed and remaining:
                if inflight:
                    self._dispatcher.wait_any(
                        [future for _w, future in inflight.values()],
                        timeout=self._poll_interval,
                    )
                else:
                    # Everything outstanding is waiting out a backoff:
                    # sleep until the earliest task becomes eligible.
                    now = time.monotonic()
                    soonest = min(
                        (eligible_at.get(i, now) for i in pending),
                        default=now,
                    )
                    time.sleep(
                        min(max(soonest - now, 0.0), self._poll_interval)
                    )
        return [reply for reply in results if reply is not None]


# ----------------------------------------------------------------------
# Batch: distributed shard builds
# ----------------------------------------------------------------------

@dataclass
class DistributedBuild:
    """Outcome of a distributed build: folded summary plus provenance.

    ``bytes_on_wire``/``frames_sent`` count this build's own frames
    (both directions), summed from the per-request futures on the
    async dispatch path -- exact even when other operations share the
    transport concurrently; ``shm_bytes`` counts payloads that moved
    out-of-band through shared memory instead.
    """

    summary: object
    num_workers: int
    num_tasks: int
    transport: str
    shard_sizes: List[int] = field(default_factory=list)
    retries: int = 0
    bytes_on_wire: int = 0
    frames_sent: int = 0
    shm_bytes: int = 0


def distributed_build(
    method: str,
    dataset: Dataset,
    s: int,
    rng: Optional[np.random.Generator] = None,
    *,
    num_workers: Optional[int] = None,
    transport: Union[str, BaseTransport] = "inprocess",
    strategy: str = "contiguous",
    max_retries: int = 2,
    coordinator: Optional[Coordinator] = None,
) -> DistributedBuild:
    """Build one summary per shard on remote workers and fold.

    Deterministic parity with the in-process engine: given the same
    ``rng`` state, shard count and strategy, the folded summary is
    *bit-identical* to ``build_sharded``'s -- per-shard seeds are
    drawn the same way, workers run the same registry builders, the
    codec round trip is bit-exact, and the fold consumes the same
    generator.  Which transport carried the bytes cannot matter.

    Pass an existing ``coordinator`` to amortize fleet startup across
    builds; otherwise a fleet is started and torn down per call.
    """
    if rng is None:
        rng = np.random.default_rng()
    if num_workers is None:
        num_workers = (
            coordinator.num_workers if coordinator is not None
            else _default_workers()
        )
    shards = shard_dataset(dataset, num_workers, strategy=strategy)
    if not shards:
        shards = [dataset]
    if len(shards) > 1 and not registry.is_mergeable(method):
        raise ValueError(
            f"method {method!r} does not build mergeable summaries; "
            "use num_workers=1 or a mergeable method"
        )
    seeds = [int(seed) for seed in rng.integers(0, 2**63, size=len(shards))]
    domain_spec = codec.encode_domain(dataset.domain)
    tasks = [
        {
            "type": "build",
            "method": method,
            "size": int(s),
            "seed": seed,
            "coords": shard.coords,
            "weights": shard.weights,
            "domain": domain_spec,
        }
        for shard, seed in zip(shards, seeds)
    ]
    own = coordinator is None
    coord = coordinator or Coordinator(
        transport, num_workers, max_retries=max_retries
    )
    wire: Dict[str, int] = {}
    try:
        replies = coord.run_tasks(tasks, wire=wire)
        # Reply frames are immutable bytes that live as long as any
        # view of them: decode the shipped summaries zero-copy.
        summaries = [
            codec.from_bytes(reply["summary"], copy=False)
            for reply in replies
        ]
    finally:
        if own:
            coord.close()
    merged = fold_merge(summaries, s=s, rng=rng)
    return DistributedBuild(
        summary=merged,
        num_workers=coord.num_workers,
        num_tasks=len(tasks),
        transport=coord.transport.name,
        shard_sizes=[int(reply["size"]) for reply in replies],
        retries=coord.retries,
        bytes_on_wire=(
            wire.get("bytes_sent", 0) + wire.get("bytes_received", 0)
        ),
        frames_sent=wire.get("frames_sent", 0),
        shm_bytes=wire.get("shm_bytes", 0),
    )


# ----------------------------------------------------------------------
# Streaming: distributed micro-batch ingest
# ----------------------------------------------------------------------

class _Slice:
    """One logical shard of the distributed stream.

    A slice owns its seed (``derive_seed(seed, "worker", sid)``), one
    or two host workers, and -- depending on the recovery mode -- a
    bounded replay log of the batches routed to it plus the latest
    checkpointed worker state.  Losing a host loses nothing the slice
    cannot rebuild.
    """

    __slots__ = (
        "sid", "hosts", "batches", "items", "replay",
        "ckpt_state", "ckpt_items", "ckpt_batches",
    )

    def __init__(self, sid: int, hosts: List[int], replay_log: int):
        self.sid = sid
        self.hosts = list(hosts)  # primary first
        self.batches = 0          # batches routed to this slice
        self.items = 0
        self.replay: deque = deque(maxlen=max(1, int(replay_log)))
        self.ckpt_state: Optional[dict] = None
        self.ckpt_items = 0
        self.ckpt_batches = 0     # batches covered by ckpt_state


class DistributedIngest:
    """Route a micro-batch stream across workers; fold snapshots on demand.

    The stream is cut into per-worker *slices*: every slice holds one
    incremental summary per method (or a full
    :class:`~repro.stream.engine.StreamEngine` when a ``window`` spec
    is given, so tumbling/sliding panes seal at the same event-time
    boundaries they would in process), seeded independently via
    :func:`~repro.stream.incremental.derive_seed` -- slices are
    shard-equivalent and fold with ``merge`` exactly like panes do.
    ``ingest`` messages are fire-and-forget for throughput;
    :meth:`snapshot` is the barrier that collects and folds, in slice
    order, so results are reproducible across transports and restarts.

    Crash recovery (``recovery=``):

    * ``"none"`` (default) -- a lost worker loses its slice; estimates
      stay unbiased over the survivors (the historical behavior).
    * ``"replay"`` -- each slice keeps a bounded replay log
      (``replay_log`` batches) on the coordinator; on worker death the
      slice is rebuilt on a surviving worker -- from the last
      checkpointed state plus the logged tail if :meth:`checkpoint`
      ran (``checkpoint_interval`` automates it), else from the full
      log -- with exponential-backoff-plus-jitter retries.  The
      rebuilt slice is bit-identical to one that never moved.
    * ``"replicate"`` -- slices run on two workers at once (halving
      effective parallelism); losing the primary promotes the sibling,
      no replay needed.  Losing both hosts loses the slice.

    With a :class:`~repro.durable.CheckpointStore` attached, every
    checkpoint is also persisted (per-slice stream keys under
    ``stream_id``), so slice state survives the coordinator too.
    """

    def __init__(
        self,
        domain,
        methods: Union[str, Sequence[str]],
        size: int,
        *,
        num_workers: Optional[int] = None,
        transport: Union[str, BaseTransport] = "inprocess",
        seed: int = 0,
        stream_id: str = "live",
        coordinator: Optional[Coordinator] = None,
        window=None,
        recovery: str = "none",
        replay_log: int = 1024,
        checkpoint_interval: Optional[int] = None,
        store=None,
    ):
        if isinstance(methods, str):
            methods = [methods]
        self._methods = list(methods)
        if not self._methods:
            raise ValueError("need at least one method")
        if recovery not in ("none", "replay", "replicate"):
            raise ValueError(
                f"unknown recovery mode {recovery!r}; "
                "have 'none', 'replay', 'replicate'"
            )
        self._domain = domain
        self._size = int(size)
        self._seed = int(seed)
        self._stream_id = stream_id
        self._window = window
        self._recovery = recovery
        self._checkpoint_interval = (
            int(checkpoint_interval) if checkpoint_interval else None
        )
        self._store = store
        self._own_coordinator = coordinator is None
        self._coordinator = coordinator or Coordinator(
            transport, num_workers
        )
        self._obs = self._coordinator._obs
        self._recovered_ctr = self._obs.counter(
            "coordinator.slices_recovered"
        )
        self._replayed_ctr = self._obs.counter(
            "coordinator.batches_replayed"
        )
        self._version = 0
        self._items = 0
        self._next_request = 0
        self._round_robin = 0
        self._snap_cache: Optional[tuple] = None  # (version, {m: snaps})
        self._fold_cache: Dict[str, tuple] = {}  # method -> (ver, folded)
        self._domain_spec = codec.encode_domain(domain)
        workers = self._coordinator.alive_workers()
        if recovery == "replicate":
            self._slices = [
                _Slice(sid, workers[2 * sid:2 * sid + 2], replay_log)
                for sid in range((len(workers) + 1) // 2)
            ]
        else:
            self._slices = [
                _Slice(sid, [worker_id], replay_log)
                for sid, worker_id in enumerate(workers)
            ]
        asked = set()
        for sl in self._slices:
            for worker_id in sl.hosts:
                self._coordinator.send(
                    worker_id, self._open_message(sl)
                )
                asked.add(worker_id)
        # Shrinking target: a worker dying mid-open must not stall the
        # constructor until the deadline (same pattern as _collect).
        opened = self._coordinator.gather(
            lambda: len(
                asked & set(self._coordinator.alive_workers())
            ),
            match=lambda m: (m.get("type") == "opened"
                             and m.get("stream", "").startswith(
                                 self._stream_id)),
        )
        failed = [m for m in opened if not m.get("ok")]
        if failed:
            self.close()
            raise DistributedError(
                f"open_stream failed: {failed[0].get('error')}"
            )

    # ------------------------------------------------------------------
    # Slice plumbing
    # ------------------------------------------------------------------
    def _slice_key(self, sl: _Slice) -> str:
        return f"{self._stream_id}/s{sl.sid}"

    def _window_spec(self) -> Optional[dict]:
        if self._window is None:
            return None
        return {
            "kind": self._window.kind,
            "width": self._window.width,
            "pane": self._window.pane,
        }

    def _open_message(self, sl: _Slice) -> dict:
        return {
            "type": "open_stream",
            "stream": self._slice_key(sl),
            "methods": self._methods,
            "size": self._size,
            "seed": derive_seed(self._seed, "worker", sl.sid),
            "domain": self._domain_spec,
            "window": self._window_spec(),
        }

    def _live_hosts(self, sl: _Slice) -> List[int]:
        alive = set(self._coordinator.alive_workers())
        return [h for h in sl.hosts if h in alive]

    def _ensure_host(self, sl: _Slice) -> Optional[int]:
        """A live host for the slice, recovering it if the mode allows.

        Returns ``None`` when the slice is unrecoverably lost under
        ``recovery="none"`` (the caller drops it, the historical
        behavior); raises :class:`DistributedError` when a recovering
        mode runs out of options.
        """
        hosts = self._live_hosts(sl)
        if hosts:
            if hosts != sl.hosts:
                # A replica died (or the primary did, under
                # "replicate"): promote the survivors in place.
                sl.hosts = hosts
            return hosts[0]
        if self._recovery == "none":
            return None
        if self._recovery == "replicate":
            raise DistributedError(
                f"slice {sl.sid} lost both replicas"
            )
        return self._recover_slice(sl)

    def _recover_slice(self, sl: _Slice) -> int:
        """Rebuild a dead slice on a surviving worker (replay mode)."""
        if sl.replay and sl.replay[0]["index"] > sl.ckpt_batches + 1:
            raise DistributedError(
                f"slice {sl.sid} cannot be replayed exactly: the "
                f"replay log starts at batch {sl.replay[0]['index']} "
                f"but the last checkpoint covers only "
                f"{sl.ckpt_batches}; raise replay_log or lower "
                "checkpoint_interval"
            )
        last_error = "no live workers"
        max_attempts = self._coordinator._max_retries + 1
        for attempt in range(1, max_attempts + 1):
            host = self._pick_host(sl)
            if host is None:
                raise DistributedError(
                    f"slice {sl.sid} cannot be recovered: "
                    "no live workers left"
                )
            if attempt > 1:
                time.sleep(self._coordinator.retry_delay(attempt - 1))
            try:
                if sl.ckpt_state is not None:
                    message = {
                        **self._open_message(sl),
                        "type": "restore_stream",
                        "state": sl.ckpt_state,
                        "items": sl.ckpt_items,
                    }
                    expect = "restored"
                else:
                    message = self._open_message(sl)
                    expect = "opened"
                future = self._coordinator.submit(host, message)
                reply = future.result(timeout=60.0)
                if reply.get("type") != expect or not reply.get("ok"):
                    last_error = reply.get("error", f"bad reply {reply!r}")
                    continue
                for entry in sl.replay:
                    if entry["index"] <= sl.ckpt_batches:
                        continue
                    self._coordinator.send(
                        host, self._ingest_message(sl, entry["batch"])
                    )
                    if self._obs.enabled:
                        self._replayed_ctr.inc()
                sl.hosts = [host]
                if self._obs.enabled:
                    self._recovered_ctr.inc()
                return host
            except (TransportError, TimeoutError) as exc:
                last_error = str(exc)
        raise DistributedError(
            f"slice {sl.sid} recovery failed after {max_attempts} "
            f"attempts: {last_error}"
        )

    def _pick_host(self, sl: _Slice) -> Optional[int]:
        """The least-loaded live worker (fewest slices hosted)."""
        alive = self._coordinator.alive_workers()
        if not alive:
            return None
        load = {worker_id: 0 for worker_id in alive}
        for other in self._slices:
            for host in other.hosts:
                if host in load and other.sid != sl.sid:
                    load[host] += 1
        return min(alive, key=lambda worker_id: (load[worker_id],
                                                 worker_id))

    def _ingest_message(self, sl: _Slice, batch: MicroBatch) -> dict:
        message = {
            "type": "ingest",
            "stream": self._slice_key(sl),
            "coords": batch.coords,
            "weights": batch.weights,
        }
        if batch.timestamp is not None:
            message["timestamp"] = batch.timestamp
        if batch.timestamps is not None:
            message["timestamps"] = batch.timestamps
        return message

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def process(self, batch) -> None:
        """Route one micro-batch to the next slice (round-robin).

        Accepts every batch shape :class:`~repro.stream.MicroBatch`
        coerces.  Timestamps ride along; with a ``window`` spec the
        worker-side engines use them for pane assignment, without one
        the workers keep landmark (all-time) state.
        """
        batch = MicroBatch.coerce(batch)
        slices = [
            sl for sl in self._slices
            if self._recovery != "none" or self._live_hosts(sl)
        ]
        if not slices:
            raise DistributedError("no live workers to ingest into")
        sl = slices[self._round_robin % len(slices)]
        self._round_robin += 1
        host = self._ensure_host(sl)
        if host is None:  # pragma: no cover - raced death under "none"
            raise DistributedError("no live workers to ingest into")
        message = self._ingest_message(sl, batch)
        targets = sl.hosts if self._recovery == "replicate" else [host]
        for target in targets:
            try:
                self._coordinator.send(target, message)
            except TransportError:
                if target == host and self._recovery == "none":
                    raise
                # A replica died mid-send: the survivor carries on.
        sl.batches += 1
        sl.items += batch.n
        if self._recovery == "replay":
            sl.replay.append({"index": sl.batches, "batch": batch})
        self._items += batch.n
        self._version += 1
        if (
            self._checkpoint_interval
            and self._version % self._checkpoint_interval == 0
        ):
            self.checkpoint()

    def dispatch(self, source, limit: Optional[int] = None) -> int:
        """Consume micro-batches from any iterable source.

        Returns the number of items dispatched from this call;
        ``limit`` caps the number of batches drawn.
        """
        before = self._items
        for count, batch in enumerate(source, start=1):
            self.process(batch)
            if limit is not None and count >= limit:
                break
        return self._items - before

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Pull every slice's live state up to the coordinator.

        The checkpointed state anchors recovery (only the batches
        after it need replaying, so the bounded replay log suffices
        for arbitrarily long streams) and, when a durable store is
        attached, is persisted under the slice's stream key.
        """
        requests: Dict[int, tuple] = {}
        asked = set()
        for sl in self._slices:
            host = self._ensure_host(sl)
            if host is None:
                continue  # recovery="none": lost slices stay lost
            request_id = self._next_request
            self._next_request += 1
            self._coordinator.send(host, {
                "type": "checkpoint",
                "stream": self._slice_key(sl),
                "request_id": request_id,
            })
            # The state covers everything sent so far: dispatcher
            # queues are per-worker FIFO, so the checkpoint runs after
            # every prior ingest frame.
            requests[request_id] = (sl, sl.batches)
            asked.add(host)
        replies = self._coordinator.gather(
            lambda: len(
                asked & set(self._coordinator.alive_workers())
            ),
            match=lambda m: (m.get("type") == "checkpoint_state"
                             and m.get("request_id") in requests),
        )
        for reply in replies:
            if not reply.get("ok"):
                raise DistributedError(
                    f"checkpoint failed: {reply.get('error')}"
                )
            sl, batches = requests[reply["request_id"]]
            sl.ckpt_state = reply["state"]
            sl.ckpt_items = int(reply.get("items", 0))
            sl.ckpt_batches = batches
            while sl.replay and sl.replay[0]["index"] <= batches:
                sl.replay.popleft()
            if self._store is not None:
                key = self._slice_key(sl)
                seq = self._store.append(key, "state", {
                    "state": sl.ckpt_state,
                    "items": sl.ckpt_items,
                    "batches": sl.ckpt_batches,
                })
                self._store.truncate(key, below_seq=seq)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _collect(self) -> Dict[str, list]:
        """Per-method slice snapshots at the current version (cached).

        Snapshots are gathered per slice and folded in slice order, so
        the result does not depend on reply arrival order.  A host
        dying mid-collect is recovered (mode permitting) and re-asked;
        under ``recovery="none"`` its slice is dropped -- the
        historical lossy behavior.
        """
        if (
            self._snap_cache is not None
            and self._snap_cache[0] == self._version
        ):
            return self._snap_cache[1]
        if not self._coordinator.alive_workers():
            raise DistributedError("no live workers to snapshot")
        by_slice: Dict[int, dict] = {}
        todo = list(self._slices)
        rounds = self._coordinator._max_retries + 2
        for _round in range(rounds):
            requests: Dict[int, _Slice] = {}
            for sl in todo:
                host = self._ensure_host(sl)
                if host is None:
                    continue  # lost under recovery="none"
                request_id = self._next_request
                self._next_request += 1
                requests[request_id] = sl
                self._coordinator.send(host, {
                    "type": "snapshot",
                    "stream": self._slice_key(sl),
                    "request_id": request_id,
                })
            if not requests:
                break
            # Workers that die mid-collect shrink the reply target
            # every poll round instead of stalling until the deadline.
            hosts = {sl.hosts[0]: rid for rid, sl in requests.items()}
            replies = self._coordinator.gather(
                lambda: len(
                    set(hosts) & set(self._coordinator.alive_workers())
                ),
                match=lambda m: (m.get("type") == "snapshots"
                                 and m.get("request_id") in requests),
            )
            failed = [m for m in replies if not m.get("ok")]
            if failed:
                raise DistributedError(
                    f"snapshot failed: {failed[0].get('error')}"
                )
            for reply in replies:
                sl = requests[reply["request_id"]]
                by_slice[sl.sid] = reply["summaries"]
            todo = [
                sl for sl in self._slices if sl.sid not in by_slice
            ]
            if self._recovery == "none":
                break  # survivors answered; lost slices stay lost
            if not todo:
                break
        else:
            raise DistributedError(
                f"snapshot could not cover slices "
                f"{[sl.sid for sl in todo]}"
            )
        if not by_slice:
            raise DistributedError("no live workers to snapshot")
        per_method: Dict[str, list] = {name: [] for name in self._methods}
        for sid in sorted(by_slice):
            for name, frame in by_slice[sid].items():
                # Snapshot frames are immutable bytes kept alive by
                # their views: zero-copy decode feeds the frontend's
                # LRU snapshot cache without duplicating state arrays.
                per_method[name].append(codec.from_bytes(frame, copy=False))
        self._snap_cache = (self._version, per_method)
        return per_method

    def snapshot(self, method: str):
        """The folded queryable summary for ``method`` right now."""
        if method not in self._methods:
            raise KeyError(
                f"method {method!r} not registered; have {self._methods}"
            )
        cached = self._fold_cache.get(method)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        snaps = self._collect()[method]
        folded = self._fold(method, snaps)
        self._fold_cache[method] = (self._version, folded)
        return folded

    def _fold(self, method: str, snaps: list):
        rng = np.random.default_rng(
            derive_seed(self._seed, "fold", method, self._version)
        )
        return fold_snapshots(snaps, size=self._size, rng=rng)

    # ------------------------------------------------------------------
    # Queries / introspection
    # ------------------------------------------------------------------
    def query_many_now(self, queries: Sequence) -> Dict[str, List[float]]:
        """Live estimates for a query battery, per method.

        The battery is compiled into one shared
        :class:`~repro.structures.ranges.QueryPlan`, so the bounds
        stacking is paid once rather than once per method.
        """
        plan = compile_query_plan(queries)
        return {
            method: list(self.snapshot(method).query_many(plan))
            for method in self._methods
        }

    @property
    def methods(self) -> List[str]:
        return list(self._methods)

    @property
    def version(self) -> int:
        """Counter bumped per dispatched batch (snapshot cache key)."""
        return self._version

    @property
    def items_dispatched(self) -> int:
        return self._items

    def close(self) -> None:
        if self._own_coordinator:
            self._coordinator.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
