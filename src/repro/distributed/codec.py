"""Versioned compact wire codecs for summaries and control messages.

The distributed subsystem ships summaries and task/result messages as
raw bytes over pluggable transports (queues, pipes, sockets), so it
needs a serialization layer that is

* **compact** -- NumPy arrays travel as raw buffers plus a dtype/shape
  header, not as pickled objects;
* **versioned** -- every frame starts with a magic marker and a format
  version byte, so a reader can reject frames from an incompatible
  peer instead of mis-parsing them;
* **bit-exact** -- a summary decoded from its frame answers every
  query identically to the original and merges identically, which is
  what makes distributed builds statistically indistinguishable from
  local ones (see the round-trip test suite);
* **self-describing** -- frames carry the summary's wire tag (from
  :func:`repro.engine.registry.register_codec`), so a coordinator can
  decode whatever a worker ships without out-of-band type knowledge.

Two layers:

* :func:`encode_value` / :func:`decode_value` -- a small tagged binary
  format for the primitives summary state is made of (``None``, bools,
  ints of any size, floats, strings, bytes, lists, tuples, dicts, and
  ndarrays).  Deliberately *not* pickle: no code execution on decode,
  stable across Python versions.
* :func:`to_bytes` / :func:`from_bytes` -- summary frames: magic +
  version + wire tag + the encoded ``to_state()`` dict of the summary
  (the codec hooks registered next to each summary class).
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

import numpy as np

from repro.engine import registry
from repro.structures.hierarchy import (
    BitHierarchy,
    ExplicitHierarchy,
    RadixHierarchy,
)
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain

#: Frame magic for summary frames ("RePro SUMmary").
MAGIC = b"RSUM"
#: Current wire format version.  Bump on any incompatible change.
WIRE_VERSION = 1

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class CodecError(ValueError):
    """Malformed, truncated, or incompatible wire data."""


class VersionMismatchError(CodecError):
    """The frame was produced by an incompatible wire format version."""


class TruncatedPayloadError(CodecError):
    """The data ends before the structure it announces is complete."""


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

def _encode_into(value: Any, out: list) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            # Arbitrary-precision ints (e.g. 128-bit PCG64 state words).
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(b"I")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif isinstance(value, (float, np.floating)):
        out.append(b"f")
        out.append(_F64.pack(float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(b"b")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        dtype = arr.dtype.str.encode("ascii")
        out.append(b"a")
        out.append(_U8.pack(len(dtype)))
        out.append(dtype)
        out.append(_U8.pack(arr.ndim))
        for dim in arr.shape:
            out.append(_U32.pack(dim))
        out.append(arr.tobytes())
    elif isinstance(value, (list, tuple)):
        out.append(b"l" if isinstance(value, list) else b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise CodecError(
            f"cannot encode {type(value).__name__} on the wire"
        )


def encode_value(value: Any) -> bytes:
    """Encode one value (summary state, message dict) to bytes."""
    out: list = []
    _encode_into(value, out)
    return b"".join(out)


class _Reader:
    """Cursor over a byte buffer with strict bounds checking."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise TruncatedPayloadError(
                f"need {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def value(self) -> Any:
        tag = self.take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return _I64.unpack(self.take(8))[0]
        if tag == b"I":
            return int.from_bytes(self.take(self.u32()), "little",
                                  signed=True)
        if tag == b"f":
            return _F64.unpack(self.take(8))[0]
        if tag == b"s":
            return self.take(self.u32()).decode("utf-8")
        if tag == b"b":
            return self.take(self.u32())
        if tag == b"a":
            dtype = np.dtype(self.take(self.u8()).decode("ascii"))
            shape = tuple(self.u32() for _ in range(self.u8()))
            count = 1
            for dim in shape:
                count *= dim
            raw = self.take(count * dtype.itemsize)
            # Copy: frombuffer views are read-only and pin the frame.
            return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        if tag in (b"l", b"t"):
            items = [self.value() for _ in range(self.u32())]
            return items if tag == b"l" else tuple(items)
        if tag == b"d":
            count = self.u32()
            out = {}
            for _ in range(count):
                key = self.value()
                out[key] = self.value()
            return out
        raise CodecError(f"unknown value tag {tag!r} at offset {self.pos - 1}")


def decode_value(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_value` (strict)."""
    reader = _Reader(bytes(data))
    value = reader.value()
    if reader.pos != len(reader.data):
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after value"
        )
    return value


# ----------------------------------------------------------------------
# Summary frames
# ----------------------------------------------------------------------

def to_bytes(summary) -> bytes:
    """Serialize a summary into a versioned, self-describing frame.

    The summary's class must be registered with
    :func:`repro.engine.registry.register_codec`; its ``to_state()``
    hook provides the state, this layer provides the framing.
    """
    tag = registry.codec_tag(summary).encode("utf-8")
    if len(tag) > 255:
        raise CodecError("codec tag too long")
    return b"".join([
        MAGIC,
        _U8.pack(WIRE_VERSION),
        _U8.pack(len(tag)),
        tag,
        encode_value(summary.to_state()),
    ])


def from_bytes(data: bytes):
    """Reconstruct a summary from a frame produced by :func:`to_bytes`."""
    reader = _Reader(bytes(data))
    magic = reader.take(4)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r}")
    version = reader.u8()
    if version != WIRE_VERSION:
        raise VersionMismatchError(
            f"frame is wire version {version}, this reader speaks "
            f"{WIRE_VERSION}"
        )
    tag = reader.take(reader.u8()).decode("utf-8")
    cls = registry.codec_class(tag)
    state = reader.value()
    if reader.pos != len(reader.data):
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after frame"
        )
    return cls.from_state(state)


# ----------------------------------------------------------------------
# Domain specs (workers rebuild shard datasets from these)
# ----------------------------------------------------------------------

def encode_domain(domain: ProductDomain) -> list:
    """A :class:`ProductDomain` as a codec-friendly axis-spec list."""
    axes = []
    for axis in domain.axes:
        if isinstance(axis, BitHierarchy):
            axes.append(("bits", axis.bits))
        elif isinstance(axis, RadixHierarchy):
            axes.append(("radix", tuple(axis.branchings)))
        elif isinstance(axis, OrderedDomain):
            axes.append(("order", axis.size))
        else:
            raise CodecError(
                f"cannot encode domain axis {type(axis).__name__}"
            )
    return axes


def decode_domain(axes: list) -> ProductDomain:
    """Rebuild a :class:`ProductDomain` from :func:`encode_domain`."""
    decoded = []
    for kind, spec in axes:
        if kind == "bits":
            decoded.append(BitHierarchy(int(spec)))
        elif kind == "radix":
            decoded.append(ExplicitHierarchy([int(b) for b in spec]))
        elif kind == "order":
            decoded.append(OrderedDomain(int(spec)))
        else:
            raise CodecError(f"unknown domain axis kind {kind!r}")
    return ProductDomain(decoded)


# ----------------------------------------------------------------------
# Control messages (tasks, results, stream ops)
# ----------------------------------------------------------------------

#: Magic for control-message frames ("RePro MSG").
MSG_MAGIC = b"RMSG"


def encode_message(message: dict) -> bytes:
    """Frame one coordinator/worker control message."""
    if not isinstance(message, dict) or "type" not in message:
        raise CodecError("messages must be dicts with a 'type' field")
    return b"".join([
        MSG_MAGIC,
        _U8.pack(WIRE_VERSION),
        encode_value(message),
    ])


def decode_message(data: bytes) -> dict:
    """Decode one control message frame."""
    reader = _Reader(bytes(data))
    magic = reader.take(4)
    if magic != MSG_MAGIC:
        raise CodecError(f"bad message magic {magic!r}")
    version = reader.u8()
    if version != WIRE_VERSION:
        raise VersionMismatchError(
            f"message is wire version {version}, this reader speaks "
            f"{WIRE_VERSION}"
        )
    message = reader.value()
    if reader.pos != len(reader.data):
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after message"
        )
    if not isinstance(message, dict) or "type" not in message:
        raise CodecError("decoded message lacks a 'type' field")
    return message
