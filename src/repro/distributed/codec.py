"""Versioned compact wire codecs for summaries and control messages.

The distributed subsystem ships summaries and task/result messages as
raw bytes over pluggable transports (queues, pipes, sockets), so it
needs a serialization layer that is

* **compact** -- NumPy arrays travel as raw buffers plus a dtype/shape
  header, not as pickled objects, and large arrays are additionally
  compressed with per-array codec flags (delta + zigzag varint for
  int64 coordinate arrays, byte-shuffle + zlib for float64 weights)
  whenever that actually saves bytes;
* **versioned** -- every frame starts with a magic marker and a format
  version byte, so a reader can reject frames from an incompatible
  peer instead of mis-parsing them;
* **bit-exact** -- a summary decoded from its frame answers every
  query identically to the original and merges identically, which is
  what makes distributed builds statistically indistinguishable from
  local ones (see the round-trip test suite);
* **self-describing** -- frames carry the summary's wire tag (from
  :func:`repro.engine.registry.register_codec`), so a coordinator can
  decode whatever a worker ships without out-of-band type knowledge.

Two layers:

* :func:`encode_value` / :func:`decode_value` -- a small tagged binary
  format for the primitives summary state is made of (``None``, bools,
  ints of any size, floats, strings, bytes, lists, tuples, dicts, and
  ndarrays).  Deliberately *not* pickle: no code execution on decode,
  stable across Python versions.
* :func:`to_bytes` / :func:`from_bytes` -- summary frames: magic +
  version + wire tag + the encoded ``to_state()`` dict of the summary
  (the codec hooks registered next to each summary class).

Wire version 2 adds the coded-array tag (see ``WIRE_FORMAT.md``);
encoding with ``compress=False`` emits byte-identical version-1 frames,
and this reader decodes both versions.  Decoding with ``copy=False``
returns read-only ``np.frombuffer`` views into the frame for raw
arrays instead of copying -- callers opt in when the frame outlives
the arrays (immutable ``bytes`` frames do; reused shared-memory
segments do not).
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Tuple, Union

import numpy as np

from repro.engine import registry
from repro.structures.hierarchy import (
    BitHierarchy,
    ExplicitHierarchy,
    RadixHierarchy,
)
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain

#: Frame magic for summary frames ("RePro SUMmary").
MAGIC = b"RSUM"
#: Current wire format version.  Bump on any incompatible change.
WIRE_VERSION = 2
#: The last wire version whose frames carried only raw arrays; frames
#: encoded with ``compress=False`` are stamped (and stay byte-identical
#: to) this version, so version-1 readers can still be fed by this
#: writer.
RAW_WIRE_VERSION = 1
#: Versions this reader decodes.
SUPPORTED_WIRE_VERSIONS = frozenset({1, 2})

#: Per-array codec ids carried by the coded-array tag.
CODEC_RAW = 0
CODEC_DELTA_VARINT = 1
CODEC_SHUFFLE_ZLIB = 2

#: Arrays below this raw byte size always travel raw: the coded-array
#: header plus codec overhead cannot pay for itself.
_MIN_CODED_BYTES = 128

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class CodecError(ValueError):
    """Malformed, truncated, or incompatible wire data."""


class VersionMismatchError(CodecError):
    """The frame was produced by an incompatible wire format version."""


class TruncatedPayloadError(CodecError):
    """The data ends before the structure it announces is complete."""


# ----------------------------------------------------------------------
# Array codecs
# ----------------------------------------------------------------------

def _encode_varints(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a uint64 vector into one uint8 payload.

    Vectorized: per-value byte counts come from nine threshold
    comparisons, byte offsets from one cumsum, and the payload is
    assembled in at most ten per-byte-position passes.
    """
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    lengths = np.ones(values.shape[0], dtype=np.int64)
    for group in range(1, 10):
        lengths += values >= (np.uint64(1) << np.uint64(7 * group))
    ends = np.cumsum(lengths)
    starts = ends - lengths
    payload = np.zeros(int(ends[-1]), dtype=np.uint8)
    for byte_index in range(10):
        mask = lengths > byte_index
        if not mask.any():
            break
        chunk = (
            (values[mask] >> np.uint64(7 * byte_index)) & np.uint64(0x7F)
        ).astype(np.uint8)
        more = (lengths[mask] - 1 > byte_index).astype(np.uint8)
        payload[starts[mask] + byte_index] = chunk | (more << 7)
    return payload


def _decode_varints(payload: np.ndarray, expected: int) -> np.ndarray:
    """Decode ``expected`` LEB128 values from a uint8 payload (strict)."""
    if payload.size and payload[-1] & 0x80:
        raise TruncatedPayloadError("varint payload ends mid-value")
    ends = np.flatnonzero((payload & 0x80) == 0)
    if ends.size != expected:
        raise CodecError(
            f"varint payload holds {ends.size} values, expected {expected}"
        )
    if expected == 0:
        return np.empty(0, dtype=np.uint64)
    starts = np.empty(expected, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > 10:
        raise CodecError("varint value exceeds 10 bytes")
    values = np.zeros(expected, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for byte_index in range(10):
            mask = lengths > byte_index
            if not mask.any():
                break
            chunk = payload[starts[mask] + byte_index].astype(np.uint64)
            values[mask] |= (
                (chunk & np.uint64(0x7F)) << np.uint64(7 * byte_index)
            )
    return values


def _delta_varint_encode(arr: np.ndarray) -> bytes:
    """Delta + zigzag + varint payload for a 64-bit integer array.

    Multi-dimensional arrays delta over the column-major (``F``) flat
    order: coordinate arrays are ``(n, d)`` with each column
    near-sorted, so column-wise deltas are the small ones.  All
    arithmetic is modular uint64, hence wraparound-safe for any input.
    """
    flat = np.ravel(arr, order="F" if arr.ndim > 1 else "C")
    bits = np.ascontiguousarray(flat).view(np.uint64)
    with np.errstate(over="ignore"):
        deltas = np.empty_like(bits)
        deltas[:1] = bits[:1]
        np.subtract(bits[1:], bits[:-1], out=deltas[1:])
        signed = deltas.view(np.int64)
        zigzag = ((signed << np.int64(1)) ^ (signed >> np.int64(63))).view(
            np.uint64
        )
    return _encode_varints(zigzag).tobytes()


def _delta_varint_decode(
    payload: np.ndarray, dtype: np.dtype, shape: Tuple[int, ...]
) -> np.ndarray:
    count = 1
    for dim in shape:
        count *= dim
    zigzag = _decode_varints(payload, count)
    with np.errstate(over="ignore"):
        signed = (
            (zigzag >> np.uint64(1))
            ^ (np.uint64(0) - (zigzag & np.uint64(1)))
        )
        bits = np.cumsum(signed, dtype=np.uint64)
    arr = bits.view(dtype)
    if len(shape) > 1:
        return arr.reshape(shape, order="F")
    return arr.reshape(shape)


def _shuffle_zlib_encode(arr: np.ndarray) -> bytes:
    """Byte-shuffle + zlib payload (float arrays).

    Transposing the ``(n, itemsize)`` byte matrix groups same-position
    bytes -- exponents with exponents -- which is what makes deflate
    bite on floating-point data.
    """
    data = np.ascontiguousarray(arr)
    itemsize = data.dtype.itemsize
    planes = np.frombuffer(data.tobytes(), dtype=np.uint8)
    shuffled = planes.reshape(-1, itemsize).T.tobytes()
    return zlib.compress(shuffled, 1)


def _shuffle_zlib_decode(
    payload: np.ndarray, dtype: np.dtype, shape: Tuple[int, ...]
) -> np.ndarray:
    try:
        shuffled = zlib.decompress(payload.tobytes())
    except zlib.error as exc:
        raise CodecError(f"corrupt compressed array payload: {exc}") from exc
    count = 1
    for dim in shape:
        count *= dim
    itemsize = dtype.itemsize
    if len(shuffled) != count * itemsize:
        raise CodecError(
            f"compressed array decodes to {len(shuffled)} bytes, "
            f"expected {count * itemsize}"
        )
    arr = np.empty(count, dtype=dtype)
    arr.view(np.uint8).reshape(count, itemsize)[...] = (
        np.frombuffer(shuffled, dtype=np.uint8).reshape(itemsize, count).T
    )
    return arr.reshape(shape)


def encode_array(arr: np.ndarray, codec_id: int) -> bytes:
    """The coded payload of ``arr`` under one specific codec id."""
    if codec_id == CODEC_DELTA_VARINT:
        return _delta_varint_encode(arr)
    if codec_id == CODEC_SHUFFLE_ZLIB:
        return _shuffle_zlib_encode(arr)
    raise CodecError(f"unknown array codec id {codec_id}")


def decode_array(
    payload, dtype: np.dtype, shape: Tuple[int, ...], codec_id: int
) -> np.ndarray:
    """Decode one coded payload back into a (fresh, writable) array."""
    raw = np.frombuffer(payload, dtype=np.uint8)
    if codec_id == CODEC_DELTA_VARINT:
        return _delta_varint_decode(raw, dtype, shape)
    if codec_id == CODEC_SHUFFLE_ZLIB:
        return _shuffle_zlib_decode(raw, dtype, shape)
    raise CodecError(f"unknown array codec id {codec_id}")


def choose_codec(arr: np.ndarray) -> Tuple[int, bytes]:
    """Pick the smallest wire representation for one array.

    Returns ``(codec_id, payload)``; ``(CODEC_RAW, b"")`` means no
    codec beats the raw buffer (the payload is then ``arr.tobytes()``
    under the raw tag).  A codec is kept only when its payload is
    *strictly* smaller than raw, so coded frames are never larger.
    """
    if arr.nbytes < _MIN_CODED_BYTES:
        return CODEC_RAW, b""
    dtype_str = arr.dtype.str
    if dtype_str in ("<i8", "<u8"):
        payload = _delta_varint_encode(arr)
        codec_id = CODEC_DELTA_VARINT
    elif dtype_str in ("<f8", "<f4"):
        payload = _shuffle_zlib_encode(arr)
        codec_id = CODEC_SHUFFLE_ZLIB
    else:
        return CODEC_RAW, b""
    if len(payload) < arr.nbytes:
        return codec_id, payload
    return CODEC_RAW, b""


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

def _encode_array_into(arr: np.ndarray, out: list, compress: bool) -> None:
    arr = np.ascontiguousarray(arr)
    dtype = arr.dtype.str.encode("ascii")
    codec_id, payload = (
        choose_codec(arr) if compress else (CODEC_RAW, b"")
    )
    if codec_id == CODEC_RAW:
        out.append(b"a")
    else:
        out.append(b"A")
    out.append(_U8.pack(len(dtype)))
    out.append(dtype)
    out.append(_U8.pack(arr.ndim))
    for dim in arr.shape:
        out.append(_U32.pack(dim))
    if codec_id == CODEC_RAW:
        out.append(arr.tobytes())
    else:
        out.append(_U8.pack(codec_id))
        out.append(_U32.pack(len(payload)))
        out.append(payload)


def _encode_into(value: Any, out: list, compress: bool) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            # Arbitrary-precision ints (e.g. 128-bit PCG64 state words).
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(b"I")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif isinstance(value, (float, np.floating)):
        out.append(b"f")
        out.append(_F64.pack(float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(b"b")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, np.ndarray):
        _encode_array_into(value, out, compress)
    elif isinstance(value, (list, tuple)):
        out.append(b"l" if isinstance(value, list) else b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out, compress)
    elif isinstance(value, dict):
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_into(key, out, compress)
            _encode_into(item, out, compress)
    else:
        raise CodecError(
            f"cannot encode {type(value).__name__} on the wire"
        )


def encode_value(value: Any, *, compress: bool = True) -> bytes:
    """Encode one value (summary state, message dict) to bytes.

    ``compress=False`` forces every array onto the raw tag -- the
    output is then byte-identical to what a wire-version-1 writer
    produced.
    """
    out: list = []
    _encode_into(value, out, compress)
    return b"".join(out)


def _as_buffer(data) -> Union[bytes, memoryview]:
    """Normalize frame input without copying immutable/shared buffers."""
    if isinstance(data, bytes):
        return data
    if isinstance(data, memoryview):
        return data.cast("B")
    # bytearray and friends are mutable: snapshot them.
    return bytes(data)


class _Reader:
    """Cursor over a byte buffer with strict bounds checking.

    Accepts ``bytes`` or a ``memoryview`` (shared-memory transports
    hand frames over as views).  With ``copy=False`` raw arrays come
    back as read-only views into the buffer; everything else is always
    detached.
    """

    __slots__ = ("data", "pos", "copy")

    def __init__(self, data, copy: bool = True):
        self.data = _as_buffer(data)
        self.pos = 0
        self.copy = copy

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise TruncatedPayloadError(
                f"need {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk if isinstance(chunk, bytes) else bytes(chunk)

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def _array_header(self) -> Tuple[np.dtype, Tuple[int, ...], int]:
        dtype = np.dtype(self.take(self.u8()).decode("ascii"))
        shape = tuple(self.u32() for _ in range(self.u8()))
        count = 1
        for dim in shape:
            count *= dim
        return dtype, shape, count

    def value(self) -> Any:
        tag = self.take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return _I64.unpack(self.take(8))[0]
        if tag == b"I":
            return int.from_bytes(self.take(self.u32()), "little",
                                  signed=True)
        if tag == b"f":
            return _F64.unpack(self.take(8))[0]
        if tag == b"s":
            return self.take(self.u32()).decode("utf-8")
        if tag == b"b":
            return self.take(self.u32())
        if tag == b"a":
            dtype, shape, count = self._array_header()
            nbytes = count * dtype.itemsize
            if self.pos + nbytes > len(self.data):
                raise TruncatedPayloadError(
                    f"array of {nbytes} bytes at offset {self.pos} "
                    f"exceeds the frame"
                )
            arr = np.frombuffer(
                self.data, dtype=dtype, count=count, offset=self.pos
            ).reshape(shape)
            self.pos += nbytes
            if self.copy:
                # Detached, writable -- safe whatever the frame's fate.
                return arr.copy()
            arr.flags.writeable = False
            return arr
        if tag == b"A":
            dtype, shape, count = self._array_header()
            codec_id = self.u8()
            payload = self.take(self.u32())
            # Coded payloads always decode into fresh writable arrays;
            # the zero-copy opt-out only concerns the raw tag.
            return decode_array(payload, dtype, shape, codec_id)
        if tag in (b"l", b"t"):
            items = [self.value() for _ in range(self.u32())]
            return items if tag == b"l" else tuple(items)
        if tag == b"d":
            count = self.u32()
            out = {}
            for _ in range(count):
                key = self.value()
                out[key] = self.value()
            return out
        raise CodecError(f"unknown value tag {tag!r} at offset {self.pos - 1}")


def decode_value(data, *, copy: bool = True) -> Any:
    """Decode bytes produced by :func:`encode_value` (strict).

    ``copy=False`` returns raw arrays as read-only views into ``data``
    -- the caller guarantees the buffer outlives them.
    """
    reader = _Reader(data, copy=copy)
    value = reader.value()
    if reader.pos != len(reader.data):
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after value"
        )
    return value


def _check_version(version: int, what: str) -> None:
    if version not in SUPPORTED_WIRE_VERSIONS:
        supported = sorted(SUPPORTED_WIRE_VERSIONS)
        raise VersionMismatchError(
            f"{what} is wire version {version}, this reader speaks "
            f"{supported}"
        )


# ----------------------------------------------------------------------
# Summary frames
# ----------------------------------------------------------------------

def to_bytes(summary, *, compress: bool = True) -> bytes:
    """Serialize a summary into a versioned, self-describing frame.

    The summary's class must be registered with
    :func:`repro.engine.registry.register_codec`; its ``to_state()``
    hook provides the state, this layer provides the framing.
    ``compress=False`` emits a byte-identical version-1 (all-raw)
    frame -- used by zero-copy transports, where raw views beat any
    decompression.
    """
    tag = registry.codec_tag(summary).encode("utf-8")
    if len(tag) > 255:
        raise CodecError("codec tag too long")
    return b"".join([
        MAGIC,
        _U8.pack(WIRE_VERSION if compress else RAW_WIRE_VERSION),
        _U8.pack(len(tag)),
        tag,
        encode_value(summary.to_state(), compress=compress),
    ])


def from_bytes(data, *, copy: bool = True):
    """Reconstruct a summary from a frame produced by :func:`to_bytes`."""
    reader = _Reader(data, copy=copy)
    magic = reader.take(4)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r}")
    _check_version(reader.u8(), "frame")
    tag = reader.take(reader.u8()).decode("utf-8")
    cls = registry.codec_class(tag)
    state = reader.value()
    if reader.pos != len(reader.data):
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after frame"
        )
    return cls.from_state(state)


# ----------------------------------------------------------------------
# Domain specs (workers rebuild shard datasets from these)
# ----------------------------------------------------------------------

def encode_domain(domain: ProductDomain) -> list:
    """A :class:`ProductDomain` as a codec-friendly axis-spec list."""
    axes = []
    for axis in domain.axes:
        if isinstance(axis, BitHierarchy):
            axes.append(("bits", axis.bits))
        elif isinstance(axis, RadixHierarchy):
            axes.append(("radix", tuple(axis.branchings)))
        elif isinstance(axis, OrderedDomain):
            axes.append(("order", axis.size))
        else:
            raise CodecError(
                f"cannot encode domain axis {type(axis).__name__}"
            )
    return axes


def decode_domain(axes: list) -> ProductDomain:
    """Rebuild a :class:`ProductDomain` from :func:`encode_domain`."""
    decoded = []
    for kind, spec in axes:
        if kind == "bits":
            decoded.append(BitHierarchy(int(spec)))
        elif kind == "radix":
            decoded.append(ExplicitHierarchy([int(b) for b in spec]))
        elif kind == "order":
            decoded.append(OrderedDomain(int(spec)))
        else:
            raise CodecError(f"unknown domain axis kind {kind!r}")
    return ProductDomain(decoded)


# ----------------------------------------------------------------------
# Control messages (tasks, results, stream ops)
# ----------------------------------------------------------------------

#: Magic for control-message frames ("RePro MSG").
MSG_MAGIC = b"RMSG"


def encode_message(message: dict, *, compress: bool = True) -> bytes:
    """Frame one coordinator/worker control message."""
    if not isinstance(message, dict) or "type" not in message:
        raise CodecError("messages must be dicts with a 'type' field")
    return b"".join([
        MSG_MAGIC,
        _U8.pack(WIRE_VERSION if compress else RAW_WIRE_VERSION),
        encode_value(message, compress=compress),
    ])


def decode_message(data, *, copy: bool = True) -> dict:
    """Decode one control message frame.

    ``copy=False`` returns raw arrays as read-only views into ``data``
    (see :func:`decode_value`).
    """
    reader = _Reader(data, copy=copy)
    magic = reader.take(4)
    if magic != MSG_MAGIC:
        raise CodecError(f"bad message magic {magic!r}")
    _check_version(reader.u8(), "message")
    message = reader.value()
    if reader.pos != len(reader.data):
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing bytes after message"
        )
    if not isinstance(message, dict) or "type" not in message:
        raise CodecError("decoded message lacks a 'type' field")
    return message
