"""Tail bounds and sample-size bounds (paper Appendix A).

Chernoff bounds apply to both Poisson IPPS and VarOpt samples (the
latter by the negative-association style arguments of [18, 23, 10, 8]),
so the number of samples hitting any subset concentrates around its
expectation; combined with bounded VC dimension this yields the
O(sqrt(s log s)) structure-oblivious discrepancy that the
structure-aware schemes beat.
"""

from __future__ import annotations

import math


def chernoff_upper_tail(mu: float, a: float) -> float:
    """Bound on ``Pr[X >= a]`` for a sum of [0,1] vars with mean ``mu``.

    The simplified form of paper eq. (2): ``e^(a-mu) * (mu/a)^a`` for
    ``a > mu`` (returns 1.0 when the bound is vacuous).
    """
    if a <= mu or mu < 0:
        return 1.0
    if mu == 0:
        return 0.0
    log_bound = (a - mu) + a * math.log(mu / a)
    return min(1.0, math.exp(log_bound))


def chernoff_lower_tail(mu: float, a: float) -> float:
    """Bound on ``Pr[X <= a]`` for ``a < mu`` (paper eq. (3) simplified)."""
    if a >= mu:
        return 1.0
    if a < 0:
        return 0.0
    if a == 0:
        return min(1.0, math.exp(-mu))
    log_bound = (a - mu) + a * math.log(mu / a)
    return min(1.0, math.exp(log_bound))


def estimate_tail_bound(true_weight: float, h: float, tau: float) -> float:
    """Bound on ``Pr[a(J) >= h]`` (or ``<= h``) -- paper eq. (4).

    For a subset ``J`` of light keys with total weight ``true_weight``,
    the HT estimate ``a(J) = tau * |J âˆ© S|`` deviates to ``h`` with
    probability at most ``e^((h-w)/tau) * (w/h)^(h/tau)``.
    """
    if tau <= 0:
        return 0.0 if h != true_weight else 1.0
    if h <= 0 or true_weight <= 0:
        return 1.0
    log_bound = (h - true_weight) / tau + (h / tau) * math.log(true_weight / h)
    return min(1.0, math.exp(log_bound))


def expected_discrepancy(mu: float) -> float:
    """The O(sqrt(mu)) expected discrepancy of an oblivious sample.

    For Poisson/VarOpt samples the count in a range with expectation
    ``mu`` has standard deviation at most ``sqrt(mu)``; this returns
    that scale (used as the oblivious reference line in experiments).
    """
    return math.sqrt(max(0.0, mu))


def eps_approximation_size(
    eps: float, vc_dim: int, delta: float, constant: float = 8.0
) -> int:
    """Sample size from the Vapnik-Chervonenkis theorem (paper Thm 2).

    ``s = c/eps^2 * (d log(d/eps) + log(1/delta))`` is an
    eps-approximation of any range space with VC dimension ``d`` with
    probability ``1 - delta``.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if vc_dim < 1:
        raise ValueError("VC dimension must be >= 1")
    term = vc_dim * math.log(vc_dim / eps) + math.log(1.0 / delta)
    return int(math.ceil(constant / (eps * eps) * term))


def oblivious_max_discrepancy(s: int) -> float:
    """The O(sqrt(s log s)) w.h.p. max range discrepancy of oblivious samples.

    Appendix A derives this from the VC theorem for constant-VC range
    spaces; structure-aware samples replace it with O(1) (hierarchy,
    order) or O(d s^((d-1)/d)) (product).
    """
    if s < 2:
        return float(s)
    return math.sqrt(s * math.log(s))


def product_structure_discrepancy(s: int, d: int) -> float:
    """The 2d * s^((d-1)/d) discrepancy scale of Section 4."""
    if s < 1 or d < 1:
        raise ValueError("s and d must be >= 1")
    return 2.0 * d * s ** ((d - 1) / d)
