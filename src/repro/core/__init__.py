"""Core sampling substrate: IPPS, probabilistic aggregation, VarOpt,
Poisson, Horvitz-Thompson estimation, tail bounds and discrepancy
measurement.
"""

from repro.core.types import Dataset
from repro.core.ipps import (
    ipps_threshold,
    ipps_probabilities,
    StreamingThreshold,
    heavy_key_mask,
)
from repro.core.aggregation import (
    pair_aggregate,
    pair_aggregate_values,
    aggregate_pool,
    finalize_leftover,
    included_indices,
)
from repro.core.chain import (
    chain_aggregate,
    run_starts,
    segmented_chain_aggregate,
)
from repro.core.varopt import (
    varopt_sample,
    varopt_summary,
    StreamVarOpt,
    stream_varopt_summary,
)
from repro.core.poisson import poisson_sample, poisson_summary
from repro.core.estimator import SampleSummary, summary_from_inclusion
from repro.core import bounds, discrepancy

__all__ = [
    "Dataset",
    "ipps_threshold",
    "ipps_probabilities",
    "StreamingThreshold",
    "heavy_key_mask",
    "pair_aggregate",
    "pair_aggregate_values",
    "aggregate_pool",
    "finalize_leftover",
    "included_indices",
    "chain_aggregate",
    "segmented_chain_aggregate",
    "run_starts",
    "varopt_sample",
    "varopt_summary",
    "StreamVarOpt",
    "stream_varopt_summary",
    "poisson_sample",
    "poisson_summary",
    "SampleSummary",
    "summary_from_inclusion",
    "bounds",
    "discrepancy",
]
