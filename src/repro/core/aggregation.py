"""Probabilistic aggregation: the paper's core primitive (Section 2).

A *probabilistic aggregate* of a probability vector preserves per-entry
expectations and the total mass while only reducing high-order
inclusion/exclusion products.  VarOpt samples are obtained by a sequence
of *pair aggregations* (paper Algorithm 1), each of which touches two
fractional entries and sets at least one of them to 0 or 1.  The choice
of which pair to aggregate is completely free -- that freedom is what
the structure-aware samplers exploit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

#: Probabilities within this distance of 0/1 are considered set.
SET_EPS = 1e-9


def is_set(p: float) -> bool:
    """Whether a probability counts as already set to 0 or 1."""
    return p <= SET_EPS or p >= 1.0 - SET_EPS


def clamp(p: float) -> float:
    """Snap a probability to exactly 0/1 when within tolerance."""
    if p <= SET_EPS:
        return 0.0
    if p >= 1.0 - SET_EPS:
        return 1.0
    return p


def pair_aggregate_values(
    p_i: float, p_j: float, rng: np.random.Generator
) -> Tuple[float, float]:
    """Pair-aggregate two probabilities (paper Algorithm 1).

    Requires both inputs strictly inside (0, 1).  Returns the updated
    pair; at least one of the two outputs is exactly 0 or 1, and the sum
    is preserved.

    * If ``p_i + p_j < 1`` the mass moves onto one of the entries
      (chosen proportionally) and the other is set to 0.
    * Otherwise one entry is set to 1 and the other keeps the leftover
      ``p_i + p_j - 1``.
    """
    if is_set(p_i) or is_set(p_j):
        raise ValueError("pair aggregation requires both entries in (0, 1)")
    total = p_i + p_j
    if total < 1.0:
        if rng.random() < p_i / total:
            return clamp(total), 0.0
        return 0.0, clamp(total)
    if rng.random() < (1.0 - p_j) / (2.0 - total):
        return 1.0, clamp(total - 1.0)
    return clamp(total - 1.0), 1.0


def pair_aggregate(
    p: np.ndarray, i: int, j: int, rng: np.random.Generator
) -> None:
    """In-place pair aggregation of entries ``i`` and ``j`` of ``p``."""
    p[i], p[j] = pair_aggregate_values(float(p[i]), float(p[j]), rng)


def aggregate_pool(
    p: np.ndarray,
    indices: Iterable[int],
    rng: np.random.Generator,
) -> Optional[int]:
    """Sequentially pair-aggregate a pool of entries of ``p``.

    Walks the given indices, keeping a single *active* fractional entry
    and pair-aggregating it with each subsequent fractional entry.
    Entries already set are skipped.  Returns the index of the one entry
    still strictly in (0, 1) afterwards, or ``None`` if every entry got
    set (which happens whenever the pool's probability mass is
    integral).

    Aggregating a pool keeps all probability movement *inside* the pool:
    this is the building block for the structure-aware pair-selection
    rules (aggregate within a range / below a node first).
    """
    active: Optional[int] = None
    for idx in indices:
        if idx is None or is_set(float(p[idx])):
            continue
        if active is None:
            active = idx
            continue
        pair_aggregate(p, active, idx, rng)
        if not is_set(float(p[active])):
            pass  # active survives with a new fractional value
        elif not is_set(float(p[idx])):
            active = idx
        else:
            active = None
    return active


def finalize_leftover(
    p: np.ndarray, index: Optional[int], rng: np.random.Generator
) -> None:
    """Resolve a final fractional entry by a Bernoulli trial.

    When the total probability mass is integral the final leftover is
    already (numerically) 0 or 1 and this only snaps it; otherwise the
    Bernoulli keeps expectations exact at the cost of a +-1 variation in
    realized sample size.
    """
    if index is None:
        return
    value = float(p[index])
    if is_set(value):
        p[index] = clamp(value)
        return
    p[index] = 1.0 if rng.random() < value else 0.0


def included_indices(p: np.ndarray) -> np.ndarray:
    """Indices whose probability has been set to one."""
    return np.flatnonzero(np.asarray(p) >= 1.0 - SET_EPS)


def check_aggregation_invariants(
    p_before: np.ndarray, p_after: np.ndarray, rel_tol: float = 1e-6
) -> None:
    """Assert the cheap (deterministic) probabilistic-aggregation axioms.

    Checks agreement in sum (axiom ii) and entry-range validity.  The
    expectation axioms (i) and (iii) are distributional and are
    validated statistically in the test suite instead.

    Raises
    ------
    AssertionError
        If mass was created/destroyed or an entry left [0, 1].
    """
    before = float(np.sum(p_before))
    after = float(np.sum(p_after))
    scale = max(1.0, abs(before))
    if abs(before - after) > rel_tol * scale:
        raise AssertionError(
            f"aggregation changed total mass: {before} -> {after}"
        )
    arr = np.asarray(p_after)
    if arr.size and (arr.min() < -SET_EPS or arr.max() > 1.0 + SET_EPS):
        raise AssertionError("aggregation produced probability outside [0, 1]")


class PairAggregator:
    """Stateful scalar pair aggregation for streaming use.

    The two-pass pipeline (Section 5) aggregates keys that are *not*
    co-resident in an array: each cell of the partition holds at most
    one active (key, probability) pair.  This helper mirrors
    :func:`pair_aggregate_values` over explicit records.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def combine(
        self, item_a: Tuple[object, float], item_b: Tuple[object, float]
    ) -> List[Tuple[object, float]]:
        """Aggregate two (payload, probability) records.

        Returns the same two records with updated probabilities; at
        least one probability is 0 or 1.
        """
        (key_a, p_a), (key_b, p_b) = item_a, item_b
        new_a, new_b = pair_aggregate_values(p_a, p_b, self._rng)
        return [(key_a, new_a), (key_b, new_b)]
