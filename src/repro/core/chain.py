"""Vectorized sequential pair aggregation (the build-path hot kernel).

:func:`repro.core.aggregation.aggregate_pool` walks a pool of
fractional IPPS probabilities keeping one *active* entry and
pair-aggregating it with each subsequent entry -- a Python loop that
dominates every offline build.  This module computes the identical
chain in O(1) NumPy passes.

The trick: the sequence of pair *totals* along the chain does not
depend on any random choice.  Writing ``q_k`` for the pool
probabilities, the active value after step ``k`` is the fractional part
of the running sum ``C_k = q_0 + ... + q_k``; a step *crosses* (one
entry of the pair is set to 1) exactly when the integer part of ``C_k``
increments, and otherwise one entry is set to 0.  Only the *identity*
of the active entry depends on the coin flips, and that identity is a
last-switch-wins forward fill -- an ``np.maximum.accumulate``.  So the
whole chain reduces to: one ``cumsum``, one batch of pre-drawn
uniforms (one candidate decision per pair, exactly as the scalar loop
draws them), a vectorized branch per step, and two fancy-indexed
writes.

The kernels realize the same per-pair aggregation distribution as the
scalar loop (paper Algorithm 1) -- every guarantee that holds per pair
(unbiasedness, mass conservation, the floor/ceil prefix counts behind
the discrepancy bounds) holds here step for step.  They are *not*
bit-for-bit identical to the scalar loop: the running total is
accumulated in a different floating-point association and the uniforms
are consumed in one block, so seeded runs diverge.  Callers that need
the historical scalar stream keep it behind their ``strict_seed``
flag; equivalence of the two paths is validated statistically in
``tests/test_kernel_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aggregation import SET_EPS


def segmented_chain_aggregate(
    p: np.ndarray,
    pool: np.ndarray,
    seg_starts: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run one aggregation chain per segment of ``pool``, in parallel.

    Parameters
    ----------
    p:
        The probability vector, updated in place: every pool entry
        except each segment's leftover is set to exactly 0.0 or 1.0,
        and each leftover receives its final fractional value.
    pool:
        Indices into ``p``; entries already set (within ``SET_EPS`` of
        0/1) are skipped, exactly like the scalar pool walk.
    seg_starts:
        Sorted start offsets of each segment within ``pool`` (first
        element 0).  Segments are independent chains -- their entries
        never aggregate across a boundary.
    rng:
        Randomness source; consumes one block of uniforms per call.

    Returns
    -------
    ``int64`` array, one entry per segment: the index (into ``p``) of
    the segment's leftover, or -1 when the segment had no fractional
    entry.  Leftover values may still be within ``SET_EPS`` of 0/1
    (near-integral segment mass); callers treat those as set, exactly
    like :func:`~repro.core.aggregation.finalize_leftover` does.
    """
    pool = np.asarray(pool, dtype=np.int64)
    seg_starts = np.asarray(seg_starts, dtype=np.int64)
    out = np.full(seg_starts.size, -1, dtype=np.int64)
    if pool.size == 0 or seg_starts.size == 0:
        return out
    q = p[pool]
    keep = (q > SET_EPS) & (q < 1.0 - SET_EPS)
    if not keep.all():
        kept_before = np.concatenate(([0], np.cumsum(keep)))
        seg_starts = kept_before[seg_starts]
        pool = pool[keep]
        q = q[keep]
    m = pool.size
    if m == 0:
        return out
    bounds = np.concatenate((seg_starts, [m]))
    lens = np.diff(bounds)
    nonempty = lens > 0
    # Running within-segment totals and their integer crossings.
    cums = np.cumsum(q)
    prefix = np.concatenate(([0.0], cums))
    rel = cums - np.repeat(prefix[bounds[:-1]], lens)
    fl = np.floor(rel)
    first = np.zeros(m, dtype=bool)
    first[bounds[:-1][nonempty]] = True
    fl_prev = np.empty(m)
    fl_prev[1:] = fl[:-1]
    fl_prev[first] = 0.0
    rel_prev = np.empty(m)
    rel_prev[1:] = rel[:-1]
    rel_prev[first] = 0.0
    # Pair total and active value entering each step (Algorithm 1's
    # p_i + p_j and p_i); both are choice-independent.
    t = rel - fl_prev
    a_prev = rel_prev - fl_prev
    crossing = fl > fl_prev
    # One decision per step.  No crossing: active keeps the mass with
    # probability a/t (the incoming entry is set to 0); otherwise the
    # incoming entry takes over and the active is set to 0.  Crossing:
    # the active is set to 1 with probability (1-q)/(2-t) and the
    # incoming entry carries t-1 onward; otherwise the incoming entry
    # is set to 1 and the active carries t-1.  ``switch`` marks the
    # steps where the incoming entry becomes the new active.
    u = rng.random(m)
    switch = np.where(crossing, u * (2.0 - t) < (1.0 - q), u * t >= a_prev)
    switch[first] = True  # each segment's first entry seeds the chain
    idx = np.arange(m, dtype=np.int64)
    last_switch = np.maximum.accumulate(np.where(switch, idx, -1))
    prev_active = np.empty(m, dtype=np.int64)
    prev_active[1:] = last_switch[:-1]
    prev_active[0] = 0
    # Every non-first step settles exactly one entry: the old active
    # when the chain switches, the incoming entry otherwise; to 1 on a
    # crossing, to 0 otherwise.  Settled entries never re-enter a
    # chain, so one fancy-indexed write suffices.
    settle = ~first
    settled_pos = np.where(switch, prev_active, idx)[settle]
    p[pool[settled_pos]] = crossing[settle].astype(float)
    ends = bounds[1:][nonempty] - 1
    leftover_idx = pool[last_switch[ends]]
    p[leftover_idx] = rel[ends] - fl[ends]
    out[nonempty] = leftover_idx
    return out


def chain_aggregate(
    p: np.ndarray, pool, rng: np.random.Generator
) -> Optional[int]:
    """Vectorized drop-in for one :func:`aggregate_pool` chain.

    Same contract: sequentially pair-aggregates the fractional entries
    of ``pool`` (in order), writes the settled 0/1 values into ``p``,
    and returns the index of the one entry left strictly fractional --
    or ``None`` when the pool's mass was integral.
    """
    pool = np.asarray(pool, dtype=np.int64)
    leftover = segmented_chain_aggregate(
        p, pool, np.zeros(1, dtype=np.int64), rng
    )
    value = int(leftover[0])
    return None if value < 0 else value


def run_starts(sorted_ids: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal values in a sorted array.

    The standard companion to :func:`segmented_chain_aggregate`: group
    a pool by cell/label/node id with a stable argsort, then cut the
    segments at the run boundaries.
    """
    sorted_ids = np.asarray(sorted_ids)
    if sorted_ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    return np.concatenate(([0], boundaries)).astype(np.int64)
