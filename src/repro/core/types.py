"""Core data model: weighted keyed datasets.

The paper models data as (key, weight) pairs with keys drawn from a
structured domain.  :class:`Dataset` stores integer coordinates (one
column per axis) plus non-negative float weights and the
:class:`~repro.structures.product.ProductDomain` describing the
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.structures.product import ProductDomain, line_domain


@dataclass
class Dataset:
    """A table of weighted keys over a structured domain.

    Attributes
    ----------
    coords:
        ``(n, d)`` integer array; row i is key i's coordinates.
    weights:
        ``(n,)`` non-negative float array.
    domain:
        The product domain the keys live in.
    """

    coords: np.ndarray
    weights: np.ndarray
    domain: ProductDomain

    def __post_init__(self):
        # Normalize exactly once: C-contiguous int64 coordinates and
        # float64 weights.  Every downstream kernel (sampling chains,
        # kd routing, batched queries, wire codecs) relies on this and
        # skips its own re-validation; ``ascontiguousarray`` is a no-op
        # for already-conforming inputs.
        coords = np.atleast_2d(np.asarray(self.coords, dtype=np.int64))
        if coords.shape[0] == 1 and coords.shape[1] > 1 and self.domain.dims == 1:
            # A flat list of 1-D keys was passed; make it a column.
            coords = coords.T
        self.coords = np.ascontiguousarray(coords)
        self.weights = np.ascontiguousarray(
            np.asarray(self.weights, dtype=np.float64)
        )
        if self.coords.shape[0] != self.weights.shape[0]:
            raise ValueError("coords and weights must have matching length")
        if self.weights.size and float(self.weights.min()) < 0:
            raise ValueError("weights must be non-negative")
        self.domain.validate_coords(self.coords)

    @classmethod
    def from_items(
        cls,
        items: Iterable[Tuple[Sequence[int], float]],
        domain: ProductDomain,
    ) -> "Dataset":
        """Build from an iterable of ``(key_tuple, weight)`` pairs."""
        keys = []
        weights = []
        for key, weight in items:
            if np.isscalar(key):
                key = (key,)
            keys.append(tuple(int(k) for k in key))
            weights.append(float(weight))
        coords = np.asarray(keys, dtype=np.int64).reshape(len(keys), -1)
        return cls(coords=coords, weights=np.asarray(weights), domain=domain)

    @classmethod
    def one_dimensional(
        cls, keys: Sequence[int], weights: Sequence[float], size: int
    ) -> "Dataset":
        """Build a 1-D dataset over an ordered domain of ``size`` values."""
        coords = np.asarray(keys, dtype=np.int64).reshape(-1, 1)
        return cls(coords=coords, weights=np.asarray(weights, dtype=float),
                   domain=line_domain(size))

    @property
    def n(self) -> int:
        """Number of keys."""
        return self.coords.shape[0]

    @property
    def dims(self) -> int:
        """Number of coordinate axes."""
        return self.coords.shape[1]

    @property
    def total_weight(self) -> float:
        """Sum of all weights."""
        return float(self.weights.sum())

    def axis(self, a: int) -> np.ndarray:
        """Coordinate column for axis ``a``."""
        return self.coords[:, a]

    def keys_1d(self) -> np.ndarray:
        """The single coordinate column of a 1-D dataset."""
        if self.dims != 1:
            raise ValueError("dataset is not one-dimensional")
        return self.coords[:, 0]

    def iter_items(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        """Yield ``(key_tuple, weight)`` pairs, in storage order.

        This is the streaming interface used by the two-pass algorithms:
        they read the data via this iterator only, never by random
        access.
        """
        for row, weight in zip(self.coords, self.weights):
            yield tuple(int(x) for x in row), float(weight)

    @classmethod
    def _from_validated(
        cls, coords: np.ndarray, weights: np.ndarray, domain: ProductDomain
    ) -> "Dataset":
        """Wrap arrays already known to satisfy the class invariants.

        Used by row-selection paths (:meth:`subset`, sharding) whose
        inputs come from an already-validated dataset: re-running the
        O(n) domain/sign checks per shard would dominate a sharded
        build's setup.
        """
        dataset = object.__new__(cls)
        dataset.coords = np.ascontiguousarray(coords)
        dataset.weights = np.ascontiguousarray(weights)
        dataset.domain = domain
        return dataset

    def subset(self, mask_or_indices) -> "Dataset":
        """A new dataset restricted to the given rows.

        Rows of a validated dataset are still validated, so the
        subset skips re-validation; slice selections stay zero-copy
        views of the parent arrays.
        """
        return Dataset._from_validated(
            self.coords[mask_or_indices],
            self.weights[mask_or_indices],
            self.domain,
        )

    def aggregate_duplicates(self) -> "Dataset":
        """Merge duplicate keys, summing their weights."""
        if self.n == 0:
            return self
        uniq, inverse = np.unique(self.coords, axis=0, return_inverse=True)
        sums = np.zeros(uniq.shape[0], dtype=float)
        np.add.at(sums, inverse, self.weights)
        return Dataset(coords=uniq, weights=sums, domain=self.domain)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(n={self.n}, dims={self.dims}, "
            f"total_weight={self.total_weight:.6g})"
        )
