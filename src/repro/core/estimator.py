"""Horvitz-Thompson estimation from IPPS samples.

A sample summary stores the sampled keys together with their adjusted
weights ``a(i) = w_i / p_i`` (paper Appendix A).  Under IPPS with
threshold ``tau`` this is ``w_i`` for heavy keys (``w_i >= tau``) and
``tau`` for the rest, so any subset-sum estimate is the exact heavy
weight plus ``tau`` times the number of light sampled keys -- eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
)
from repro.core.chain import chain_aggregate
from repro.core.ipps import ipps_threshold
from repro.structures.ranges import (
    Box,
    MultiRangeQuery,
    QueryPlan,
    SortOrderCache,
    batch_query_sums,
)


@dataclass
class SampleSummary:
    """An IPPS/VarOpt sample with Horvitz-Thompson adjusted weights.

    Attributes
    ----------
    coords:
        ``(m, d)`` coordinates of the sampled keys.
    weights:
        Original weights of the sampled keys.
    tau:
        The IPPS threshold the sample was drawn with (0 means every
        positive-weight key was included exactly).
    """

    coords: np.ndarray
    weights: np.ndarray
    tau: float

    def __post_init__(self):
        self.coords = np.atleast_2d(np.asarray(self.coords, dtype=np.int64))
        self.weights = np.asarray(self.weights, dtype=float)
        if self.coords.shape[0] != self.weights.shape[0]:
            raise ValueError("coords and weights must have matching length")
        if self.tau < 0:
            raise ValueError("tau must be non-negative")
        # A sample is immutable once built, so its sort orders can be
        # computed once and reused across repeated query batteries.
        self._query_cache = SortOrderCache()

    @property
    def size(self) -> int:
        """Number of sampled keys (the summary footprint in elements)."""
        return self.coords.shape[0]

    @property
    def dims(self) -> int:
        """Dimensionality of the sampled keys."""
        return self.coords.shape[1] if self.size else 0

    @property
    def adjusted_weights(self) -> np.ndarray:
        """Per-key Horvitz-Thompson adjusted weights."""
        if self.tau == 0.0:
            return self.weights.copy()
        return np.maximum(self.weights, self.tau)

    def estimate_total(self) -> float:
        """Unbiased estimate of the total weight of the data set."""
        return float(self.adjusted_weights.sum())

    def query(self, box: Box) -> float:
        """Unbiased estimate of the weight inside ``box``."""
        if self.size == 0:
            return 0.0
        mask = box.contains(self.coords)
        return float(self.adjusted_weights[mask].sum())

    def query_multi(self, query: MultiRangeQuery) -> float:
        """Unbiased estimate of the weight inside a union of boxes."""
        if self.size == 0:
            return 0.0
        mask = query.contains(self.coords)
        return float(self.adjusted_weights[mask].sum())

    def query_many(self, queries: Sequence) -> List[float]:
        """Estimates for a batch of multi-range queries, vectorized.

        Mirrors :meth:`repro.summaries.base.Summary.query_many` so that
        samples and dedicated summaries share the harness interface,
        but answers the whole battery in one broadcasted NumPy pass
        (:func:`repro.structures.ranges.batch_query_sums`) instead of a
        per-query Python loop.  The sample's sort orders -- and the
        battery's compiled query plan -- are cached on first use, so
        repeated batteries skip both the re-sort and the re-stack; a
        pre-compiled :class:`~repro.structures.ranges.QueryPlan` passes
        straight through.
        """
        queries = (
            queries if isinstance(queries, QueryPlan) else list(queries)
        )
        if self.size == 0:
            return [0.0] * len(queries)
        return batch_query_sums(
            queries,
            self.coords,
            self.adjusted_weights,
            cache=self._query_cache,
            version=0,
        ).tolist()

    def merge(
        self,
        other: "SampleSummary",
        s: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        strict_seed: bool = False,
    ) -> "SampleSummary":
        """Merge with an IPPS/VarOpt sample of a *disjoint* shard.

        The merge re-runs pair aggregation over the union of the two
        samples, treating each sampled key's Horvitz-Thompson adjusted
        weight as its weight, with the threshold capped below by both
        input thresholds.  The result is again a valid
        :class:`SampleSummary` of (at most) ``s`` keys.

        Correctness (paper Appendix A)
        ------------------------------
        Shard ``k`` includes key ``i`` with IPPS probability
        ``q_i = min(1, w_i / tau_k)`` and records the adjusted weight
        ``a_i = w_i / q_i = max(w_i, tau_k)``, so
        ``E[sum_{i in S_k} a_i] = sum_i w_i`` (eq. 1).  The merge draws
        a second-stage IPPS/VarOpt sample *of the adjusted weights*: key
        ``i`` survives with probability ``p_i = min(1, a_i / tau*)``
        where ``tau* = max(tau_1, tau_2, tau_s(a))`` and ``tau_s(a)``
        solves ``sum_i min(1, a_i / tau) = s``.  Its final adjusted
        weight is ``a_i / p_i = max(a_i, tau*)`` -- exactly what a
        :class:`SampleSummary` with ``weights = a`` and ``tau = tau*``
        reports.  By the tower rule the two Horvitz-Thompson stages
        compose::

            E[max(a_i, tau*) * 1{i in merged}]
              = E[a_i * 1{i in S_k}] = w_i,

        so every subset-sum estimate from the merged sample stays
        unbiased.  Taking ``tau*`` at least as large as both input
        thresholds keeps the threshold semantics intact: every
        surviving light key's adjusted weight equals the single merged
        threshold.  Pair aggregation (Algorithm 1) realizes the
        inclusion vector with VarOpt's negative correlations, so the
        variance bounds of Appendix A continue to hold with respect to
        the adjusted weights.

        Parameters
        ----------
        other:
            Sample of a disjoint shard (same key dimensionality).
        s:
            Target size of the merged sample; defaults to
            ``max(self.size, other.size)`` so folding k equal-size
            shard samples keeps the footprint constant.
        rng:
            Randomness for the pair aggregations; a fresh default
            generator is used when omitted.
        strict_seed:
            ``True`` runs the historical scalar pair-aggregation loop
            (bit-compatible RNG stream with earlier releases); the
            default runs the vectorized chain kernel, same
            distribution with a different RNG consumption order.
        """
        if not isinstance(other, SampleSummary):
            raise TypeError(
                f"cannot merge SampleSummary with {type(other).__name__}"
            )
        if self.size and other.size and self.dims != other.dims:
            raise ValueError(
                f"dimensionality mismatch: {self.dims} vs {other.dims}"
            )
        # Merging with a summary of an empty shard is the identity --
        # unless an explicit smaller target forces a re-aggregation of
        # the non-empty side (the 'at most s keys' contract).
        if other.size == 0 or self.size == 0:
            base = self if other.size == 0 else other
            if s is None or base.size <= s:
                return SampleSummary(
                    coords=base.coords.copy(),
                    weights=base.weights.copy(),
                    tau=base.tau,
                )
            return base.downsample(s, rng, strict_seed=strict_seed)
        if s is None:
            s = max(self.size, other.size)
        coords = np.concatenate((self.coords, other.coords), axis=0)
        adjusted = np.concatenate(
            (self.adjusted_weights, other.adjusted_weights)
        )
        tau_floor = max(self.tau, other.tau)
        return _reaggregate(
            coords, adjusted, tau_floor, s, rng, strict_seed=strict_seed
        )

    def downsample(
        self,
        s: int,
        rng: Optional[np.random.Generator] = None,
        strict_seed: bool = False,
    ) -> "SampleSummary":
        """Re-aggregate this sample down to at most ``s`` keys.

        A second IPPS/VarOpt stage over the adjusted weights (the same
        construction as :meth:`merge` with an empty other side), so all
        Horvitz-Thompson estimates stay unbiased.  A no-op (copy) when
        the sample already fits the target.
        """
        if self.size <= s:
            return SampleSummary(
                coords=self.coords.copy(),
                weights=self.weights.copy(),
                tau=self.tau,
            )
        return _reaggregate(
            self.coords, self.adjusted_weights, self.tau, s, rng,
            strict_seed=strict_seed,
        )

    @classmethod
    def from_shards(
        cls,
        shards: Sequence["SampleSummary"],
        s: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "SampleSummary":
        """Fold per-shard samples into one sample of (at most) ``s`` keys.

        Each fold is a :meth:`merge`, so unbiasedness composes across
        any number of shards and any fold order.  A single oversized
        shard is :meth:`downsample`-d so the size contract holds for
        every input count.
        """
        shards = list(shards)
        if not shards:
            raise ValueError("from_shards requires at least one summary")
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard, s=s, rng=rng)
        if s is not None and merged.size > s:
            merged = merged.downsample(s, rng)
        return merged

    @property
    def mergeable(self) -> bool:
        """Samples implement the mergeable-summary protocol."""
        return True

    def estimate_subset(
        self, predicate: Callable[[np.ndarray], np.ndarray]
    ) -> float:
        """Unbiased estimate for an arbitrary subset.

        ``predicate`` receives the ``(m, d)`` coordinate array and
        returns a boolean mask.  This is the flexibility samples offer
        beyond range queries: the predicate is specified *after* the
        summary was built.
        """
        if self.size == 0:
            return 0.0
        mask = np.asarray(predicate(self.coords), dtype=bool)
        return float(self.adjusted_weights[mask].sum())

    def representatives(self, box: Box, k: Optional[int] = None) -> np.ndarray:
        """Representative sampled keys inside ``box`` (heaviest first).

        Dedicated summaries cannot provide representative keys of a
        selected subset; samples can (Section 1).
        """
        if self.size == 0:
            return np.empty((0, self.dims), dtype=np.int64)
        mask = box.contains(self.coords)
        selected = self.coords[mask]
        adj = self.adjusted_weights[mask]
        order = np.argsort(adj)[::-1]
        selected = selected[order]
        if k is not None:
            selected = selected[:k]
        return selected

    def sampled_count(self, box: Box) -> int:
        """Number of sampled keys falling in ``box``."""
        if self.size == 0:
            return 0
        return int(box.contains(self.coords).sum())

    def variance_upper_bound(self, box: Box) -> float:
        """Upper bound on the HT estimator's variance inside ``box``.

        Per-key variance under IPPS is ``w_i (tau - w_i)`` for light
        keys and 0 for heavy keys (Appendix A); summing the sampled
        light keys' ``tau^2 (1 - w_i/tau) / (w_i/tau) * (w_i/tau)`` ...
        reduces to an unbiased-in-expectation plug-in
        ``sum_{i in S, light} tau * (tau - w_i)``.  For VarOpt samples
        the true variance is no larger (joint inclusions are negatively
        correlated), so this is a conservative bound.
        """
        if self.size == 0 or self.tau == 0.0:
            return 0.0
        mask = box.contains(self.coords)
        w = self.weights[mask]
        light = w < self.tau
        return float((self.tau * (self.tau - w[light])).sum())

    def confidence_interval(
        self, box: Box, delta: float = 0.05
    ) -> tuple:
        """A (1 - delta) confidence interval for the weight in ``box``.

        Inverts the paper's eq. (4) tail bound numerically: the
        interval contains every candidate true weight whose probability
        of producing an estimate at least/most as extreme as the
        observed one exceeds delta/2 per side.  Conservative (the bound
        itself is not tight).
        """
        import math

        from repro.core.bounds import estimate_tail_bound

        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        estimate = self.query(box)
        if self.tau == 0.0:
            return (estimate, estimate)
        half = delta / 2.0
        tau = self.tau
        # The estimate decomposes into exact heavy weight + tau * count
        # over light sampled keys; only the light part is uncertain.
        mask = box.contains(self.coords)
        w = self.weights[mask]
        heavy_part = float(w[w >= tau].sum())
        light_est = max(0.0, estimate - heavy_part)

        def tail_probability(candidate: float) -> float:
            """Bound on Pr[light estimate as extreme as observed | candidate]."""
            if light_est == 0.0:
                # Pr[count == 0] <= e^(-candidate/tau).
                return math.exp(-candidate / tau)
            return estimate_tail_bound(candidate, light_est, tau)

        span = 10.0 * tau * (math.sqrt(light_est / tau + 1.0) + 1.0)
        # Lower endpoint: smallest candidate still plausible.  The tail
        # bound increases in the candidate on [0, light_est].
        lo, hi = 0.0, light_est
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if tail_probability(mid) > half:
                hi = mid
            else:
                lo = mid
        lower = hi if light_est > 0 else 0.0
        # Upper endpoint: largest candidate still plausible.  The tail
        # bound decreases in the candidate on [light_est, inf).
        lo, hi = light_est, light_est + span
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if tail_probability(mid) > half:
                lo = mid
            else:
                hi = mid
        upper = lo
        return (heavy_part + lower, heavy_part + upper)

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The sample's full state as codec-friendly primitives.

        Round-tripping through ``to_state`` / :meth:`from_state` is
        bit-exact: the reconstructed sample answers every query
        identically and merges identically to the original.
        """
        return {
            "coords": self.coords,
            "weights": self.weights,
            "tau": float(self.tau),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SampleSummary":
        """Rebuild a sample from :meth:`to_state` output."""
        return cls(
            coords=state["coords"],
            weights=state["weights"],
            tau=state["tau"],
        )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleSummary(size={self.size}, dims={self.dims}, "
            f"tau={self.tau:.6g}, total~{self.estimate_total():.6g})"
        )


def _reaggregate(
    coords: np.ndarray,
    adjusted: np.ndarray,
    tau_floor: float,
    s: int,
    rng: Optional[np.random.Generator],
    strict_seed: bool = False,
) -> SampleSummary:
    """Second-stage IPPS/VarOpt pair aggregation over adjusted weights.

    Shared core of :meth:`SampleSummary.merge` and
    :meth:`SampleSummary.downsample`: includes key ``i`` with
    probability ``min(1, adjusted_i / tau*)`` where
    ``tau* = max(tau_floor, tau_s(adjusted))``, realized with VarOpt
    pair aggregations.
    """
    if s < 1:
        raise ValueError("target sample size must be >= 1")
    if rng is None:
        rng = np.random.default_rng()
    tau_star = max(tau_floor, ipps_threshold(adjusted, s))
    if tau_star == 0.0:
        return SampleSummary(coords=coords, weights=adjusted, tau=0.0)
    p = np.minimum(1.0, adjusted / tau_star)
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    pool = fractional[rng.permutation(fractional.size)]
    if strict_seed:
        leftover = aggregate_pool(p, pool.tolist(), rng)
    else:
        leftover = chain_aggregate(p, pool, rng)
    finalize_leftover(p, leftover, rng)
    included = included_indices(p)
    return SampleSummary(
        coords=coords[included],
        weights=adjusted[included],
        tau=tau_star,
    )


def summary_from_inclusion(
    coords: np.ndarray,
    weights: np.ndarray,
    included: np.ndarray,
    tau: float,
) -> SampleSummary:
    """Build a :class:`SampleSummary` from an inclusion mask/index array."""
    coords = np.atleast_2d(np.asarray(coords))
    if coords.shape[0] != np.asarray(weights).shape[0] and coords.shape[1] == np.asarray(weights).shape[0]:
        coords = coords.T
    return SampleSummary(
        coords=coords[included],
        weights=np.asarray(weights, dtype=float)[included],
        tau=tau,
    )
