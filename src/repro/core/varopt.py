"""Structure-oblivious VarOpt sampling (the paper's ``obliv`` baseline).

Two constructions of a VarOpt_s sample:

* :func:`varopt_sample` / :func:`varopt_summary` -- offline: compute the
  IPPS probabilities and run pair aggregations in random order.  This is
  the probabilistic-aggregation framework instantiated with
  structure-*oblivious* pair selection.
* :class:`StreamVarOpt` -- the one-pass reservoir-style algorithm of
  Cohen, Duffield, Kaplan, Lund, Thorup (SODA 2009): maintains exact
  "heavy" items above the current threshold in a min-heap and a light
  region whose items all share the threshold as adjusted weight;
  amortized O(log s) per item.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    included_indices,
)
from repro.core.chain import chain_aggregate
from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset
from repro.summaries.base import IncrementalSummary, coerce_batch


def varopt_sample(
    weights: np.ndarray,
    s: float,
    rng: np.random.Generator,
    order: Optional[np.ndarray] = None,
    strict_seed: bool = False,
) -> Tuple[np.ndarray, float]:
    """Offline VarOpt_s sample of a weight vector.

    Returns ``(included_indices, tau)``.  ``order`` fixes the pair
    aggregation order over the fractional entries; by default a random
    permutation is used, which makes the sample structure-oblivious.

    ``strict_seed=True`` runs the historical scalar pair-aggregation
    loop (bit-compatible with earlier releases for a fixed seed);
    the default runs the vectorized chain kernel
    (:func:`repro.core.chain.chain_aggregate`), which realizes the same
    distribution with a different RNG consumption order.
    """
    w = np.asarray(weights, dtype=float)
    p, tau = ipps_probabilities(w, s)
    fractional = np.flatnonzero((p > 0.0) & (p < 1.0))
    if order is None:
        order = rng.permutation(fractional.size)
    pool = fractional[order]
    if strict_seed:
        leftover = aggregate_pool(p, pool.tolist(), rng)
    else:
        leftover = chain_aggregate(p, pool, rng)
    finalize_leftover(p, leftover, rng)
    return included_indices(p), tau


def varopt_summary(
    dataset: Dataset,
    s: float,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> SampleSummary:
    """Offline structure-oblivious VarOpt summary of a dataset."""
    included, tau = varopt_sample(
        dataset.weights, s, rng, strict_seed=strict_seed
    )
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )


class StreamVarOpt(IncrementalSummary):
    """One-pass VarOpt_s reservoir sampling over a weighted stream.

    Feed items with :meth:`feed`; read the sample at any time with
    :meth:`summary`.  The realized sample size is exactly
    ``min(s, #positive items fed)``.

    The reservoir is the sampling methods' native carrier of the
    incremental summary protocol: :meth:`update` feeds a micro-batch
    and :meth:`snapshot` freezes the reservoir into a
    :class:`~repro.core.estimator.SampleSummary`.

    Reproducibility: the sampler owns its generator.  Pass an integer
    seed (or ``None``) rather than sharing one ``Generator`` object
    across samplers -- a shared generator's state is consumed by every
    consumer, so two "identically seeded" engines would diverge.  The
    streaming engine derives an independent child seed per (method,
    pane) for exactly this reason (see
    :func:`repro.stream.derive_seed`).

    Implementation notes
    --------------------
    Light items all behave as if they weigh the current threshold
    ``tau``, so eviction only needs the light *count* and a uniform
    choice among lights; heavy items keep exact weights in a min-heap
    and migrate to the light region as ``tau`` rises past them.
    """

    #: Items per vectorized-prefix scan in :meth:`update`.
    _BULK_CHUNK = 1024

    def __init__(self, s: int, rng=None):
        if s < 1:
            raise ValueError("sample size must be >= 1")
        self._s = int(s)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self._tau = 0.0
        self._counter = 0  # tiebreaker for the heap
        # Heap entries: (weight, counter, key, weight) -- key is any payload.
        self._heavy: List[Tuple[float, int, tuple, float]] = []
        # Light entries: (key, original_weight); adjusted weight is tau.
        self._light: List[Tuple[tuple, float]] = []
        self._items_seen = 0

    @property
    def s(self) -> int:
        """Target sample size."""
        return self._s

    @property
    def tau(self) -> float:
        """Current threshold (equals offline tau_s of the prefix)."""
        return self._tau

    @property
    def current_size(self) -> int:
        """Number of items currently in the reservoir."""
        return len(self._heavy) + len(self._light)

    def feed(self, key, weight: float) -> None:
        """Process one stream item."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        if weight == 0:
            return
        self._items_seen += 1
        self._push_heavy(key, float(weight))
        if self.current_size <= self._s:
            return
        self._evict_one()

    def feed_many(self, keys: Sequence, weights: Sequence[float]) -> None:
        """Process a batch of items in order."""
        for key, weight in zip(keys, weights):
            self.feed(key, float(weight))

    # ------------------------------------------------------------------
    # Incremental summary protocol
    # ------------------------------------------------------------------
    def update(self, keys, weights) -> None:
        """Feed one micro-batch (an ``(n, d)`` array or key tuples).

        Vectorized bulk path: once the reservoir is full, a run of
        items that are each *light* at their turn (weight at or below
        the running threshold) and leave the heavy heap untouched is
        processed in one NumPy pass -- the per-item heap work
        disappears and only the (rare) accepted items pay Python-level
        cost.  The bulk pass realizes exactly the same per-item
        accept/evict distribution as :meth:`feed` (see
        :meth:`_bulk_light_prefix`), so streamed samples remain VarOpt
        samples; items that do not qualify fall back to :meth:`feed`
        one at a time.
        """
        coords, weights = coerce_batch(keys, weights)
        if weights.size and float(weights.min()) < 0:
            raise ValueError("weights must be non-negative")
        positive = weights > 0
        if not positive.all():
            coords = coords[positive]
            weights = weights[positive]
        n = weights.shape[0]
        pos = 0
        while pos < n:
            if self.current_size < self._s or not self._light:
                self.feed(tuple(coords[pos].tolist()), float(weights[pos]))
                pos += 1
                continue
            # Scan a bounded chunk: a disqualifying item would otherwise
            # make every retry re-cumsum the whole remaining batch.
            m, taus_before, taus_after = self._bulk_light_prefix(
                weights[pos:pos + self._BULK_CHUNK]
            )
            if m == 0:
                self.feed(tuple(coords[pos].tolist()), float(weights[pos]))
                pos += 1
                continue
            self._bulk_light_feed(
                coords[pos:pos + m],
                weights[pos:pos + m],
                taus_before[:m],
                taus_after[:m],
            )
            pos += m

    def _bulk_light_prefix(self, weights: np.ndarray):
        """Longest prefix the vectorized light path may absorb.

        With the reservoir full and ``c = len(light) >= 1``, feeding an
        item of weight ``w <= tau`` runs :meth:`_evict_one` with a pool
        of exactly the ``c`` light items plus the new item whenever the
        heavy-heap minimum exceeds the new threshold
        ``tau' = tau + w/c``: the new item is the heap minimum, is
        popped unconditionally (``w <= tau < c*tau/(c-1)``), and the
        pop loop stops right after.  Both conditions are checked here
        against the *running* threshold (``tau`` grows by ``w_i/c`` per
        item while the light count stays ``c`` in every branch), so
        every item in the returned prefix takes that exact code path.
        """
        c = len(self._light)
        cum = np.cumsum(weights)
        taus_after = self._tau + cum / c
        taus_before = taus_after - weights / c
        ok = weights <= taus_before
        if self._heavy:
            ok &= taus_after < self._heavy[0][0]
        bad = np.flatnonzero(~ok)
        m = int(bad[0]) if bad.size else weights.shape[0]
        return m, taus_before, taus_after

    def _bulk_light_feed(
        self,
        coords: np.ndarray,
        weights: np.ndarray,
        taus_before: np.ndarray,
        taus_after: np.ndarray,
    ) -> None:
        """Absorb a qualifying run of light items in one pass.

        Per item, :meth:`_evict_one` restricted to the lights-plus-new
        pool drops the new item with probability ``1 - w/tau'`` and
        otherwise replaces a uniformly chosen light item -- the light
        count never changes.  Drawing all the accept coins and victim
        indices at once therefore realizes the identical distribution
        without touching the heap.
        """
        m = weights.shape[0]
        c = len(self._light)
        accept = self._rng.random(m) < c * (1.0 - taus_before / taus_after)
        self._items_seen += m
        self._tau = float(taus_after[-1])
        accepted = np.flatnonzero(accept)
        if accepted.size:
            victims = self._rng.integers(0, c, size=accepted.size)
            for index, victim in zip(accepted.tolist(), victims.tolist()):
                self._light[victim] = (
                    tuple(coords[index].tolist()),
                    float(weights[index]),
                )

    def snapshot(self) -> SampleSummary:
        """Freeze the reservoir into a :class:`SampleSummary`."""
        return self.summary()

    @property
    def version(self) -> int:
        """Counter identifying the ingested state (items seen)."""
        return self._items_seen

    @property
    def items_seen(self) -> int:
        """Number of positive-weight items fed so far."""
        return self._items_seen

    def _push_heavy(self, key, weight: float) -> None:
        self._counter += 1
        heapq.heappush(self._heavy, (weight, self._counter, key, weight))

    def _evict_one(self) -> None:
        # Build the candidate pool: all light items plus heavy items that
        # fall at or below the new threshold, found by popping the heap.
        pool_count = len(self._light)
        pool_sum = pool_count * self._tau
        popped: List[Tuple[float, int, tuple, float]] = []
        tau_new = None
        while True:
            if pool_count >= 2:
                candidate = pool_sum / (pool_count - 1)
                if not self._heavy or self._heavy[0][0] > candidate:
                    tau_new = candidate
                    break
            entry = heapq.heappop(self._heavy)
            popped.append(entry)
            pool_sum += entry[0]
            pool_count += 1
        # Choose the victim: each pool item is dropped with probability
        # 1 - (its weight) / tau_new; the probabilities sum to one.
        u = float(self._rng.random()) * 1.0
        light_mass = len(self._light) * (1.0 - self._tau / tau_new)
        if u < light_mass and self._light:
            victim = self._rng.integers(len(self._light))
            self._light[victim] = self._light[-1]
            self._light.pop()
        else:
            u -= light_mass
            victim_idx = None
            for idx, (w, _c, _k, _w0) in enumerate(popped):
                drop_p = 1.0 - w / tau_new
                if u < drop_p:
                    victim_idx = idx
                    break
                u -= drop_p
            if victim_idx is None:
                # Numerical slack: drop the last popped candidate.
                victim_idx = len(popped) - 1
            popped.pop(victim_idx)
        # Survivors of the pool join the light region at the new threshold.
        for _w, _c, key, w0 in popped:
            self._light.append((key, w0))
        self._tau = tau_new

    def sample_items(self) -> List[Tuple[tuple, float]]:
        """Current reservoir as ``(key, original_weight)`` pairs."""
        items = [(key, w0) for _w, _c, key, w0 in self._heavy]
        items.extend(self._light)
        return items

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The live reservoir's full state as codec-friendly primitives.

        Includes the generator state, so a worker can be migrated
        mid-stream: the reconstructed sampler continues the stream with
        exactly the eviction decisions the original would have made.
        """
        return {
            "s": self._s,
            "tau": self._tau,
            "counter": self._counter,
            "items_seen": self._items_seen,
            "heavy": [
                (w, c, tuple(key), w0) for w, c, key, w0 in self._heavy
            ],
            "light": [(tuple(key), w0) for key, w0 in self._light],
            "rng": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamVarOpt":
        """Rebuild a live reservoir from :meth:`to_state` output."""
        sampler = cls(state["s"])
        # Honor whatever bit generator the original sampler ran on --
        # the state dict names it (PCG64, MT19937, Philox, ...).
        bit_generator = getattr(
            np.random, str(state["rng"]["bit_generator"])
        )()
        bit_generator.state = state["rng"]
        sampler._rng = np.random.Generator(bit_generator)
        sampler._tau = float(state["tau"])
        sampler._counter = int(state["counter"])
        sampler._items_seen = int(state["items_seen"])
        sampler._heavy = [
            (float(w), int(c), tuple(key), float(w0))
            for w, c, key, w0 in state["heavy"]
        ]
        sampler._light = [
            (tuple(key), float(w0)) for key, w0 in state["light"]
        ]
        return sampler

    def summary(self) -> SampleSummary:
        """The current reservoir as a :class:`SampleSummary`."""
        items = self.sample_items()
        if not items:
            return SampleSummary(
                coords=np.empty((0, 1), dtype=np.int64),
                weights=np.empty(0),
                tau=self._tau,
            )
        coords = np.asarray([key for key, _w in items], dtype=np.int64)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        weights = np.asarray([w for _k, w in items], dtype=float)
        return SampleSummary(coords=coords, weights=weights, tau=self._tau)


def stream_varopt_summary(
    dataset: Dataset,
    s: int,
    rng: np.random.Generator,
    strict_seed: bool = False,
) -> SampleSummary:
    """One-pass structure-oblivious VarOpt summary of a dataset.

    The default replays the dataset through the reservoir's vectorized
    bulk feed (:meth:`StreamVarOpt.update`), which realizes the same
    per-item accept/evict distribution as the per-item loop;
    ``strict_seed=True`` keeps the historical item-at-a-time feed (and
    its exact RNG stream).
    """
    sampler = StreamVarOpt(s, rng)
    if strict_seed:
        for key, weight in dataset.iter_items():
            sampler.feed(key, weight)
    else:
        sampler.update(dataset.coords, dataset.weights)
    return sampler.summary()
