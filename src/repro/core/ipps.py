"""IPPS (Inclusion Probability Proportional to Size) machinery.

IPPS sampling with threshold ``tau`` includes key i with probability
``p_i = min(1, w_i / tau)``.  For a target (expected) sample size ``s``
the threshold ``tau_s`` solves ``sum_i min(1, w_i / tau_s) = s``
(paper Appendix A).  This module provides:

* :func:`ipps_threshold` -- exact offline solver.
* :func:`ipps_probabilities` -- the probability vector for a target size.
* :class:`StreamingThreshold` -- the paper's Algorithm 4: one-pass exact
  computation of ``tau_s`` using a size-``s`` min-heap.
"""

from __future__ import annotations

import heapq
from typing import Tuple

import numpy as np

#: Relative tolerance used throughout when comparing probabilities to 0/1.
PROB_EPS = 1e-12


def ipps_threshold(weights: np.ndarray, s: float) -> float:
    """Exact threshold ``tau_s`` with ``sum_i min(1, w_i/tau_s) = s``.

    Zero-weight keys never contribute.  If ``s`` is at least the number
    of positive-weight keys the equation has no solution with
    ``tau > 0``; we return 0.0, meaning *every* positive-weight key is
    included with probability 1.

    Raises
    ------
    ValueError
        If ``s <= 0``.
    """
    if s <= 0:
        raise ValueError("sample size must be positive")
    w = np.asarray(weights, dtype=float)
    w = w[w > 0]
    n = w.size
    if s >= n:
        return 0.0
    w_sorted = np.sort(w)[::-1]
    tail_sums = np.concatenate((np.cumsum(w_sorted[::-1])[::-1], [0.0]))
    # Try k = number of keys taken with probability one (the k largest).
    # tau_k = (sum of the remaining weights) / (s - k) is consistent iff
    # the k-th largest weight is >= tau_k and the (k+1)-th is < tau_k.
    # All candidates are checked in one vectorized pass (the scalar
    # `for k` scan cost O(s) Python steps per build); the first
    # consistent k wins, matching the scalar scan order exactly.
    max_k = int(min(n - 1, np.floor(s)))
    ks = np.arange(max_k + 1)
    denoms = s - ks
    positive = denoms > 0
    taus = np.divide(
        tail_sums[ks], denoms, out=np.zeros(ks.size), where=positive
    )
    upper_ok = w_sorted[np.maximum(ks - 1, 0)] >= taus * (1 - PROB_EPS)
    upper_ok[0] = True
    lower_ok = w_sorted[ks] < taus * (1 + PROB_EPS)
    hits = np.flatnonzero(positive & upper_ok & lower_ok)
    if hits.size:
        return float(taus[hits[0]])
    # Fall back: numerical corner where the scan missed by rounding.
    return float(tail_sums[max_k] / (s - max_k))


def ipps_probabilities(weights: np.ndarray, s: float) -> Tuple[np.ndarray, float]:
    """IPPS probability vector and threshold for target sample size ``s``.

    Returns ``(p, tau)`` where ``p_i = min(1, w_i / tau)`` (and
    ``p_i = 1`` for every positive-weight key when ``tau == 0``).
    ``sum(p)`` equals ``min(s, #positive keys)`` up to float error.
    """
    w = np.asarray(weights, dtype=float)
    tau = ipps_threshold(w, s)
    if tau == 0.0:
        return (w > 0).astype(float), 0.0
    return np.minimum(1.0, w / tau), tau


class StreamingThreshold:
    """One-pass computation of ``tau_s`` (paper Algorithm 4).

    Maintains a min-heap ``H`` of the weights currently above the
    threshold and the sum ``L`` of all other weights; after each item the
    invariant ``tau = L / (s - |H|)`` with ``min(H) >= tau`` holds, so
    after the stream ends :attr:`tau` equals the offline ``tau_s``.

    Memory is ``O(s)`` independent of the stream length.
    """

    def __init__(self, s: float):
        if s <= 0:
            raise ValueError("sample size must be positive")
        self._s = float(s)
        self._heap: list = []
        self._light_sum = 0.0
        self._tau = 0.0
        self._count = 0

    @property
    def s(self) -> float:
        """Target sample size."""
        return self._s

    @property
    def count(self) -> int:
        """Number of positive-weight items processed."""
        return self._count

    @property
    def tau(self) -> float:
        """Current threshold estimate (exact for the prefix seen so far)."""
        if self._count <= self._s:
            return 0.0
        return self._tau

    def update(self, weight: float) -> None:
        """Process one item weight."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        if weight == 0:
            return
        self._count += 1
        if weight < self._tau:
            self._light_sum += weight
        else:
            heapq.heappush(self._heap, float(weight))
        self._rebalance()

    def update_many(self, weights: np.ndarray) -> None:
        """Process a batch of item weights in order."""
        for w in np.asarray(weights, dtype=float):
            self.update(float(w))

    def _rebalance(self) -> None:
        # Move heap minima into the light sum while they fall below the
        # implied threshold, re-deriving tau each time (the fixpoint of
        # lines 3-6 of Algorithm 4).
        while self._heap:
            full = len(self._heap) >= self._s
            below = (
                self._s > len(self._heap)
                and self._heap[0]
                < self._light_sum / (self._s - len(self._heap))
            )
            if not (full or below):
                break
            self._light_sum += heapq.heappop(self._heap)
        if len(self._heap) < self._s:
            self._tau = self._light_sum / (self._s - len(self._heap))
        # else: fewer than s items seen in total so far; tau stays 0 via
        # the `tau` property.


def heavy_key_mask(weights: np.ndarray, tau: float) -> np.ndarray:
    """Boolean mask of keys with ``w_i >= tau`` (IPPS probability one).

    With ``tau == 0`` (sample size covers all keys) every positive-weight
    key is heavy.
    """
    w = np.asarray(weights, dtype=float)
    if tau == 0.0:
        return w > 0
    return w >= tau * (1 - PROB_EPS)
