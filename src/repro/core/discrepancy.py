"""Range discrepancy measurement.

The discrepancy of a sample ``S`` on a range ``R`` is
``| |S ∩ R| - p(R) |`` where ``p(R)`` is the expected number of samples
in the range.  The error of the HT estimator on ``R`` is exactly
``tau * discrepancy`` (Appendix A), so discrepancy is the
structure-aware design target: Δ < 1 for hierarchies, Δ < 2 for orders,
O(d s^((d-1)/d)) for products.

These helpers compute *exact maxima* over entire range families
(all intervals in O(n log n), all hierarchy nodes in O(n · depth)),
which the test-suite uses to verify the paper's theorems.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.structures.hierarchy import RadixHierarchy
from repro.structures.ranges import Box, MultiRangeQuery


def _as_arrays(keys, probs, included):
    keys = np.asarray(keys)
    probs = np.asarray(probs, dtype=float)
    included = np.asarray(included, dtype=bool)
    if not (keys.shape[0] == probs.shape[0] == included.shape[0]):
        raise ValueError("keys, probs, included must have equal length")
    return keys, probs, included


def prefix_discrepancies(
    keys: np.ndarray, probs: np.ndarray, included: np.ndarray
) -> np.ndarray:
    """Signed discrepancy of every prefix of the sorted key order.

    Entry k is ``|S ∩ first k keys| - p(first k keys)`` (entry 0 is the
    empty prefix, always 0).
    """
    keys, probs, included = _as_arrays(keys, probs, included)
    order = np.argsort(keys, kind="stable")
    deltas = included[order].astype(float) - probs[order]
    return np.concatenate(([0.0], np.cumsum(deltas)))


def max_prefix_discrepancy(
    keys: np.ndarray, probs: np.ndarray, included: np.ndarray
) -> float:
    """Maximum discrepancy over all prefixes of the key order."""
    prefixes = prefix_discrepancies(keys, probs, included)
    return float(np.abs(prefixes).max())


def max_interval_discrepancy(
    keys: np.ndarray, probs: np.ndarray, included: np.ndarray
) -> float:
    """Maximum discrepancy over *all* intervals of the key order.

    Any interval is a difference of two prefixes, so the maximum over
    intervals equals ``max(prefix) - min(prefix)`` of the signed prefix
    discrepancies -- an O(n log n) computation covering all O(n^2)
    intervals.
    """
    prefixes = prefix_discrepancies(keys, probs, included)
    return float(prefixes.max() - prefixes.min())


def hierarchy_node_discrepancies(
    hierarchy: RadixHierarchy,
    keys: np.ndarray,
    probs: np.ndarray,
    included: np.ndarray,
) -> np.ndarray:
    """Per-depth maximum discrepancy over hierarchy nodes.

    Returns an array of length ``hierarchy.depth + 1``; entry d is the
    maximum discrepancy over all depth-d nodes (nodes containing no keys
    have discrepancy 0 and are skipped).  Entry 0 covers the root.
    """
    keys, probs, included = _as_arrays(keys, probs, included)
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    deltas = included[order].astype(float) - probs[order]
    maxima = np.zeros(hierarchy.depth + 1)
    maxima[0] = abs(float(deltas.sum()))
    for depth in range(1, hierarchy.depth + 1):
        nodes = hierarchy.node_of(keys_sorted, depth)
        boundaries = np.flatnonzero(np.diff(nodes)) + 1
        starts = np.concatenate(([0], boundaries))
        sums = np.add.reduceat(deltas, starts)
        maxima[depth] = float(np.abs(sums).max()) if sums.size else 0.0
    return maxima


def max_hierarchy_discrepancy(
    hierarchy: RadixHierarchy,
    keys: np.ndarray,
    probs: np.ndarray,
    included: np.ndarray,
) -> float:
    """Maximum discrepancy over all nodes of the hierarchy."""
    return float(
        hierarchy_node_discrepancies(hierarchy, keys, probs, included).max()
    )


def box_discrepancy(
    coords: np.ndarray,
    probs: np.ndarray,
    included: np.ndarray,
    box: Box,
) -> float:
    """Discrepancy of the sample on a single box."""
    coords = np.atleast_2d(np.asarray(coords))
    probs = np.asarray(probs, dtype=float)
    included = np.asarray(included, dtype=bool)
    mask = box.contains(coords)
    expected = float(probs[mask].sum())
    actual = int(included[mask].sum())
    return abs(actual - expected)


def max_box_discrepancy(
    coords: np.ndarray,
    probs: np.ndarray,
    included: np.ndarray,
    boxes: Iterable[Box],
) -> float:
    """Maximum discrepancy over a collection of boxes."""
    return max(
        (box_discrepancy(coords, probs, included, box) for box in boxes),
        default=0.0,
    )


def multirange_discrepancy(
    coords: np.ndarray,
    probs: np.ndarray,
    included: np.ndarray,
    query: MultiRangeQuery,
) -> float:
    """Discrepancy on a union of disjoint boxes (Lemma 4 setting).

    For samples this grows like sqrt(#ranges); for deterministic
    summaries the corresponding error grows linearly in #ranges.
    """
    coords = np.atleast_2d(np.asarray(coords))
    probs = np.asarray(probs, dtype=float)
    included = np.asarray(included, dtype=bool)
    mask = query.contains(coords)
    expected = float(probs[mask].sum())
    actual = int(included[mask].sum())
    return abs(actual - expected)


def discrepancy_summary(
    keys: np.ndarray,
    probs: np.ndarray,
    included: np.ndarray,
    hierarchy: RadixHierarchy = None,
) -> dict:
    """Convenience bundle of discrepancy statistics for 1-D samples."""
    result = {
        "prefix": max_prefix_discrepancy(keys, probs, included),
        "interval": max_interval_discrepancy(keys, probs, included),
    }
    if hierarchy is not None:
        result["hierarchy"] = max_hierarchy_discrepancy(
            hierarchy, keys, probs, included
        )
    return result
