"""Poisson IPPS sampling.

Each key is included independently with its IPPS probability
``min(1, w_i / tau_s)``.  The sample size is ``s`` only in expectation;
VarOpt improves on this with a fixed size and no-worse subset variance
(paper Appendix A).  Poisson sampling is used here as the pass-1 guide
sample option of the two-pass pipeline and as a comparison point in
tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.estimator import SampleSummary
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset


def poisson_sample(
    weights: np.ndarray, s: float, rng: np.random.Generator
) -> Tuple[np.ndarray, float]:
    """Poisson IPPS sample of a weight vector.

    Returns ``(included_indices, tau)``; the number of included keys has
    expectation ``min(s, #positive keys)``.
    """
    p, tau = ipps_probabilities(np.asarray(weights, dtype=float), s)
    draws = rng.random(p.shape[0])
    return np.flatnonzero(draws < p), tau


def poisson_summary(
    dataset: Dataset, s: float, rng: np.random.Generator
) -> SampleSummary:
    """Poisson IPPS summary of a dataset."""
    included, tau = poisson_sample(dataset.weights, s, rng)
    return SampleSummary(
        coords=dataset.coords[included],
        weights=dataset.weights[included],
        tau=tau,
    )
