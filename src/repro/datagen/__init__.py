"""Synthetic data and query workload generation (see DESIGN.md §5)."""

from repro.datagen.distributions import (
    pareto_weights,
    zipf_popularities,
    zipf_choice,
    with_heavy_head,
)
from repro.datagen.network import (
    NetworkConfig,
    generate_network_flows,
    network_domain,
    stream_network_flows,
)
from repro.datagen.tickets import TicketConfig, generate_tickets, clustered_leaves
from repro.datagen.queries import (
    uniform_area_queries,
    uniform_weight_queries,
    equal_weight_cells,
)
from repro.datagen.serving import (
    ReplayResult,
    TrafficQuery,
    latency_percentiles,
    open_loop_schedule,
    replay_open_loop,
    tenant_traffic,
)
from repro.datagen.timeseries import (
    TimeSeriesConfig,
    generate_bursty_series,
    stream_bursty_series,
    burstiness,
)

__all__ = [
    "TimeSeriesConfig",
    "generate_bursty_series",
    "stream_bursty_series",
    "burstiness",
    "pareto_weights",
    "zipf_popularities",
    "zipf_choice",
    "with_heavy_head",
    "NetworkConfig",
    "generate_network_flows",
    "network_domain",
    "stream_network_flows",
    "TicketConfig",
    "generate_tickets",
    "clustered_leaves",
    "uniform_area_queries",
    "uniform_weight_queries",
    "equal_weight_cells",
    "ReplayResult",
    "TrafficQuery",
    "latency_percentiles",
    "open_loop_schedule",
    "replay_open_loop",
    "tenant_traffic",
]
