"""Weight and popularity distributions for the synthetic generators.

The proprietary data sets of Section 6.1 are replaced by synthetic
equivalents (DESIGN.md Section 5).  Both real workloads are heavy
tailed; these helpers provide seeded Pareto weights and Zipf
popularities with the standard shapes used in the networking and
database literature.
"""

from __future__ import annotations

import numpy as np


def pareto_weights(
    n: int,
    alpha: float = 1.2,
    scale: float = 1.0,
    rng: np.random.Generator = None,
) -> np.ndarray:
    """Heavy-tailed Pareto(alpha) weights (flow bytes, ticket counts).

    ``alpha`` close to 1 gives the very skewed distributions typical of
    network flow sizes.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if rng is None:
        rng = np.random.default_rng()
    return scale * (1.0 + rng.pareto(alpha, size=n))


def zipf_popularities(k: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities over ``k`` categories."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, k + 1, dtype=float)
    raw = ranks ** (-exponent)
    return raw / raw.sum()


def zipf_choice(
    k: int,
    size: int,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` category indices from a Zipf(exponent) over ``k``."""
    probs = zipf_popularities(k, exponent)
    return rng.choice(k, size=size, p=probs)


def with_heavy_head(
    weights: np.ndarray,
    head_fraction: float,
    head_multiplier: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Inflate a random fraction of weights into a fat head.

    The tech-ticket data "has many high weight keys which must be
    included in both samples" (Section 6.4); this transform reproduces
    that property on top of any base distribution.
    """
    if not 0 <= head_fraction <= 1:
        raise ValueError("head_fraction must be in [0, 1]")
    weights = np.asarray(weights, dtype=float).copy()
    n_head = int(round(head_fraction * weights.size))
    if n_head:
        chosen = rng.choice(weights.size, size=n_head, replace=False)
        weights[chosen] *= head_multiplier
    return weights
