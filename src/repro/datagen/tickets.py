"""Synthetic technical-ticket table (substitute for the proprietary data).

The real data: customer-care tickets keyed by a trouble code and a
network code, each a point in a mixed-radix hierarchy of ~2^24 leaves
with varying per-level branching; 4.8K distinct trouble codes, 80K
distinct network codes, 500K observed combinations, and "many high
weight keys" (Section 6.4).  The generator reproduces:

* per-level Zipf-biased digits, so popular subtrees dominate at every
  depth (hierarchical clustering);
* a fat-headed weight distribution, so IPPS assigns probability one to
  a large share of the mass (the Figure 4(a) signature where aware and
  oblivious samples coincide at small sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.core.types import Dataset
from repro.datagen.distributions import (
    pareto_weights,
    with_heavy_head,
    zipf_popularities,
)
from repro.structures.hierarchy import ExplicitHierarchy
from repro.structures.product import ProductDomain


@dataclass(frozen=True)
class TicketConfig:
    """Parameters of the synthetic ticket generator.

    Defaults are laptop scale; set ``n_combinations=500_000`` and
    24-bit-deep branchings for full scale.
    """

    n_combinations: int = 20_000
    trouble_branchings: Tuple[int, ...] = (16, 8, 4, 8, 4, 2, 4, 2)
    network_branchings: Tuple[int, ...] = (8, 16, 4, 4, 8, 2, 2, 4)
    digit_exponent: float = 1.1
    weight_alpha: float = 1.1
    head_fraction: float = 0.02
    head_multiplier: float = 200.0


def clustered_leaves(
    hierarchy: ExplicitHierarchy,
    n: int,
    digit_exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw hierarchy leaves with Zipf-biased digits at every level.

    Each level's child index follows a Zipf over the branching factor
    (with a per-level random relabeling so popular children differ
    between levels), producing realistic popular subtrees.
    """
    leaves = np.zeros(n, dtype=np.int64)
    for depth, branching in enumerate(hierarchy.branchings):
        popularity = zipf_popularities(branching, digit_exponent)
        relabel = rng.permutation(branching)
        digits = relabel[rng.choice(branching, size=n, p=popularity)]
        leaves += digits * hierarchy.span(depth + 1)
    return leaves


def generate_tickets(
    config: TicketConfig = TicketConfig(), seed: int = 1234
) -> Dataset:
    """Generate the synthetic ticket table as a 2-D hierarchical dataset.

    Keys are (trouble code leaf, network code leaf) pairs; weights are
    ticket counts with an inflated heavy head.  Duplicate keys are
    aggregated.
    """
    rng = np.random.default_rng(seed)
    trouble = ExplicitHierarchy(config.trouble_branchings)
    network = ExplicitHierarchy(config.network_branchings)
    trouble_keys = clustered_leaves(
        trouble, config.n_combinations, config.digit_exponent, rng
    )
    network_keys = clustered_leaves(
        network, config.n_combinations, config.digit_exponent, rng
    )
    coords = np.column_stack((trouble_keys, network_keys))
    weights = pareto_weights(config.n_combinations, config.weight_alpha, rng=rng)
    weights = with_heavy_head(
        weights, config.head_fraction, config.head_multiplier, rng
    )
    domain = ProductDomain([trouble, network])
    dataset = Dataset(coords=coords, weights=weights, domain=domain)
    return dataset.aggregate_duplicates()
