"""Multi-tenant query-traffic generation and open-loop replay.

Serving systems are judged on tail latency under *open-loop* load:
arrivals happen at the offered rate no matter how fast (or slow) the
server answers, so queueing delay shows up in the measured latency
instead of silently throttling the client (a closed-loop caller only
submits after the previous answer lands, which hides saturation --
the "coordinated omission" trap).  This module generates the traffic
and replays it:

* :func:`tenant_traffic` -- a Zipf-skewed multi-tenant query stream:
  random interval queries over a 1-D domain, each tagged with a tenant
  drawn Zipf(``exponent``) over ``n_tenants`` (tenant 0 is the heavy
  hitter, matching real multi-tenant skew);
* :func:`open_loop_schedule` -- Poisson arrival offsets for a fixed
  offered rate (exponential inter-arrival gaps);
* :func:`replay_open_loop` -- replay a traffic list against any
  ``submit(method, query, tenant)`` callable at its scheduled times,
  measuring each query's latency **from its scheduled arrival** (not
  from when the replayer got around to submitting it) to when its
  answer was resolved;
* :func:`latency_percentiles` -- p50/p95/p99/p999 summary of a latency
  sample, in milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.distributions import zipf_choice
from repro.structures.ranges import Box

__all__ = [
    "ReplayResult",
    "TrafficQuery",
    "tenant_traffic",
    "open_loop_schedule",
    "replay_open_loop",
    "latency_percentiles",
]


@dataclass
class TrafficQuery:
    """One query in a generated traffic stream."""

    method: str
    query: Box
    tenant: str


def tenant_traffic(
    size: int,
    n_queries: int,
    *,
    methods: Sequence[str] = ("sketch",),
    n_tenants: int = 8,
    exponent: float = 1.2,
    max_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> List[TrafficQuery]:
    """Zipf-skewed multi-tenant interval queries over a 1-D domain.

    Each query is a random interval covering at most ``max_fraction``
    of ``[0, size)``; its tenant is drawn Zipf(``exponent``) over
    ``n_tenants`` (so tenant ``"t0"`` floods and the tail trickles)
    and its method round-robins over ``methods``.
    """
    if rng is None:
        rng = np.random.default_rng()
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    lows = rng.integers(0, size, n_queries)
    spans = rng.integers(0, max(1, int(size * max_fraction)), n_queries)
    highs = np.minimum(lows + spans, size - 1)
    tenants = zipf_choice(n_tenants, n_queries, exponent, rng)
    return [
        TrafficQuery(
            method=methods[i % len(methods)],
            query=Box((int(lo),), (int(hi),)),
            tenant=f"t{int(tenant)}",
        )
        for i, (lo, hi, tenant) in enumerate(zip(lows, highs, tenants))
    ]


def open_loop_schedule(
    n_arrivals: int,
    rate_per_s: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Poisson arrival offsets (seconds) at a fixed offered rate.

    Exponential inter-arrival gaps with mean ``1/rate_per_s``; the
    returned offsets are relative to the replay's start.  A Poisson
    process is the standard open-loop model: bursts happen naturally,
    which is exactly what stresses the queue.
    """
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if rng is None:
        rng = np.random.default_rng()
    gaps = rng.exponential(1.0 / rate_per_s, size=n_arrivals)
    return np.cumsum(gaps)


@dataclass
class ReplayResult:
    """Outcome of one open-loop replay."""

    latencies_ms: np.ndarray  # one per answered query
    shed: int  # submissions refused by admission control
    failed: int  # answers that raised (timeouts, kernel errors)
    offered: int  # scheduled arrivals
    answered: int  # len(latencies_ms)
    duration_s: float  # first scheduled arrival -> last answer
    achieved_per_s: float  # answered / duration

    def as_dict(self) -> Dict[str, float]:
        out = latency_percentiles(self.latencies_ms)
        out.update({
            "offered": self.offered,
            "answered": self.answered,
            "shed": self.shed,
            "failed": self.failed,
            "duration_s": round(self.duration_s, 4),
            "achieved_per_s": round(self.achieved_per_s, 1),
        })
        return out


def replay_open_loop(
    submit: Callable,
    traffic: Sequence[TrafficQuery],
    offsets: Sequence[float],
    *,
    shed_errors: tuple = (),
    result_timeout: float = 30.0,
) -> ReplayResult:
    """Replay ``traffic`` at its scheduled ``offsets`` (open loop).

    ``submit(method, query, tenant)`` must return a handle with
    ``result(timeout)`` and (optionally) a ``done_at`` monotonic stamp
    -- the :class:`~repro.distributed.frontend.ServingFrontend`
    surface.  Submissions never wait for earlier answers: the replayer
    sleeps only until the next *scheduled* arrival, and when it falls
    behind it submits the backlog immediately (the open-loop
    contract).  Latency is measured from the scheduled arrival to the
    answer's resolution stamp, so both queueing delay and replayer
    scheduling lag count against the server, never in its favor.

    Exceptions listed in ``shed_errors`` (e.g. ``OverloadError``) are
    counted as shed instead of raised.
    """
    if len(traffic) != len(offsets):
        raise ValueError("traffic and offsets must have equal length")
    handles: List[Optional[object]] = []
    start = time.monotonic()
    for item, offset in zip(traffic, offsets):
        ahead = start + float(offset) - time.monotonic()
        if ahead > 0:
            time.sleep(ahead)
        try:
            handles.append(submit(item.method, item.query, item.tenant))
        except shed_errors:
            handles.append(None)
    latencies: List[float] = []
    shed = failed = 0
    last_done = start
    for handle, offset in zip(handles, offsets):
        if handle is None:
            shed += 1
            continue
        try:
            handle.result(result_timeout)
        except Exception:
            failed += 1
            continue
        done_at = getattr(handle, "done_at", None)
        if done_at is None:
            done_at = time.monotonic()
        last_done = max(last_done, done_at)
        latencies.append(done_at - (start + float(offset)))
    duration = max(last_done - start, 1e-9)
    return ReplayResult(
        latencies_ms=np.asarray(latencies) * 1e3,
        shed=shed,
        failed=failed,
        offered=len(traffic),
        answered=len(latencies),
        duration_s=duration,
        achieved_per_s=len(latencies) / duration,
    )


def latency_percentiles(latencies_ms: np.ndarray) -> Dict[str, float]:
    """p50/p95/p99/p999 of a latency sample, in milliseconds."""
    if len(latencies_ms) == 0:
        return {
            "p50_ms": float("nan"), "p95_ms": float("nan"),
            "p99_ms": float("nan"), "p999_ms": float("nan"),
        }
    p50, p95, p99, p999 = np.percentile(
        latencies_ms, [50.0, 95.0, 99.0, 99.9]
    )
    return {
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "p999_ms": round(float(p999), 3),
    }
