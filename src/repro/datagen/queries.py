"""Query workload generators (Section 6.1).

Two query families, each a collection of non-overlapping rectangles:

* **uniform area** -- each rectangle is placed uniformly at random with
  per-axis extents uniform in ``[1, max_fraction * axis_size]``;
* **uniform weight** -- rectangles are cells of a kd-tree built over the
  *full* data (independent of any tree the samplers build), picked from
  the same level so each covers roughly the same share of the total
  weight.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aware.kd import build_kd_hierarchy, kd_leaf_boxes
from repro.core.types import Dataset
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box, MultiRangeQuery


def _random_box(
    sizes, max_fraction: float, rng: np.random.Generator
) -> Box:
    lows = []
    highs = []
    for size in sizes:
        extent = max(1, int(rng.random() * max_fraction * size))
        extent = min(extent, size)
        lo = int(rng.integers(0, size - extent + 1))
        lows.append(lo)
        highs.append(lo + extent - 1)
    return Box(tuple(lows), tuple(highs))


def uniform_area_queries(
    domain: ProductDomain,
    n_queries: int,
    ranges_per_query: int,
    max_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    max_tries: int = 200,
) -> List[MultiRangeQuery]:
    """Uniform-area multi-rectangle queries.

    Each query holds ``ranges_per_query`` pairwise disjoint random
    rectangles; rectangles are redrawn (up to ``max_tries`` times each)
    until disjoint from the ones already placed.
    """
    if rng is None:
        rng = np.random.default_rng()
    queries = []
    for _ in range(n_queries):
        boxes: List[Box] = []
        for _ in range(ranges_per_query):
            for attempt in range(max_tries):
                candidate = _random_box(domain.sizes, max_fraction, rng)
                if not any(candidate.intersects(b) for b in boxes):
                    boxes.append(candidate)
                    break
            else:
                raise RuntimeError(
                    "could not place disjoint rectangles; "
                    "reduce max_fraction or ranges_per_query"
                )
        queries.append(MultiRangeQuery(boxes, check_disjoint=False))
    return queries


def equal_weight_cells(
    dataset: Dataset, n_cells: int
) -> List[Box]:
    """Boxes of a kd partition of the data into ~``n_cells`` equal-weight cells.

    Builds a kd-tree over the whole data set with leaf mass
    ``total_weight / n_cells`` (this tree is independent of any tree the
    sampling methods build, as the paper notes).
    """
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    total = dataset.total_weight
    tree = build_kd_hierarchy(
        dataset.coords,
        dataset.weights,
        domain=dataset.domain,
        leaf_mass=total / n_cells,
    )
    return kd_leaf_boxes(tree)


def uniform_weight_queries(
    dataset: Dataset,
    n_queries: int,
    ranges_per_query: int,
    n_cells: int,
    rng: Optional[np.random.Generator] = None,
) -> List[MultiRangeQuery]:
    """Uniform-weight multi-rectangle queries from equal-weight kd cells.

    Each query unions ``ranges_per_query`` distinct cells of the
    equal-weight partition; the expected query weight is roughly
    ``ranges_per_query / n_cells`` of the total, so sweeping ``n_cells``
    sweeps the query weight.
    """
    if rng is None:
        rng = np.random.default_rng()
    cells = equal_weight_cells(dataset, n_cells)
    if len(cells) < ranges_per_query:
        raise ValueError(
            f"partition produced {len(cells)} cells < "
            f"{ranges_per_query} ranges per query"
        )
    queries = []
    for _ in range(n_queries):
        chosen = rng.choice(len(cells), size=ranges_per_query, replace=False)
        queries.append(
            MultiRangeQuery([cells[i] for i in chosen], check_disjoint=False)
        )
    return queries
