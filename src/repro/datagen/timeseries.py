"""Bursty one-dimensional (time-ordered) workloads.

The paper's order structure covers time-keyed data (interval queries
over timestamps).  This generator produces a bursty event series --
Poisson background plus heavy-tailed bursts at random epochs -- which
is the regime where interval queries and structure-aware sampling
matter most (a uniform series makes every summary look good).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.types import Dataset
from repro.datagen.distributions import pareto_weights
from repro.stream.types import MicroBatch


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Parameters of the bursty series generator."""

    horizon: int = 1 << 20  # number of time slots
    n_background: int = 5_000
    n_bursts: int = 12
    burst_width_frac: float = 0.002
    burst_events: int = 400
    weight_alpha: float = 1.3


def generate_bursty_series(
    config: TimeSeriesConfig = TimeSeriesConfig(), seed: int = 0
) -> Dataset:
    """A 1-D ordered dataset of (timestamp, weight) events.

    Background events are uniform over the horizon; each burst drops
    ``burst_events`` events into a narrow window.  Duplicate timestamps
    are aggregated.
    """
    rng = np.random.default_rng(seed)
    times = [rng.integers(0, config.horizon, size=config.n_background)]
    width = max(1, int(config.burst_width_frac * config.horizon))
    for _ in range(config.n_bursts):
        center = int(rng.integers(0, config.horizon))
        lo = max(0, center - width // 2)
        hi = min(config.horizon - 1, center + width // 2)
        times.append(rng.integers(lo, hi + 1, size=config.burst_events))
    keys = np.concatenate(times)
    weights = pareto_weights(keys.size, config.weight_alpha, rng=rng)
    data = Dataset.one_dimensional(keys, weights, size=config.horizon)
    return data.aggregate_duplicates()


def stream_bursty_series(
    config: TimeSeriesConfig = TimeSeriesConfig(),
    seed: int = 0,
    batch_duration: Optional[int] = None,
    batch_size: int = 1000,
) -> Iterator[MicroBatch]:
    """The bursty series as a time-ordered micro-batch stream.

    Events arrive sorted by timestamp (their key), unaggregated, so
    this is the natural feed for event-time windowing.  Two slicing
    modes:

    * ``batch_duration`` set -- one batch per ``batch_duration`` time
      slots, *aligned to multiples of it*.  A window whose pane length
      is a multiple of ``batch_duration`` therefore never sees a batch
      straddle a pane boundary (each batch fits inside one pane), which
      makes streamed window contents exactly reproducible from the
      batch dataset.  Empty spans emit nothing.
    * ``batch_duration`` unset -- fixed ``batch_size`` batches.

    Batch timestamps are the batch's last event time (event clock).
    """
    rng = np.random.default_rng(seed)
    times = [rng.integers(0, config.horizon, size=config.n_background)]
    width = max(1, int(config.burst_width_frac * config.horizon))
    for _ in range(config.n_bursts):
        center = int(rng.integers(0, config.horizon))
        lo = max(0, center - width // 2)
        hi = min(config.horizon - 1, center + width // 2)
        times.append(rng.integers(lo, hi + 1, size=config.burst_events))
    keys = np.concatenate(times)
    weights = pareto_weights(keys.size, config.weight_alpha, rng=rng)
    order = np.argsort(keys, kind="stable")
    keys, weights = keys[order], weights[order]
    coords = keys.reshape(-1, 1)
    if batch_duration is not None:
        if batch_duration < 1:
            raise ValueError("batch_duration must be >= 1")
        edges = np.arange(
            batch_duration, config.horizon + batch_duration, batch_duration
        )
        starts = np.searchsorted(keys, edges - batch_duration, side="left")
        stops = np.searchsorted(keys, edges - 1, side="right")
        for edge, start, stop in zip(edges, starts, stops):
            if stop > start:
                yield MicroBatch(
                    coords[start:stop],
                    weights[start:stop],
                    timestamp=float(keys[stop - 1]),
                )
        return
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    for start in range(0, keys.size, batch_size):
        stop = min(start + batch_size, keys.size)
        yield MicroBatch(
            coords[start:stop],
            weights[start:stop],
            timestamp=float(keys[stop - 1]),
        )


def burstiness(dataset: Dataset, n_bins: int = 64) -> float:
    """Coefficient of variation of binned weight (diagnostic).

    A uniform series scores near 0; a bursty one scores well above 1.
    """
    keys = dataset.keys_1d()
    horizon = dataset.domain.axes[0].size
    bins = np.minimum(keys * n_bins // horizon, n_bins - 1)
    sums = np.zeros(n_bins)
    np.add.at(sums, bins, dataset.weights)
    mean = sums.mean()
    if mean == 0:
        return 0.0
    return float(sums.std() / mean)
