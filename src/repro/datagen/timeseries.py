"""Bursty one-dimensional (time-ordered) workloads.

The paper's order structure covers time-keyed data (interval queries
over timestamps).  This generator produces a bursty event series --
Poisson background plus heavy-tailed bursts at random epochs -- which
is the regime where interval queries and structure-aware sampling
matter most (a uniform series makes every summary look good).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Dataset
from repro.datagen.distributions import pareto_weights


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Parameters of the bursty series generator."""

    horizon: int = 1 << 20  # number of time slots
    n_background: int = 5_000
    n_bursts: int = 12
    burst_width_frac: float = 0.002
    burst_events: int = 400
    weight_alpha: float = 1.3


def generate_bursty_series(
    config: TimeSeriesConfig = TimeSeriesConfig(), seed: int = 0
) -> Dataset:
    """A 1-D ordered dataset of (timestamp, weight) events.

    Background events are uniform over the horizon; each burst drops
    ``burst_events`` events into a narrow window.  Duplicate timestamps
    are aggregated.
    """
    rng = np.random.default_rng(seed)
    times = [rng.integers(0, config.horizon, size=config.n_background)]
    width = max(1, int(config.burst_width_frac * config.horizon))
    for _ in range(config.n_bursts):
        center = int(rng.integers(0, config.horizon))
        lo = max(0, center - width // 2)
        hi = min(config.horizon - 1, center + width // 2)
        times.append(rng.integers(lo, hi + 1, size=config.burst_events))
    keys = np.concatenate(times)
    weights = pareto_weights(keys.size, config.weight_alpha, rng=rng)
    data = Dataset.one_dimensional(keys, weights, size=config.horizon)
    return data.aggregate_duplicates()


def burstiness(dataset: Dataset, n_bins: int = 64) -> float:
    """Coefficient of variation of binned weight (diagnostic).

    A uniform series scores near 0; a bursty one scores well above 1.
    """
    keys = dataset.keys_1d()
    horizon = dataset.domain.axes[0].size
    bins = np.minimum(keys * n_bins // horizon, n_bins - 1)
    sums = np.zeros(n_bins)
    np.add.at(sums, bins, dataset.weights)
    mean = sums.mean()
    if mean == 0:
        return 0.0
    return float(sums.std() / mean)
