"""Synthetic IP-flow table (substitute for the paper's Network data set).

The real data: traffic volumes between 63K sources and 50K destinations
(196K active pairs) at a network peering point, in the product of two
32-bit IP hierarchies.  The synthetic generator reproduces the two
properties the algorithms are sensitive to:

* **hierarchical locality** -- addresses cluster under Zipf-popular
  prefixes of varying length (subnets), so shallow hierarchy nodes
  carry very unequal weight;
* **heavy-tailed flow sizes** -- Pareto-distributed bytes per pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.types import Dataset
from repro.datagen.distributions import pareto_weights, zipf_popularities
from repro.stream.types import MicroBatch
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the synthetic flow generator.

    Defaults are a laptop-scale version of the paper's trace; set
    ``n_pairs=196_000``, ``n_sources=63_000``, ``n_dests=50_000`` for
    full scale.
    """

    n_pairs: int = 20_000
    n_sources: int = 6_000
    n_dests: int = 5_000
    bits: int = 32
    n_clusters: int = 60
    min_prefix: int = 8
    max_prefix: int = 24
    cluster_exponent: float = 1.0
    address_exponent: float = 0.8
    weight_alpha: float = 1.2


def _clustered_addresses(
    n_distinct: int, config: NetworkConfig, rng: np.random.Generator
) -> np.ndarray:
    """Distinct addresses clustered under Zipf-popular prefixes."""
    prefix_lens = rng.integers(
        config.min_prefix, config.max_prefix + 1, size=config.n_clusters
    )
    prefixes = np.array(
        [
            rng.integers(0, 1 << int(plen), dtype=np.int64)
            for plen in prefix_lens
        ],
        dtype=np.int64,
    )
    popularity = zipf_popularities(config.n_clusters, config.cluster_exponent)
    # Oversample, then keep the first n_distinct unique addresses.
    addresses = np.empty(0, dtype=np.int64)
    attempts = 0
    while addresses.size < n_distinct and attempts < 8:
        draw = max(n_distinct * 2, 1024)
        clusters = rng.choice(config.n_clusters, size=draw, p=popularity)
        suffix_bits = config.bits - prefix_lens[clusters]
        suffixes = (
            rng.random(draw) * (2.0 ** suffix_bits)
        ).astype(np.int64)
        batch = (prefixes[clusters] << suffix_bits.astype(np.int64)) | suffixes
        addresses = np.unique(np.concatenate((addresses, batch)))
        attempts += 1
    if addresses.size < n_distinct:
        raise RuntimeError("could not generate enough distinct addresses")
    rng.shuffle(addresses)
    return addresses[:n_distinct]


def _address_universe(config: NetworkConfig, rng: np.random.Generator):
    """The generator's fixed address population and popularity laws."""
    sources = _clustered_addresses(config.n_sources, config, rng)
    dests = _clustered_addresses(config.n_dests, config, rng)
    src_pop = zipf_popularities(config.n_sources, config.address_exponent)
    dst_pop = zipf_popularities(config.n_dests, config.address_exponent)
    return sources, dests, src_pop, dst_pop


def network_domain(config: NetworkConfig = NetworkConfig()) -> ProductDomain:
    """The product-of-hierarchies domain network flows live in."""
    return ProductDomain(
        [BitHierarchy(config.bits), BitHierarchy(config.bits)]
    )


def stream_network_flows(
    config: NetworkConfig = NetworkConfig(),
    seed: int = 42,
    batch_size: int = 1000,
    time_per_batch: float = 1.0,
    n_batches: Optional[int] = None,
) -> Iterator[MicroBatch]:
    """The flow table as a live micro-batch stream (lazy generator).

    Draws flows from the same clustered-address / heavy-tailed-bytes
    population as :func:`generate_network_flows`, but batch by batch:
    ``config.n_pairs`` bounds the total (pass ``n_batches=None`` to
    emit until it is reached; a smaller ``n_batches`` stops early).
    Each batch carries an event-time stamp advancing ``time_per_batch``
    per batch.  Flows are *not* key-aggregated -- repeats of a pair are
    separate stream items, exactly as a packet tap would deliver them.

    Feed the result straight to the streaming engine::

        engine = StreamEngine(network_domain(config), "obliv", 1000)
        engine.ingest(stream_network_flows(config))
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = np.random.default_rng(seed)
    sources, dests, src_pop, dst_pop = _address_universe(config, rng)
    total = config.n_pairs
    if n_batches is not None:
        total = min(total, n_batches * batch_size)
    emitted = 0
    batch_index = 0
    while emitted < total:
        b = min(batch_size, total - emitted)
        src_idx = rng.choice(config.n_sources, size=b, p=src_pop)
        dst_idx = rng.choice(config.n_dests, size=b, p=dst_pop)
        coords = np.column_stack((sources[src_idx], dests[dst_idx]))
        weights = pareto_weights(b, config.weight_alpha, rng=rng)
        batch_index += 1
        emitted += b
        yield MicroBatch(coords, weights, timestamp=batch_index * time_per_batch)


def generate_network_flows(
    config: NetworkConfig = NetworkConfig(), seed: int = 42
) -> Dataset:
    """Generate the synthetic flow table as a 2-D hierarchical dataset.

    Keys are (source address, destination address) pairs in
    ``BitHierarchy(bits) x BitHierarchy(bits)``; weights are flow bytes.
    Duplicate pairs are aggregated, so the returned dataset may hold
    slightly fewer than ``config.n_pairs`` distinct keys.
    """
    rng = np.random.default_rng(seed)
    sources, dests, src_pop, dst_pop = _address_universe(config, rng)
    src_idx = rng.choice(config.n_sources, size=config.n_pairs, p=src_pop)
    dst_idx = rng.choice(config.n_dests, size=config.n_pairs, p=dst_pop)
    coords = np.column_stack((sources[src_idx], dests[dst_idx]))
    weights = pareto_weights(config.n_pairs, config.weight_alpha, rng=rng)
    dataset = Dataset(
        coords=coords, weights=weights, domain=network_domain(config)
    )
    return dataset.aggregate_duplicates()
