"""Unified telemetry: metrics registry, tracing, accuracy probes.

See ``OBSERVABILITY.md`` in this package for naming conventions, the
measured overhead budget, and the wiring guide.  The short version::

    from repro import obs

    obs.enable()                      # before building the stack
    registry = obs.get_registry()
    frontend = ServingFrontend(...)   # components pick up the registry
    ...
    print(obs.expose(registry.snapshot()))      # Prometheus text
    registry.report_timeline(sys.stdout)        # JSONL timeline record

The process-global registry starts *disabled*: every instrumented
component then holds shared null metrics and the hot paths pay one
branch per record.  Set ``REPRO_OBS=1`` in the environment (or call
:func:`enable`) before constructing components to turn telemetry on --
components capture their metric objects at init, so enabling later
only affects newly built components.
"""

from __future__ import annotations

import os
import threading

from repro.obs.accuracy import AccuracyProbe
from repro.obs.export import expose
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.trace import NULL_SPAN, Span, TraceRing

__all__ = [
    "AccuracyProbe",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "Span",
    "TraceRing",
    "enable",
    "expose",
    "get_registry",
    "set_registry",
]

_LOCK = threading.Lock()
_GLOBAL: MetricsRegistry = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS", "") not in ("", "0")
)


def get_registry() -> MetricsRegistry:
    """The process-global registry (disabled unless opted in)."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Components built *before* the swap keep the metrics they captured
    from the old registry -- swap first, construct after.
    """
    global _GLOBAL
    with _LOCK:
        previous = _GLOBAL
        _GLOBAL = registry
    return previous


def enable(trace_capacity: int = 1024) -> MetricsRegistry:
    """Install an enabled global registry (idempotent) and return it.

    A fresh registry is installed only when the current one is
    disabled, so calling twice keeps accumulated metrics.
    """
    with _LOCK:
        global _GLOBAL
        if not _GLOBAL.enabled:
            _GLOBAL = MetricsRegistry(
                enabled=True, trace_capacity=trace_capacity
            )
        return _GLOBAL
