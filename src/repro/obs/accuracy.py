"""Live accuracy telemetry: per-window discrepancy and VarOpt tau drift.

Serving a summary is only half the job; the operator also needs to see
*how wrong* the estimates currently are and whether the sampler's
inclusion threshold is drifting under the live key distribution.  An
:class:`AccuracyProbe` watches a :class:`~repro.stream.engine.
StreamEngine` that carries an exact reference method alongside its
approximate ones and, every ``stride``-th tick, runs a fixed query
battery through ``query_many_now`` and records per method:

* ``accuracy.discrepancy{method=...}`` -- the battery's maximum
  absolute estimate error vs the reference (the same max-|est-exact|
  statistic ``core/discrepancy.py`` computes offline);
* ``accuracy.tau{method=...}`` -- the snapshot's current VarOpt/IPPS
  inclusion threshold, when the summary exposes one;
* ``accuracy.tau_drift{method=...}`` -- the absolute change in tau
  since the previous observation (the ROADMAP's "tau drift" signal:
  a tau sprinting upward means the live keys are out-skewing the
  sample size).

The probe shares the engine's fold cache -- one battery per tick costs
one compiled plan against already-cached snapshots -- and ``stride``
spaces the ticks so accuracy telemetry stays off the per-batch hot
path.  All gauges land in the registry under the ``accuracy.*``
namespace, next to the wire/dispatch/serving metrics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["AccuracyProbe"]


class AccuracyProbe:
    """Periodic estimate-vs-reference discrepancy and tau telemetry.

    Parameters
    ----------
    engine:
        A stream engine whose registered methods include ``reference``.
    queries:
        The fixed query battery to evaluate (anything the engine's
        ``query_many_now`` accepts).
    reference:
        The method treated as ground truth (default ``"exact"``).
    stride:
        Observe on every ``stride``-th :meth:`tick` (default 1).
    registry:
        Metrics registry; defaults to the process-global one.
    """

    def __init__(self, engine, queries: Sequence, *,
                 reference: str = "exact", stride: int = 1,
                 registry=None):
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        methods = list(engine.methods)
        if reference not in methods:
            raise ValueError(
                f"reference method {reference!r} not registered on the "
                f"engine; have {methods}"
            )
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.engine = engine
        self.queries = list(queries)
        self.reference = reference
        self.stride = int(stride)
        self.registry = registry
        self._methods = [m for m in methods if m != reference]
        self._ticks = 0
        self._observations = registry.counter("accuracy.observations")
        self._disc = {
            m: registry.gauge("accuracy.discrepancy", method=m)
            for m in self._methods
        }
        self._tau = {
            m: registry.gauge("accuracy.tau", method=m)
            for m in self._methods
        }
        self._tau_drift = {
            m: registry.gauge("accuracy.tau_drift", method=m)
            for m in self._methods
        }
        self._last_tau: Dict[str, float] = {}

    def tick(self) -> Optional[Dict[str, Dict[str, float]]]:
        """Count one tick; observe on every ``stride``-th.

        Call once per ingested batch (or per pane seal).  Returns the
        observation dict when one was taken, else ``None``.
        """
        self._ticks += 1
        if self._ticks % self.stride:
            return None
        return self.observe()

    def observe(self) -> Dict[str, Dict[str, float]]:
        """Force an observation now; returns per-method readings.

        The result maps each non-reference method to a dict with
        ``discrepancy`` and, when the summary exposes a threshold,
        ``tau`` / ``tau_drift``.
        """
        answers = self.engine.query_many_now(self.queries)
        exact = np.asarray(answers[self.reference], dtype=float)
        out: Dict[str, Dict[str, float]] = {}
        for method in self._methods:
            estimates = np.asarray(answers[method], dtype=float)
            disc = float(np.max(np.abs(estimates - exact))) \
                if exact.size else 0.0
            reading = {"discrepancy": disc}
            self._disc[method].set(disc)
            tau = getattr(self.engine.snapshot(method), "tau", None)
            if tau is not None:
                tau = float(tau)
                drift = abs(tau - self._last_tau.get(method, tau))
                self._last_tau[method] = tau
                self._tau[method].set(tau)
                self._tau_drift[method].set(drift)
                reading["tau"] = tau
                reading["tau_drift"] = drift
            out[method] = reading
        self._observations.inc()
        return out
