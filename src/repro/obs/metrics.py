"""Low-overhead metrics: counters, gauges, log-bucket histograms, registry.

Every component in the serving stack used to grow its own hand-rolled
stats object (``WireStats``, ``DispatchStats``, ``FrontendStats``);
this module is the shared substrate they now sit on, plus the registry
that makes all of them visible through one namespace.

Design rules, in order:

* **Pay for what you use.**  A disabled registry hands out shared
  null metrics whose record methods are empty -- one no-op call per
  record -- and components gate their ``time.monotonic()`` bracketing
  behind a single ``registry.enabled`` branch.  The serving hot path
  must stay within 5% of its uninstrumented speed (gated by
  ``benchmarks/check_regression.py``).
* **Atomic increments under the GIL.**  CPython's ``x.attr += 1`` is
  a read-modify-write across several bytecodes and *can* lose updates
  between threads.  :meth:`Counter.inc` and :meth:`Histogram.observe`
  take a (per-metric, uncontended) lock, which is the one documented
  way to mutate shared telemetry from tenant threads, the serving
  flusher and the dispatcher selector at once.
* **Mergeable histograms.**  :class:`Histogram` state is a plain dict
  of power-of-two bucket counts: worker-side histograms serialize
  through the existing wire codec (``to_state``/``from_state``,
  registered under the ``obs-hist`` tag) and ``merge`` sums bucket
  counts on the coordinator -- associative and commutative, exactly
  like the summary fold.

Naming convention (see ``OBSERVABILITY.md``): dotted lowercase
``<component>.<metric>[_unit]`` -- ``wire.bytes_sent``,
``serving.latency_seconds``, ``accuracy.tau`` -- with labels for the
cardinality axis (``tenant=...``, ``method=...``).  Snapshot keys
render labels as ``name{k=v,...}`` with keys sorted.
"""

from __future__ import annotations

import json
import math
import threading
import time
import weakref
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Counter:
    """A monotonically growing count, incremented under a lock.

    The lock is what makes ``inc`` safe from any thread (the
    "atomic-increment-under-GIL" pattern the stats views share); the
    plain ``value`` read is a single atomic load and needs none.
    """

    __slots__ = ("_lock", "_value")

    kind = "counter"

    def __init__(self, lock: Optional[threading.Lock] = None):
        self._lock = lock if lock is not None else threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def set(self, value) -> None:
        """Overwrite the count (stats-view property setters only)."""
        with self._lock:
            self._value = value

    @property
    def value(self):
        return self._value

    def snapshot_value(self):
        return self._value


class Gauge:
    """A point-in-time value (queue depth, tau, pane count).

    ``set`` is a single attribute store -- atomic under the GIL -- so
    gauges need no lock.  ``set_max`` keeps a high-water mark and does
    take the lock (compare-and-store is not atomic).
    """

    __slots__ = ("_lock", "_value")

    kind = "gauge"

    def __init__(self, lock: Optional[threading.Lock] = None):
        self._lock = lock if lock is not None else threading.Lock()
        self._value = 0.0

    def set(self, value) -> None:
        self._value = value

    def set_max(self, value) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        return self._value

    def snapshot_value(self):
        return self._value


def bucket_exponent(value: float) -> int:
    """The power-of-two bucket index of one positive value.

    Bucket ``e`` covers ``[2**(e-1), 2**e)``: ``math.frexp`` writes
    ``value = m * 2**e`` with ``0.5 <= m < 1``, so ``e`` is exact --
    no log/rounding edge cases at the boundaries.
    """
    return math.frexp(value)[1]


class Histogram:
    """Power-of-two log-bucket histogram with rank-exact percentiles.

    Observations land in buckets keyed by their binary exponent
    (bucket ``e`` covers ``[2**(e-1), 2**e)``; non-positive values
    land in a dedicated zero bucket), so the state stays a handful of
    integers regardless of the latency range -- from nanoseconds to
    hours is ~60 buckets.

    **Percentiles** are *rank-exact at bucket resolution*:
    :meth:`percentile` locates the bucket holding the
    ``ceil(q * count)``-th smallest observation by exact integer rank
    arithmetic (no interpolation, deterministic, merge-stable) and
    returns that bucket's upper edge ``2**e`` -- an upper bound on the
    true quantile that is tight to within one octave (the true value
    lies in ``(2**(e-1), 2**e]``).

    **Mergeable**: ``merge`` sums bucket counts (associative and
    commutative -- integer sums), ``to_state``/``from_state`` are the
    standard wire-codec hooks (tag ``obs-hist``), so worker-side
    histograms ship over :func:`repro.distributed.codec.to_bytes` and
    sum on the coordinator exactly like summaries fold.

    Thread safety: ``observe``/``observe_many``/``merge`` mutate under
    the metric's lock; reads (:meth:`snapshot_value`, percentiles)
    take the lock once to copy the bucket dict.
    """

    __slots__ = ("_lock", "_buckets", "_zero", "_count", "_total",
                 "_min", "_max")

    kind = "histogram"

    def __init__(self, lock: Optional[threading.Lock] = None):
        self._lock = lock if lock is not None else threading.Lock()
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if value > 0.0:
                exp = math.frexp(value)[1]
                self._buckets[exp] = self._buckets.get(exp, 0) + 1
            else:
                self._zero += 1
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values) -> None:
        """Record a whole batch with one lock acquisition.

        The bucket math is vectorized (``np.frexp`` + ``bincount``),
        which is how the serving flusher records a flush's worth of
        per-tenant latencies at ~per-batch rather than per-query cost.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        positive = values[values > 0.0]
        if positive.size:
            exps = np.frexp(positive)[1]
            lo = int(exps.min())
            counts = np.bincount(exps - lo)
        with self._lock:
            if positive.size:
                for offset, count in enumerate(counts):
                    if count:
                        exp = lo + offset
                        self._buckets[exp] = (
                            self._buckets.get(exp, 0) + int(count)
                        )
            self._zero += int(values.size - positive.size)
            self._count += int(values.size)
            self._total += float(values.sum())
            vmin = float(values.min())
            vmax = float(values.max())
            if vmin < self._min:
                self._min = vmin
            if vmax > self._max:
                self._max = vmax

    # ------------------------------------------------------------------
    # Merging / wire codec
    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (returns self for chaining).

        Bucket counts are integer sums, so merging is associative and
        commutative whatever the merge tree shape -- worker histograms
        collected in any order agree bit-for-bit on every count.
        """
        with other._lock:
            buckets = dict(other._buckets)
            zero, count = other._zero, other._count
            total, vmin, vmax = other._total, other._min, other._max
        with self._lock:
            for exp, n in buckets.items():
                self._buckets[exp] = self._buckets.get(exp, 0) + n
            self._zero += zero
            self._count += count
            self._total += total
            if vmin < self._min:
                self._min = vmin
            if vmax > self._max:
                self._max = vmax
        return self

    def to_state(self) -> dict:
        """Wire-codec state (sorted arrays: deterministic frames)."""
        with self._lock:
            exps = np.asarray(sorted(self._buckets), dtype=np.int64)
            counts = np.asarray(
                [self._buckets[int(e)] for e in exps], dtype=np.int64
            )
            return {
                "exps": exps,
                "counts": counts,
                "zero": self._zero,
                "count": self._count,
                "total": self._total,
                "min": self._min,
                "max": self._max,
            }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        hist = cls()
        exps = np.asarray(state["exps"])
        counts = np.asarray(state["counts"])
        hist._buckets = {
            int(exp): int(count) for exp, count in zip(exps, counts)
        }
        hist._zero = int(state["zero"])
        hist._count = int(state["count"])
        hist._total = float(state["total"])
        hist._min = float(state["min"])
        hist._max = float(state["max"])
        return hist

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    def percentile(self, q: float) -> float:
        """Upper edge of the bucket holding the rank-``q`` observation.

        Exact integer rank selection: the returned ``2**e`` bounds the
        true ``q``-quantile from above, and the true value is
        guaranteed to exceed ``2**(e-1)`` (one-octave tightness).
        Returns ``0.0`` for an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("percentile fraction must be in (0, 1]")
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            rank = max(1, math.ceil(q * count))
            cumulative = self._zero
            if cumulative >= rank:
                return 0.0
            for exp in sorted(self._buckets):
                cumulative += self._buckets[exp]
                if cumulative >= rank:
                    return math.ldexp(1.0, exp)
        return self._max  # pragma: no cover - counts always cover rank

    def snapshot_value(self) -> dict:
        """The histogram as a plain dict (snapshots / JSONL timeline)."""
        with self._lock:
            buckets = {str(exp): n for exp, n in sorted(self._buckets.items())}
            count, zero, total = self._count, self._zero, self._total
            vmin, vmax = self._min, self._max
        out = {
            "count": count,
            "zero": zero,
            "total": total,
            "buckets": buckets,
        }
        if count:
            out["min"] = vmin
            out["max"] = vmax
            out["p50"] = self.percentile(0.50)
            out["p95"] = self.percentile(0.95)
            out["p99"] = self.percentile(0.99)
        return out


# ----------------------------------------------------------------------
# Null metrics (disabled registries hand these out)
# ----------------------------------------------------------------------

class _NullMetric:
    """Shared do-nothing metric: the cost of disabled instrumentation."""

    __slots__ = ()
    kind = "null"
    value = 0
    count = 0
    total = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def snapshot_value(self):
        return 0


NULL_COUNTER = _NullMetric()
NULL_GAUGE = _NullMetric()
NULL_HISTOGRAM = _NullMetric()

_METRIC_TYPES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}
_NULLS = {
    "counter": NULL_COUNTER,
    "gauge": NULL_GAUGE,
    "histogram": NULL_HISTOGRAM,
}


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Render ``name`` + labels as the canonical snapshot key."""
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class MetricsRegistry:
    """Named metrics plus pull-time collectors, one shared namespace.

    Two registration surfaces:

    * :meth:`counter` / :meth:`gauge` / :meth:`histogram` -- create-or-
      get a named metric (strong reference; same name + labels returns
      the same object, so increments accumulate).  On a disabled
      registry these return the shared null metrics, which is the
      pay-for-what-you-use contract: instrumented components hold null
      objects and every record call is an empty method.
    * :meth:`attach` -- register a *collector*: any object with an
      ``obs_metrics()`` method yielding ``(name, labels, metric)``
      triples.  The stats views (``WireStats``, ``DispatchStats``,
      ``FrontendStats``) attach themselves here; the registry keeps
      only a weak reference, so a torn-down transport's counters fall
      out of the snapshot with the transport.  Collectors contribute
      at snapshot time regardless of ``enabled`` -- their counters are
      functional state (wire accounting, shed counts) that exists
      either way, and pulling them costs nothing until asked.

    Same-key contributions (two transports of one name, per-supplier
    cache stats) are *summed* (counters/gauges) or *merged*
    (histograms) into the snapshot -- fleet totals, the Prometheus
    aggregation convention.

    ``enabled`` is decided at construction (or via :func:`repro.obs.
    enable` for the process-global registry) and should be set before
    the instrumented components are built: components grab their
    metric objects once, at init.
    """

    def __init__(self, enabled: bool = True, *, trace_capacity: int = 1024):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, tuple], object] = {}
        self._labels: Dict[Tuple[str, tuple], Dict[str, object]] = {}
        self._collectors: List[weakref.ref] = []
        # Imported lazily to keep module import order trivial.
        from repro.obs.trace import TraceRing

        self.trace = TraceRing(trace_capacity)
        self._timeline_prev: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Metric creation
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, object]):
        if not self.enabled:
            return _NULLS[kind]
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = _METRIC_TYPES[kind]()
                self._metrics[key] = metric
                self._labels[key] = dict(labels)
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # ------------------------------------------------------------------
    # Collectors (stats views pulled at snapshot time)
    # ------------------------------------------------------------------
    def attach(self, collector) -> None:
        """Register an ``obs_metrics()`` provider (weakly referenced)."""
        if not hasattr(collector, "obs_metrics"):
            raise TypeError(
                f"{type(collector).__name__} lacks an obs_metrics() hook"
            )
        with self._lock:
            self._collectors.append(weakref.ref(collector))

    def _live_collectors(self) -> List[object]:
        with self._lock:
            live, refs = [], []
            for ref in self._collectors:
                obj = ref()
                if obj is not None:
                    live.append(obj)
                    refs.append(ref)
            self._collectors = refs
        return live

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **tags):
        """A context-manager span; records duration into the trace
        ring and a ``trace.<name>_seconds`` histogram.  A no-op span
        on a disabled registry."""
        if not self.enabled:
            from repro.obs.trace import NULL_SPAN

            return NULL_SPAN
        return self.trace.span(
            name, self.histogram(f"trace.{name}_seconds"), tags
        )

    # ------------------------------------------------------------------
    # Snapshots / deltas / timeline
    # ------------------------------------------------------------------
    def _contributions(self) -> Iterable[Tuple[str, object]]:
        with self._lock:
            own = [
                (metric_key(name, self._labels[(name, labelkey)]), metric)
                for (name, labelkey), metric in self._metrics.items()
            ]
        for key, metric in own:
            yield key, metric
        for collector in self._live_collectors():
            for name, labels, metric in collector.obs_metrics():
                yield metric_key(name, labels or {}), metric

    def snapshot(self) -> Dict[str, object]:
        """Every metric's current value, one flat dict.

        Counters/gauges map to numbers, histograms to bucket dicts
        (see :meth:`Histogram.snapshot_value`).  Same-key metrics from
        several registrants are summed/merged.
        """
        merged: Dict[str, object] = {}
        hists: Dict[str, Histogram] = {}
        for key, metric in self._contributions():
            if metric.kind == "histogram":
                acc = hists.get(key)
                if acc is None:
                    hists[key] = acc = Histogram()
                acc.merge(metric)
            else:
                merged[key] = merged.get(key, 0) + metric.snapshot_value()
        for key, hist in hists.items():
            merged[key] = hist.snapshot_value()
        return dict(sorted(merged.items()))

    @staticmethod
    def delta(
        current: Dict[str, object], previous: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        """The change between two snapshots.

        Numbers subtract; histogram dicts subtract bucket-wise (bucket
        counts are monotone), so a delta's percentiles describe *just
        the window* between the snapshots -- which is what a live p99
        panel wants.  Keys absent from ``previous`` pass through.
        """
        if not previous:
            return dict(current)
        out: Dict[str, object] = {}
        for key, value in current.items():
            prev = previous.get(key)
            if isinstance(value, dict):
                out[key] = _hist_delta(value, prev)
            elif isinstance(prev, (int, float)):
                out[key] = value - prev
            else:
                out[key] = value
        return out

    def report_timeline(self, stream=None, **extra) -> Dict[str, object]:
        """Emit one JSONL timeline record; returns it as a dict.

        Each record carries the wall-clock stamp, the *delta* of every
        counter/histogram since the previous ``report_timeline`` call
        (first call: since startup) and the absolute value of every
        gauge -- the shape the dashboard's panels consume.  ``stream``
        (any ``.write``-able) gets the JSON line; pass ``None`` to
        only collect.  ``extra`` fields ride along verbatim.
        """
        snap = self.snapshot()
        record = {
            "t": time.time(),
            "metrics": self.delta(snap, self._timeline_prev),
        }
        record.update(extra)
        self._timeline_prev = snap
        if stream is not None:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
        return record


def _hist_delta(current: dict, previous) -> dict:
    """Bucket-wise difference of two histogram snapshot dicts."""
    if not isinstance(previous, dict):
        return dict(current)
    buckets = {
        exp: count - previous.get("buckets", {}).get(exp, 0)
        for exp, count in current.get("buckets", {}).items()
    }
    buckets = {exp: count for exp, count in buckets.items() if count}
    out = {
        "count": current.get("count", 0) - previous.get("count", 0),
        "zero": current.get("zero", 0) - previous.get("zero", 0),
        "total": current.get("total", 0.0) - previous.get("total", 0.0),
        "buckets": buckets,
    }
    count = out["count"]
    if count > 0:
        window = Histogram()
        window._buckets = {int(exp): n for exp, n in buckets.items()}
        window._zero = out["zero"]
        window._count = count
        out["p50"] = window.percentile(0.50)
        out["p95"] = window.percentile(0.95)
        out["p99"] = window.percentile(0.99)
    return out


# Wire-codec registration: worker-side histograms frame through the
# standard summary codec under the "obs-hist" tag (coordinator-side
# merge is Histogram.merge).  The registration itself lives in
# repro.engine.registry._register_defaults, next to the summary
# codecs, because importing the registry from here would cycle
# (registry -> summaries -> ... -> obs -> registry).
