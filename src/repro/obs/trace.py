"""Context-manager spans with monotonic timing and a bounded trace ring.

A :class:`Span` brackets one unit of work -- a flush, a pane seal, a
``run_tasks`` round -- with ``time.monotonic()`` stamps and, on exit,
appends a finished-span record to the registry's :class:`TraceRing`
and observes its duration into a ``trace.<name>_seconds`` histogram.
Parent links come from a thread-local span stack, so nested ``with``
blocks (a two-pass build inside a coordinator round) reconstruct as a
tree without any explicit plumbing.

The ring is a ``deque(maxlen=capacity)``: memory is bounded no matter
how long the process serves, and ``TraceRing.spans()`` returns the most
recent completed spans oldest-first for dumping or assertions.  On a
disabled registry ``registry.span(...)`` returns :data:`NULL_SPAN`, a
shared no-op context manager -- entering it costs two empty calls.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Span", "TraceRing", "NULL_SPAN"]

_STACK = threading.local()


def _stack() -> list:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


class Span:
    """One timed unit of work; use as a context manager.

    Span ids are ring-local monotone integers; ``parent_id`` is the id
    of the span that was open on the same thread when this one started
    (``None`` at the root).  ``duration`` is valid after exit.
    """

    __slots__ = ("name", "tags", "span_id", "parent_id", "start",
                 "duration", "error", "_ring", "_hist")

    def __init__(self, ring: "TraceRing", name: str, hist, tags):
        self.name = name
        self.tags = tags or {}
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0
        self.error: Optional[str] = None
        self._ring = ring
        self._hist = hist

    def __enter__(self) -> "Span":
        stack = _stack()
        self.span_id = self._ring.next_id()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.monotonic() - self.start
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._ring.record(self)
        if self._hist is not None:
            self._hist.observe(self.duration)
        return False


class _NullSpan:
    """Shared no-op span: what a disabled registry's ``span()`` costs."""

    __slots__ = ()
    name = ""
    tags: Dict[str, object] = {}
    span_id = None
    parent_id = None
    duration = 0.0
    error = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class TraceRing:
    """Bounded store of completed spans (most recent ``capacity``)."""

    def __init__(self, capacity: int = 1024):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._next_id = 0

    def next_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record(self, span: Span) -> None:
        with self._lock:
            self._ring.append({
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "start": span.start,
                "duration": span.duration,
                "error": span.error,
                "tags": span.tags,
            })

    def span(self, name: str, hist, tags) -> Span:
        return Span(self, name, hist, tags)

    def spans(self, name: Optional[str] = None) -> List[dict]:
        """Completed spans oldest-first, optionally filtered by name."""
        with self._lock:
            out = list(self._ring)
        if name is not None:
            out = [span for span in out if span["name"] == name]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
