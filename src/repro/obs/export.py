"""Exporters: Prometheus-style text exposition over a registry snapshot.

The third export surface next to ``registry.snapshot()``/``delta()``
dicts and ``registry.report_timeline()`` JSONL records.  ``expose``
renders the snapshot in the Prometheus text format so the output can
be pasted into any promtool-compatible consumer:

* metric names: dots become underscores, everything under a
  ``repro_`` prefix (``wire.bytes_sent`` -> ``repro_wire_bytes_sent``);
* labels carry over verbatim (``{tenant="t3"}``);
* histograms render as cumulative ``_bucket{le="..."}`` series with
  the power-of-two upper edges as ``le`` values, plus ``_sum`` and
  ``_count`` -- the standard histogram triple.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

__all__ = ["expose"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _split_key(key: str) -> Tuple[str, str]:
    """Split a snapshot key into (prometheus name, label block)."""
    name, labels = key, ""
    if key.endswith("}") and "{" in key:
        name, _, rest = key.partition("{")
        pairs = []
        for pair in rest[:-1].split(","):
            label, _, value = pair.partition("=")
            pairs.append('%s="%s"' % (_NAME_RE.sub("_", label), value))
        labels = "{" + ",".join(pairs) + "}"
    return "repro_" + _NAME_RE.sub("_", name), labels


def _label_join(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def expose(snapshot: Dict[str, object]) -> str:
    """Render one ``registry.snapshot()`` dict as exposition text."""
    lines: List[str] = []
    for key in sorted(snapshot):
        value = snapshot[key]
        name, labels = _split_key(key)
        if isinstance(value, dict):  # histogram snapshot
            cumulative = value.get("zero", 0)
            for exp in sorted(value.get("buckets", {}), key=int):
                cumulative += value["buckets"][exp]
                le = 'le="%r"' % math.ldexp(1.0, int(exp))
                lines.append(
                    "%s_bucket%s %d"
                    % (name, _label_join(labels, le), cumulative)
                )
            lines.append(
                '%s_bucket%s %d'
                % (name, _label_join(labels, 'le="+Inf"'),
                   value.get("count", 0))
            )
            lines.append("%s_sum%s %r" % (name, labels,
                                          value.get("total", 0.0)))
            lines.append("%s_count%s %d" % (name, labels,
                                            value.get("count", 0)))
        else:
            lines.append("%s%s %r" % (name, labels, value))
    return "\n".join(lines) + ("\n" if lines else "")
