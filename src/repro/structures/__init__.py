"""Key-domain structures: order, hierarchy, and product spaces.

The paper models structure as a range space ``(K, R)``.  Keys on every
axis are non-negative integers; hierarchy leaves are numbered in DFS
order so that every hierarchy node corresponds to an aligned integer
interval.  This makes all range predicates numeric and lets every
summary in the library share one ``Box`` query type.
"""

from repro.structures.order import OrderedDomain
from repro.structures.hierarchy import (
    BitHierarchy,
    ExplicitHierarchy,
    RadixHierarchy,
)
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box, MultiRangeQuery
from repro.structures.dyadic import (
    dyadic_decompose_interval,
    dyadic_decompose_box,
    dyadic_cell_interval,
)

__all__ = [
    "OrderedDomain",
    "BitHierarchy",
    "ExplicitHierarchy",
    "RadixHierarchy",
    "ProductDomain",
    "Box",
    "MultiRangeQuery",
    "dyadic_decompose_interval",
    "dyadic_decompose_box",
    "dyadic_cell_interval",
]
