"""Ordered key domains.

An order structure places keys on a line; the ranges ``R`` are all
intervals of consecutive keys (Section 3 of the paper).  The domain is
``[0, size)`` over the integers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class OrderedDomain:
    """A linearly ordered integer key domain ``[0, size)``."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self._size = int(size)

    @property
    def size(self) -> int:
        """Number of possible key values."""
        return self._size

    def contains(self, key: int) -> bool:
        """Whether ``key`` lies in the domain."""
        return 0 <= key < self._size

    def clip_interval(self, lo: int, hi: int) -> Tuple[int, int]:
        """Clip a closed interval ``[lo, hi]`` to the domain."""
        return max(0, int(lo)), min(self._size - 1, int(hi))

    def validate_keys(self, keys: np.ndarray) -> None:
        """Raise ``ValueError`` if any key is outside the domain."""
        keys = np.asarray(keys)
        if keys.size and (int(keys.min()) < 0 or int(keys.max()) >= self._size):
            raise ValueError("keys outside ordered domain")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderedDomain(size={self._size})"

    def __eq__(self, other) -> bool:
        return isinstance(other, OrderedDomain) and self._size == other._size

    def __hash__(self) -> int:
        return hash(("OrderedDomain", self._size))
