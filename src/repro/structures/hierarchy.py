"""Hierarchy structures over integer key domains.

A hierarchy attaches keys to the leaves of a rooted tree; the ranges
``R`` of the structure are the sets of leaves below internal nodes
(IP-address prefixes, geographic areas, trouble-code subtrees, ...).

Both hierarchy flavours used by the paper's experiments are *radix*
hierarchies: every node at a given depth has the same number of
children, so leaves can be numbered 0..N-1 in DFS order and the node at
depth ``d`` containing leaf ``k`` is simply ``k // span(d)`` where
``span(d)`` is the number of leaves under a depth-``d`` node.  This
module implements that shared machinery once (:class:`RadixHierarchy`)
with two front-ends:

* :class:`BitHierarchy` -- the implicit binary hierarchy over ``bits``-bit
  integers (IP addresses; nodes are prefixes).
* :class:`ExplicitHierarchy` -- mixed-radix hierarchy with a per-level
  branching factor (the technical-ticket code hierarchies).
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, Tuple

import numpy as np


class RadixHierarchy:
    """Rooted tree over leaves ``0..num_leaves-1`` with uniform per-level fanout.

    Parameters
    ----------
    branchings:
        ``branchings[d]`` is the number of children of every node at
        depth ``d`` (the root is depth 0).  The tree has
        ``len(branchings)`` levels below the root and
        ``prod(branchings)`` leaves.
    """

    def __init__(self, branchings: Sequence[int]):
        if not branchings:
            raise ValueError("hierarchy needs at least one level")
        if any(b < 2 for b in branchings):
            raise ValueError("branching factors must be >= 2")
        self._branchings = tuple(int(b) for b in branchings)
        # _spans[d] = number of leaves under a node at depth d.
        spans = [1]
        for b in reversed(self._branchings):
            spans.append(spans[-1] * b)
        self._spans = tuple(reversed(spans))

    @property
    def branchings(self) -> Tuple[int, ...]:
        """Per-level branching factors, root first."""
        return self._branchings

    @property
    def depth(self) -> int:
        """Depth of the leaves (number of levels below the root)."""
        return len(self._branchings)

    @property
    def num_leaves(self) -> int:
        """Total number of leaves (the size of the key domain)."""
        return self._spans[0]

    @property
    def size(self) -> int:
        """Alias for :attr:`num_leaves`; the axis domain size."""
        return self.num_leaves

    def span(self, depth: int) -> int:
        """Number of leaves under a single node at ``depth``."""
        return self._spans[depth]

    def node_of(self, key, depth: int):
        """Canonical id of the depth-``depth`` ancestor of leaf ``key``.

        Accepts scalars or numpy arrays.
        """
        return key // self._spans[depth]

    def node_interval(self, depth: int, node: int) -> Tuple[int, int]:
        """Half-open leaf interval ``[lo, hi)`` covered by a node."""
        span = self._spans[depth]
        lo = int(node) * span
        return lo, lo + span

    def path(self, key: int) -> Tuple[int, ...]:
        """Root-to-leaf child indices of ``key`` (mixed-radix digits)."""
        digits = []
        k = int(key)
        for d in range(self.depth):
            span = self._spans[d + 1]
            digits.append(k // span)
            k %= span
        return tuple(digits)

    def leaf_of_path(self, path: Sequence[int]) -> int:
        """Inverse of :meth:`path` (requires a full root-to-leaf path)."""
        if len(path) != self.depth:
            raise ValueError("path must reach a leaf")
        key = 0
        for d, digit in enumerate(path):
            if not 0 <= digit < self._branchings[d]:
                raise ValueError("path digit out of range")
            key += digit * self._spans[d + 1]
        return key

    def lca_depth(self, key_a: int, key_b: int) -> int:
        """Depth of the lowest common ancestor of two leaves."""
        if not (0 <= key_a < self.num_leaves and 0 <= key_b < self.num_leaves):
            raise ValueError("keys out of domain")
        depth = 0
        while depth < self.depth and self.node_of(key_a, depth + 1) == self.node_of(
            key_b, depth + 1
        ):
            depth += 1
        return depth

    def split_depth(self, key_lo: int, key_hi: int) -> int:
        """Deepest depth at which ``key_lo`` and ``key_hi`` share a node.

        Identical to :meth:`lca_depth` but computed arithmetically, and
        intended for the bottom-up aggregation recursion where
        ``key_lo <= key_hi`` are the extremes of a sorted key group.
        """
        return self.lca_depth(key_lo, key_hi)

    def ancestors(self, key: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(depth, node)`` for every proper ancestor, deepest first."""
        for depth in range(self.depth - 1, -1, -1):
            yield depth, int(self.node_of(key, depth))

    def interval_table(self, keys, weights, max_depth=None):
        """Weighted keys rolled up as a flat interval table.

        One row per induced node per level down to ``max_depth``
        (default: the leaves), each carrying its subtree's total
        weight.  Subtree and drilldown lookups on the result are sorted
        range scans; see
        :meth:`repro.structures.intervals.IntervalTable.from_hierarchy`.
        """
        from repro.structures.intervals import IntervalTable

        return IntervalTable.from_hierarchy(
            self, keys, weights, max_depth=max_depth
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(branchings={self._branchings})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RadixHierarchy)
            and self._branchings == other._branchings
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._branchings))


class BitHierarchy(RadixHierarchy):
    """Implicit binary hierarchy over ``bits``-bit integer keys.

    Nodes at depth ``d`` are the ``d``-bit prefixes; this is the IP
    address hierarchy of the paper's network data set (``bits=32``).
    """

    def __init__(self, bits: int):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self._bits = int(bits)
        super().__init__([2] * self._bits)

    @property
    def bits(self) -> int:
        """Number of bits (leaf depth)."""
        return self._bits

    def node_of(self, key, depth: int):
        shift = self._bits - depth
        return key >> shift if not isinstance(key, np.ndarray) else key >> shift

    def span(self, depth: int) -> int:
        return 1 << (self._bits - depth)

    def prefix_str(self, depth: int, node: int) -> str:
        """Human-readable binary prefix, e.g. ``'1011*'``."""
        if depth == 0:
            return "*"
        return format(int(node), f"0{depth}b") + "*"

    def lca_depth(self, key_a: int, key_b: int) -> int:
        if not (0 <= key_a < self.num_leaves and 0 <= key_b < self.num_leaves):
            raise ValueError("keys out of domain")
        diff = int(key_a) ^ int(key_b)
        if diff == 0:
            return self._bits
        return self._bits - diff.bit_length()


class ExplicitHierarchy(RadixHierarchy):
    """Mixed-radix hierarchy with per-level branching factors.

    Models the paper's technical-ticket hierarchies ("hierarchical with
    varying branching factor at each level, representing a total of
    approximately 2^24 possibilities").
    """

    @classmethod
    def with_approx_leaves(
        cls, target_leaves: int, branching_choices: Sequence[int] = (2, 4, 8, 16)
    ) -> "ExplicitHierarchy":
        """Build a varying-branching hierarchy with ~``target_leaves`` leaves.

        Cycles through ``branching_choices`` until the leaf count
        reaches ``target_leaves``; the produced domain size is the first
        product of the cycled factors that is >= the target.
        """
        if target_leaves < 2:
            raise ValueError("target_leaves must be >= 2")
        branchings = []
        total = 1
        i = 0
        while total < target_leaves:
            b = branching_choices[i % len(branching_choices)]
            branchings.append(b)
            total *= b
            i += 1
        return cls(branchings)

    @property
    def num_levels(self) -> int:
        """Number of levels below the root (same as :attr:`depth`)."""
        return self.depth


def common_node_depth(hierarchy: RadixHierarchy, keys: np.ndarray) -> int:
    """Deepest depth at which all ``keys`` fall under one node.

    Used by the induced-tree recursion: for a *sorted* key group this is
    the LCA depth of the extremes, which equals the LCA depth of the
    whole group.
    """
    if keys.size == 0:
        raise ValueError("empty key set has no common node")
    return hierarchy.lca_depth(int(keys.min()), int(keys.max()))


def induced_node_count(hierarchy: RadixHierarchy, keys: np.ndarray) -> int:
    """Number of internal nodes of the hierarchy induced by ``keys``.

    The induced hierarchy keeps only nodes with at least one key below
    them, contracting unary chains.  Useful for sizing expectations in
    tests: a set of n distinct leaves induces at most ``n - 1`` branching
    nodes.
    """
    uniq = np.unique(np.asarray(keys))
    if uniq.size <= 1:
        return 0
    count = 0
    stack = [(uniq, 0)]
    while stack:
        group, depth = stack.pop()
        if group.size <= 1:
            continue
        depth = max(depth, common_node_depth(hierarchy, group))
        if depth >= hierarchy.depth:
            continue
        child_ids = hierarchy.node_of(group, depth + 1)
        boundaries = np.flatnonzero(np.diff(child_ids)) + 1
        if boundaries.size == 0:
            # All in one child: contracted unary chain, descend.
            stack.append((group, depth + 1))
            continue
        count += 1
        pieces = np.split(group, boundaries)
        for piece in pieces:
            stack.append((piece, depth + 1))
    return count


def hierarchy_entropy(hierarchy: RadixHierarchy, keys: np.ndarray,
                      weights: np.ndarray, depth: int) -> float:
    """Shannon entropy (bits) of the weight distribution over depth-``depth`` nodes.

    A convenience diagnostic for data generators: low entropy at shallow
    depths indicates strong hierarchical clustering.
    """
    nodes = hierarchy.node_of(np.asarray(keys), depth)
    order = np.argsort(nodes, kind="stable")
    nodes_sorted = nodes[order]
    w_sorted = np.asarray(weights, dtype=float)[order]
    boundaries = np.flatnonzero(np.diff(nodes_sorted)) + 1
    sums = np.add.reduceat(w_sorted, np.concatenate(([0], boundaries)))
    total = sums.sum()
    if total <= 0:
        return 0.0
    probs = sums / total
    probs = probs[probs > 0]
    return float(-(probs * np.log2(probs)).sum())
