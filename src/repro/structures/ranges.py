"""Range (query) objects: axis-parallel boxes and multi-range unions.

All summaries in the library answer the same query type: the total
weight of keys inside a :class:`Box` or a :class:`MultiRangeQuery`
(a union of disjoint boxes).  Intervals use *closed* integer endpoints
``[lo, hi]`` so that a single leaf is the box with ``lo == hi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Box:
    """An axis-parallel hyper-rectangle with closed integer extents."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __post_init__(self):
        if len(self.lows) != len(self.highs):
            raise ValueError("lows and highs must have equal length")
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            raise ValueError(f"empty box: lows={self.lows} highs={self.highs}")

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    @property
    def volume(self) -> int:
        """Number of key values covered."""
        vol = 1
        for lo, hi in zip(self.lows, self.highs):
            vol *= hi - lo + 1
        return vol

    def side(self, axis: int) -> Tuple[int, int]:
        """The closed interval on ``axis``."""
        return self.lows[axis], self.highs[axis]

    def contains_point(self, point: Sequence[int]) -> bool:
        """Whether a single coordinate tuple lies inside the box."""
        return all(
            lo <= int(x) <= hi
            for x, lo, hi in zip(point, self.lows, self.highs)
        )

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership over an ``(n, d)`` coordinate array."""
        coords = np.asarray(coords)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        mask = np.ones(coords.shape[0], dtype=bool)
        for axis, (lo, hi) in enumerate(zip(self.lows, self.highs)):
            column = coords[:, axis]
            mask &= (column >= lo) & (column <= hi)
        return mask

    def intersects(self, other: "Box") -> bool:
        """Whether the two boxes share at least one key value."""
        return all(
            lo_a <= hi_b and lo_b <= hi_a
            for lo_a, hi_a, lo_b, hi_b in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def intersection(self, other: "Box") -> Optional["Box"]:
        """The overlapping box, or ``None`` if disjoint."""
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return None
        return Box(lows, highs)

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return all(
            lo_a <= lo_b and hi_b <= hi_a
            for lo_a, hi_a, lo_b, hi_b in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def overlap_fraction(self, other: "Box") -> float:
        """Fraction of this box's volume overlapped by ``other``."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        return inter.volume / self.volume

    def split(self, axis: int, split_value: int) -> Tuple["Box", "Box"]:
        """Split into ``coord <= split_value`` and ``coord > split_value``."""
        lo, hi = self.side(axis)
        if not lo <= split_value < hi:
            raise ValueError("split value must leave both halves non-empty")
        left_highs = list(self.highs)
        left_highs[axis] = split_value
        right_lows = list(self.lows)
        right_lows[axis] = split_value + 1
        return (
            Box(self.lows, tuple(left_highs)),
            Box(tuple(right_lows), self.highs),
        )


class MultiRangeQuery:
    """A union of pairwise-disjoint boxes (the paper's multi-range query).

    Query accuracy experiments in Section 6 evaluate queries that are
    collections of non-overlapping rectangles; discrepancy on such a
    query grows with the square root of the number of ranges for samples
    (Lemma 4) but linearly for deterministic summaries.
    """

    def __init__(self, boxes: Iterable[Box], check_disjoint: bool = True):
        self._boxes: List[Box] = list(boxes)
        if not self._boxes:
            raise ValueError("query must contain at least one box")
        dims = self._boxes[0].dims
        if any(b.dims != dims for b in self._boxes):
            raise ValueError("all boxes must share dimensionality")
        if check_disjoint:
            for i, a in enumerate(self._boxes):
                for b in self._boxes[i + 1:]:
                    if a.intersects(b):
                        raise ValueError("query boxes must be disjoint")

    @property
    def boxes(self) -> Tuple[Box, ...]:
        """The constituent boxes."""
        return tuple(self._boxes)

    @property
    def num_ranges(self) -> int:
        """Number of boxes in the union."""
        return len(self._boxes)

    @property
    def dims(self) -> int:
        """Dimensionality of the query."""
        return self._boxes[0].dims

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership in the union."""
        coords = np.asarray(coords)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        mask = np.zeros(coords.shape[0], dtype=bool)
        for box in self._boxes:
            mask |= box.contains(coords)
        return mask

    def __iter__(self):
        return iter(self._boxes)

    def __len__(self) -> int:
        return len(self._boxes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiRangeQuery({len(self._boxes)} boxes)"


def interval(lo: int, hi: int) -> Box:
    """One-dimensional closed-interval box."""
    return Box((int(lo),), (int(hi),))


def hierarchy_node_box(hierarchy, depth: int, node: int) -> Box:
    """The 1-D box covered by a hierarchy node."""
    lo, hi = hierarchy.node_interval(depth, node)
    return Box((lo,), (hi - 1,))


def product_box(*sides: Tuple[int, int]) -> Box:
    """Build a box from per-axis closed ``(lo, hi)`` intervals."""
    lows = tuple(int(lo) for lo, _ in sides)
    highs = tuple(int(hi) for _, hi in sides)
    return Box(lows, highs)
