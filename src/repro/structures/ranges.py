"""Range (query) objects: axis-parallel boxes and multi-range unions.

All summaries in the library answer the same query type: the total
weight of keys inside a :class:`Box` or a :class:`MultiRangeQuery`
(a union of disjoint boxes).  Intervals use *closed* integer endpoints
``[lo, hi]`` so that a single leaf is the box with ``lo == hi``.

Query-plan compiler
-------------------
Every vectorized ``query_many`` kernel consumes the same compiled form
of a query battery, built once by :func:`compile_query_plan`:

* the **flat** layout -- a ``(B, d, 2)`` bounds array over every
  constituent box of every query in battery order, plus per-query box
  ``counts``/``offsets`` (``B = counts.sum()``); per-box kernels sweep
  the flat stack and :meth:`QueryPlan.reduce_boxes` folds per-box
  values back onto queries.  This is the layout every shipped
  ``query_many`` kernel consumes;
* the **padded** layout -- a ``(q, r, d, 2)`` array with
  ``r = max(counts)``: row ``i`` holds query ``i``'s boxes left-aligned
  and is padded with the empty sentinel box ``lo=0, hi=-1`` (zero
  volume, zero overlap with everything).  Exposed (lazily, cached) for
  kernels that want per-query-aligned rectangular broadcasting instead
  of ragged ``reduceat`` folds.

Plans are cached at two levels: each :class:`Box` /
:class:`MultiRangeQuery` memoizes its own stacked bounds (queries are
immutable, so the memo is one-shot), and :class:`SortOrderCache` keeps
the last compiled battery so repeated batteries over a snapshot skip
even the concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class Box:
    """An axis-parallel hyper-rectangle with closed integer extents."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __post_init__(self):
        if len(self.lows) != len(self.highs):
            raise ValueError("lows and highs must have equal length")
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            raise ValueError(f"empty box: lows={self.lows} highs={self.highs}")

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    @property
    def volume(self) -> int:
        """Number of key values covered."""
        vol = 1
        for lo, hi in zip(self.lows, self.highs):
            vol *= hi - lo + 1
        return vol

    def side(self, axis: int) -> Tuple[int, int]:
        """The closed interval on ``axis``."""
        return self.lows[axis], self.highs[axis]

    def stacked_bounds(self) -> np.ndarray:
        """This box as a ``(1, d, 2)`` bounds array (one-shot memo).

        Boxes are immutable, so the stack is computed once and reused
        by every battery the box appears in.
        """
        cached = self.__dict__.get("_bounds")
        if cached is None:
            cached = np.empty((1, self.dims, 2), dtype=np.int64)
            cached[0, :, 0] = self.lows
            cached[0, :, 1] = self.highs
            cached.setflags(write=False)
            object.__setattr__(self, "_bounds", cached)
        return cached

    def contains_point(self, point: Sequence[int]) -> bool:
        """Whether a single coordinate tuple lies inside the box."""
        return all(
            lo <= int(x) <= hi
            for x, lo, hi in zip(point, self.lows, self.highs)
        )

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership over an ``(n, d)`` coordinate array."""
        coords = np.asarray(coords)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        if len(self.lows) == 1:
            # 1-D fast path (the dominant case for interval queries):
            # two fused comparisons, no all-ones mask to initialize.
            column = coords[:, 0]
            return (column >= self.lows[0]) & (column <= self.highs[0])
        mask = np.ones(coords.shape[0], dtype=bool)
        for axis, (lo, hi) in enumerate(zip(self.lows, self.highs)):
            column = coords[:, axis]
            mask &= (column >= lo) & (column <= hi)
        return mask

    @staticmethod
    def contains_many(coords: np.ndarray, boxes) -> np.ndarray:
        """Batched membership of ``coords`` in many boxes at once.

        Parameters
        ----------
        coords:
            ``(n, d)`` integer coordinate array.
        boxes:
            Either an iterable of :class:`Box` or a pre-stacked
            ``(q, d, 2)`` bounds array (see :func:`stack_boxes`).

        Returns
        -------
        ``(q, n)`` boolean mask; row ``i`` is ``boxes[i].contains(coords)``.
        All q x n comparisons happen in one broadcasted NumPy pass.
        """
        bounds = boxes if isinstance(boxes, np.ndarray) else stack_boxes(boxes)
        coords = np.asarray(coords)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        if bounds.shape[0] == 0:
            return np.zeros((0, coords.shape[0]), dtype=bool)
        if bounds.shape[1] != coords.shape[1]:
            raise ValueError(
                f"dimensionality mismatch: boxes have {bounds.shape[1]} "
                f"axes, coords have {coords.shape[1]}"
            )
        if bounds.shape[1] == 1:
            # 1-D fast path: one broadcasted double comparison, no
            # per-axis accumulation loop.
            column = coords[:, 0]
            return (column >= bounds[:, 0, 0, None]) & (
                column <= bounds[:, 0, 1, None]
            )
        # Accumulate per axis so intermediates stay (q, n), never
        # (q, n, d) -- the memory traffic dominates at scale.
        mask = np.empty((bounds.shape[0], coords.shape[0]), dtype=bool)
        np.greater_equal(coords[:, 0], bounds[:, 0, 0, None], out=mask)
        mask &= coords[:, 0] <= bounds[:, 0, 1, None]
        for axis in range(1, coords.shape[1]):
            column = coords[:, axis]
            axis_mask = column >= bounds[:, axis, 0, None]
            axis_mask &= column <= bounds[:, axis, 1, None]
            mask &= axis_mask
        return mask

    def intersects(self, other: "Box") -> bool:
        """Whether the two boxes share at least one key value."""
        return all(
            lo_a <= hi_b and lo_b <= hi_a
            for lo_a, hi_a, lo_b, hi_b in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def intersection(self, other: "Box") -> Optional["Box"]:
        """The overlapping box, or ``None`` if disjoint."""
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return None
        return Box(lows, highs)

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return all(
            lo_a <= lo_b and hi_b <= hi_a
            for lo_a, hi_a, lo_b, hi_b in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def overlap_fraction(self, other: "Box") -> float:
        """Fraction of this box's volume overlapped by ``other``."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        return inter.volume / self.volume

    def split(self, axis: int, split_value: int) -> Tuple["Box", "Box"]:
        """Split into ``coord <= split_value`` and ``coord > split_value``."""
        lo, hi = self.side(axis)
        if not lo <= split_value < hi:
            raise ValueError("split value must leave both halves non-empty")
        left_highs = list(self.highs)
        left_highs[axis] = split_value
        right_lows = list(self.lows)
        right_lows[axis] = split_value + 1
        return (
            Box(self.lows, tuple(left_highs)),
            Box(tuple(right_lows), self.highs),
        )


class MultiRangeQuery:
    """A union of pairwise-disjoint boxes (the paper's multi-range query).

    Query accuracy experiments in Section 6 evaluate queries that are
    collections of non-overlapping rectangles; discrepancy on such a
    query grows with the square root of the number of ranges for samples
    (Lemma 4) but linearly for deterministic summaries.
    """

    def __init__(self, boxes: Iterable[Box], check_disjoint: bool = True):
        self._boxes: List[Box] = list(boxes)
        if not self._boxes:
            raise ValueError("query must contain at least one box")
        dims = self._boxes[0].dims
        if any(b.dims != dims for b in self._boxes):
            raise ValueError("all boxes must share dimensionality")
        self._bounds: Optional[np.ndarray] = None
        self._disjoint: Optional[bool] = len(self._boxes) == 1 or None
        if check_disjoint:
            for i, a in enumerate(self._boxes):
                for b in self._boxes[i + 1:]:
                    if a.intersects(b):
                        raise ValueError("query boxes must be disjoint")
            self._disjoint = True

    @property
    def boxes_disjoint(self) -> bool:
        """Whether the boxes are pairwise disjoint (verified lazily).

        Queries built with ``check_disjoint=False`` defer the pairwise
        check until something needs it (e.g. the batched query kernel,
        which is only additive over disjoint boxes); the answer is
        cached.
        """
        if self._disjoint is None:
            self._disjoint = not any(
                a.intersects(b)
                for i, a in enumerate(self._boxes)
                for b in self._boxes[i + 1:]
            )
        return self._disjoint

    @property
    def boxes(self) -> Tuple[Box, ...]:
        """The constituent boxes."""
        return tuple(self._boxes)

    def stacked_bounds(self) -> np.ndarray:
        """The boxes as an ``(r, d, 2)`` bounds array (one-shot memo).

        The box list never changes after construction, so the stack is
        computed on first use and shared by every battery this query
        appears in -- repeated batteries stop re-stacking bounds.
        """
        if self._bounds is None:
            bounds = stack_boxes(self._boxes)
            bounds.setflags(write=False)
            self._bounds = bounds
        return self._bounds

    @property
    def num_ranges(self) -> int:
        """Number of boxes in the union."""
        return len(self._boxes)

    @property
    def dims(self) -> int:
        """Dimensionality of the query."""
        return self._boxes[0].dims

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized membership in the union."""
        coords = np.asarray(coords)
        if coords.ndim == 1:
            coords = coords.reshape(-1, 1)
        mask = np.zeros(coords.shape[0], dtype=bool)
        for box in self._boxes:
            mask |= box.contains(coords)
        return mask

    def __iter__(self):
        return iter(self._boxes)

    def __len__(self) -> int:
        return len(self._boxes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiRangeQuery({len(self._boxes)} boxes)"


def interval(lo: int, hi: int) -> Box:
    """One-dimensional closed-interval box."""
    return Box((int(lo),), (int(hi),))


def hierarchy_node_box(hierarchy, depth: int, node: int) -> Box:
    """The 1-D box covered by a hierarchy node."""
    lo, hi = hierarchy.node_interval(depth, node)
    return Box((lo,), (hi - 1,))


def product_box(*sides: Tuple[int, int]) -> Box:
    """Build a box from per-axis closed ``(lo, hi)`` intervals."""
    lows = tuple(int(lo) for lo, _ in sides)
    highs = tuple(int(hi) for _, hi in sides)
    return Box(lows, highs)


# ----------------------------------------------------------------------
# Batched query evaluation (the engine's vectorized hot path)
# ----------------------------------------------------------------------

def stack_boxes(boxes) -> np.ndarray:
    """Stack box bounds into a ``(q, d, 2)`` integer array.

    ``out[i, :, 0]`` are ``boxes[i].lows`` and ``out[i, :, 1]`` the
    highs.  This is the layout :meth:`Box.contains_many` consumes.
    """
    boxes = list(boxes)
    if not boxes:
        return np.zeros((0, 0, 2), dtype=np.int64)
    dims = boxes[0].dims
    if any(b.dims != dims for b in boxes):
        raise ValueError("all boxes must share dimensionality")
    lows = np.asarray([box.lows for box in boxes], dtype=np.int64)
    highs = np.asarray([box.highs for box in boxes], dtype=np.int64)
    return np.stack((lows.reshape(len(boxes), dims),
                     highs.reshape(len(boxes), dims)), axis=2)


class QueryPlan(Sequence):
    """A compiled query battery: stacked bounds plus per-query offsets.

    Built by :func:`compile_query_plan`; every vectorized ``query_many``
    kernel consumes one.  The plan behaves as a read-only sequence of
    the original query objects, so it can be handed to any code that
    expects the raw battery (including the scalar fallback loop).

    Layouts (see the module docstring):

    * :attr:`bounds` -- flat ``(B, d, 2)`` stack of every constituent
      box in battery order; :attr:`counts` / :attr:`offsets` delimit
      each query's boxes; :meth:`reduce_boxes` folds per-box values
      back onto queries.
    * :meth:`padded` -- ``(q, r, d, 2)`` with ``r = max(counts)``,
      left-aligned and padded with the empty sentinel box ``lo=0,
      hi=-1`` (computed lazily, cached on the plan).
    """

    __slots__ = ("queries", "bounds", "counts", "offsets", "_padded",
                 "_sorted_1d")

    def __init__(self, queries: List[Union[Box, MultiRangeQuery]]):
        self.queries = queries
        parts = [
            query.stacked_bounds() for query in queries
        ]
        if parts:
            dims = parts[0].shape[1]
            if any(part.shape[1] != dims for part in parts):
                raise ValueError("all queries must share dimensionality")
            self.bounds = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
        else:
            self.bounds = np.zeros((0, 0, 2), dtype=np.int64)
        self.counts = np.asarray(
            [part.shape[0] for part in parts], dtype=np.int64
        )
        self.offsets = np.concatenate(
            ([0], np.cumsum(self.counts)[:-1])
        ) if parts else np.zeros(0, dtype=np.int64)
        self._padded: Optional[np.ndarray] = None
        self._sorted_1d: Optional[Tuple[np.ndarray, ...]] = None

    def __len__(self) -> int:
        return len(self.queries)

    def sorted_1d(self) -> Tuple[np.ndarray, ...]:
        """Sorted views of the 1-D bounds, cached on the plan.

        Returns ``(order_lo, sorted_lo, order_hi, sorted_hi)`` where
        ``sorted_lo = bounds[:, 0, 0][order_lo]`` (stable argsort) and
        likewise for the high bounds.  The interval-table scan kernel
        (:meth:`repro.structures.intervals.IntervalTable.range_scan`)
        uses these to place each level's cells among the battery's
        bounds by counting instead of per-query binary searches; the
        sort amortizes across every summary served from the same plan.
        """
        if self._sorted_1d is None:
            lo = self.bounds[:, 0, 0]
            hi = self.bounds[:, 0, 1]
            order_lo = np.argsort(lo, kind="stable")
            order_hi = np.argsort(hi, kind="stable")
            self._sorted_1d = (
                order_lo, lo[order_lo], order_hi, hi[order_hi]
            )
        return self._sorted_1d

    def __getitem__(self, index):
        return self.queries[index]

    @property
    def dims(self) -> int:
        """Dimensionality of the battery (0 for an empty one)."""
        return self.bounds.shape[1]

    @property
    def num_boxes(self) -> int:
        """Total constituent boxes across the battery."""
        return self.bounds.shape[0]

    @property
    def single_box(self) -> bool:
        """Whether every query is a single box (flat == padded)."""
        return bool((self.counts == 1).all()) if len(self.queries) else True

    def padded(self) -> np.ndarray:
        """The ``(q, r, d, 2)`` padded-bounds layout (lazy, cached).

        Row ``i`` holds query ``i``'s boxes left-aligned; padding slots
        are the empty sentinel ``lo=0, hi=-1``, whose overlap with any
        box (and whose volume) is zero, so rectangular kernels need no
        validity mask for additive contributions.
        """
        if self._padded is None:
            q = len(self.queries)
            r = int(self.counts.max()) if q else 0
            padded = np.zeros((q, r, self.dims, 2), dtype=np.int64)
            padded[:, :, :, 1] = -1
            slot = (
                np.arange(self.bounds.shape[0])
                - np.repeat(self.offsets, self.counts)
            )
            padded[np.repeat(np.arange(q), self.counts), slot] = self.bounds
            padded.setflags(write=False)
            self._padded = padded
        return self._padded

    def reduce_boxes(self, per_box: np.ndarray) -> np.ndarray:
        """Fold per-box values into per-query sums (additive unions)."""
        per_box = np.asarray(per_box)
        if self.single_box:
            return per_box
        return np.add.reduceat(per_box, self.offsets)


def compile_query_plan(
    queries: Union["QueryPlan", Iterable[Union[Box, MultiRangeQuery]]]
) -> QueryPlan:
    """Compile a battery into a :class:`QueryPlan` (idempotent).

    A battery that is already a plan is returned as-is, so kernels can
    unconditionally compile their input and callers that serve several
    summaries from one battery (the stream engine, the frontend) pay
    the stacking once.
    """
    if isinstance(queries, QueryPlan):
        return queries
    return QueryPlan(list(queries))


def flatten_queries(
    queries: Sequence[Union[Box, MultiRangeQuery]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a battery of queries into stacked box bounds.

    Accepts any sequence (list, tuple, ...) whose elements are
    :class:`Box` or :class:`MultiRangeQuery`, or an already-compiled
    :class:`QueryPlan`.  Returns ``(bounds, counts)`` where
    ``bounds`` is the ``(B, d, 2)`` stack of every constituent box in
    order and ``counts[i]`` is the number of boxes of query ``i``.
    """
    plan = compile_query_plan(queries)
    return plan.bounds, plan.counts


def batch_union_masks(queries, coords: np.ndarray) -> np.ndarray:
    """``(q, n)`` union-membership masks for a battery of queries.

    Row ``i`` equals ``queries[i].contains(coords)`` -- membership in
    the *union* of the query's boxes -- but every box of every query is
    evaluated in a single broadcasted pass and the per-query OR is a
    single ``logical_or.reduceat``.
    """
    coords = np.asarray(coords)
    if coords.ndim == 1:
        coords = coords.reshape(-1, 1)
    plan = compile_query_plan(queries)
    if plan.counts.size == 0:
        return np.zeros((0, coords.shape[0]), dtype=bool)
    box_masks = Box.contains_many(coords, plan.bounds)
    if plan.single_box:
        return box_masks
    return np.logical_or.reduceat(box_masks, plan.offsets, axis=0)


def _dense_box_sums(
    bounds: np.ndarray,
    coords: np.ndarray,
    values: np.ndarray,
    chunk_elems: int,
) -> np.ndarray:
    """Weighted in-box sums via chunked dense membership masks.

    ``O(B * n * d)`` streaming boolean work; the right kernel when most
    boxes cover most points (sparse candidate lists would be as large
    as the dense mask but cost per-element index arithmetic).
    """
    n_boxes = bounds.shape[0]
    n = coords.shape[0]
    per_box = np.empty(n_boxes, dtype=float)
    rows = max(1, chunk_elems // max(1, n))
    for start in range(0, n_boxes, rows):
        stop = min(n_boxes, start + rows)
        mask = Box.contains_many(coords, bounds[start:stop])
        per_box[start:stop] = mask.astype(values.dtype) @ values
    return per_box


def _sparse_pivot_sums(
    pivot: int,
    sorted_coords: np.ndarray,
    sorted_values: np.ndarray,
    bounds: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    chunk_elems: int,
) -> np.ndarray:
    """In-box sums for boxes sharing one pivot axis (sort-based sweep).

    ``sorted_coords``/``sorted_values`` are the data ordered by the
    pivot axis; ``left``/``right`` delimit each box's candidate slice
    in that order.  Only candidates are verified against the remaining
    axes, chunked so the concatenated index arrays stay small.
    """
    n_boxes = bounds.shape[0]
    dims = sorted_coords.shape[1]
    other_axes = [axis for axis in range(dims) if axis != pivot]
    # Contiguous per-axis columns make the candidate gathers 1-D.
    axis_columns = {
        axis: np.ascontiguousarray(sorted_coords[:, axis])
        for axis in other_axes
    }
    spans = {
        axis: (bounds[:, axis, 1] - bounds[:, axis, 0]).astype(np.uint64)
        for axis in other_axes
    }
    lengths = right - left
    per_box = np.zeros(n_boxes, dtype=float)
    # Chunk boundaries come from one cumsum, not a Python scan.
    cum = np.concatenate(([0], np.cumsum(lengths)))
    chunk_starts = [0]
    while chunk_starts[-1] < n_boxes:
        start = chunk_starts[-1]
        stop = int(
            np.searchsorted(cum, cum[start] + chunk_elems, side="right") - 1
        )
        chunk_starts.append(max(stop, start + 1))
    for start, stop in zip(chunk_starts[:-1], chunk_starts[1:]):
        chunk_lengths = lengths[start:stop]
        total = int(cum[stop] - cum[start])
        if total == 0:
            continue
        # rows[k]: the k-th candidate row (in pivot-sorted order), by
        # the concatenated-ranges trick fused into a single repeat.
        offsets = cum[start:stop] - cum[start]
        rows = np.arange(total, dtype=np.int64) + np.repeat(
            left[start:stop] - offsets, chunk_lengths
        )
        weights = sorted_values[rows]
        for axis in other_axes:
            column = axis_columns[axis][rows]
            lo = np.repeat(bounds[start:stop, axis, 0], chunk_lengths)
            span = np.repeat(spans[axis][start:stop], chunk_lengths)
            # Closed-interval check in one compare: (column - lo)
            # reinterpreted as unsigned wraps negatives far above any
            # span.  In-place ops keep the temporaries down.
            np.subtract(column, lo, out=column)
            weights *= column.view(np.uint64) <= span
        nonzero = chunk_lengths > 0
        per_box[start:stop][nonzero] = np.add.reduceat(
            weights, offsets[nonzero]
        )
    return per_box


def prepare_sort_orders(coords: np.ndarray, values: np.ndarray) -> dict:
    """Precompute the per-axis sort orders used by the batched kernel.

    The ``O(d n log n)`` argsorts (plus the sorted coordinate/value
    gathers and, in 1-D, the prefix sums) dominate
    :func:`batch_query_sums` on repeated batteries over an unchanged
    snapshot.  This captures everything that depends only on the data
    -- not on the queries -- so a cached result leaves just the
    per-battery ``searchsorted`` and candidate sweeps.
    """
    coords = np.asarray(coords)
    if coords.ndim == 1:
        coords = coords.reshape(-1, 1)
    values = np.asarray(values, dtype=float)
    if coords.shape[0] == 0 or not np.issubdtype(coords.dtype, np.integer):
        # Float coordinates (or no data): only the dense kernel applies.
        return {"sorted": False}
    coords = coords.astype(np.int64, copy=False)
    dims = coords.shape[1]
    axes = []
    prepared = {"sorted": True, "axes": axes}
    for axis in range(dims):
        order = np.argsort(coords[:, axis], kind="stable")
        if dims == 1:
            axes.append({"column": coords[order, 0]})
            prepared["prefix"] = np.concatenate(
                ([0.0], np.cumsum(values[order]))
            )
        else:
            sorted_coords = coords[order]
            axes.append({
                "column": np.ascontiguousarray(sorted_coords[:, axis]),
                "coords": sorted_coords,
                "values": values[order],
            })
    return prepared


class SortOrderCache:
    """Single-slot cache of :func:`prepare_sort_orders`, keyed by version.

    A summary that answers repeated query batteries over a
    slowly-changing snapshot holds one of these and passes it -- with a
    version counter it bumps on every data change -- to
    :func:`batch_query_sums`.  The per-axis sorts are then computed
    once per snapshot version instead of once per battery.  Only the
    latest version is retained (the stream use case never queries old
    snapshots through the same cache).
    """

    __slots__ = ("_version", "_prepared", "_plan_key", "_plan")

    def __init__(self):
        self._version = None
        self._prepared = None
        self._plan_key = None
        self._plan = None

    def fetch(self, version, coords: np.ndarray, values: np.ndarray) -> dict:
        """The prepared orders for ``version``, computing on miss."""
        if self._version != version or self._prepared is None:
            self._prepared = prepare_sort_orders(coords, values)
            self._version = version
        return self._prepared

    def fetch_plan(self, queries) -> "QueryPlan":
        """The compiled :class:`QueryPlan` of a battery (one-slot memo).

        Keyed by the identity of the query objects; the cached plan
        holds strong references to them, so the ids stay valid for the
        lifetime of the slot.  Repeated batteries of the same query
        objects (the serving hot path) skip the stacking entirely;
        plans are data-independent, so the slot survives version bumps.
        """
        if isinstance(queries, QueryPlan):
            return queries
        queries = list(queries)
        key = tuple(map(id, queries))
        if self._plan is None or self._plan_key != key:
            self._plan = QueryPlan(queries)
            self._plan_key = key
        return self._plan

    def invalidate(self) -> None:
        """Drop the cached orders (e.g. after an in-place data change)."""
        self._version = None
        self._prepared = None
        self._plan_key = None
        self._plan = None


def _batch_box_sums(
    bounds: np.ndarray,
    coords: np.ndarray,
    values: np.ndarray,
    chunk_elems: int,
    prepared: Optional[dict] = None,
) -> np.ndarray:
    """Weighted in-box sums for a stack of boxes via sort-based sweeps.

    Every axis is sorted once and each box's candidate range on each
    axis is located with ``searchsorted``; each box is then swept along
    its most selective (*pivot*) axis, verifying only the candidates
    against the remaining axes.  Total work is
    ``O(d n log n + sum_b min_axis |candidates_b|)`` instead of the
    dense ``O(B * n * d)`` of a broadcasted membership matrix -- for
    the selective boxes of real query batteries that is an order of
    magnitude less, and it never materializes a ``(B, n)`` array.
    Batteries whose boxes cover most of the data fall back to the
    dense kernel, which wins at high density.

    ``prepared`` (from :func:`prepare_sort_orders`, possibly via a
    :class:`SortOrderCache`) supplies the data-dependent sort orders so
    repeated batteries over the same snapshot skip the re-sort.
    """
    n_boxes = bounds.shape[0]
    n, dims = coords.shape
    if prepared is None:
        prepared = prepare_sort_orders(coords, values)
    if not prepared["sorted"]:
        return _dense_box_sums(bounds, coords, values, chunk_elems)
    axes = prepared["axes"]
    lefts, rights = [], []
    for axis in range(dims):
        column = axes[axis]["column"]
        lefts.append(np.searchsorted(column, bounds[:, axis, 0], side="left"))
        rights.append(
            np.searchsorted(column, bounds[:, axis, 1], side="right")
        )
    if dims == 1:
        prefix = prepared["prefix"]
        return prefix[rights[0]] - prefix[lefts[0]]
    lengths_by_axis = np.stack(
        [right - left for left, right in zip(lefts, rights)]
    )
    if 3 * int(lengths_by_axis.min(axis=0).sum()) > n_boxes * n:
        return _dense_box_sums(bounds, coords, values, chunk_elems)
    pivot_of = np.argmin(lengths_by_axis, axis=0)
    per_box = np.zeros(n_boxes, dtype=float)
    for pivot in range(dims):
        selected = np.flatnonzero(pivot_of == pivot)
        if selected.size == 0:
            continue
        per_box[selected] = _sparse_pivot_sums(
            pivot,
            axes[pivot]["coords"],
            axes[pivot]["values"],
            bounds[selected],
            lefts[pivot][selected],
            rights[pivot][selected],
            chunk_elems,
        )
    return per_box


def batch_query_sums(
    queries: Sequence[Union[Box, MultiRangeQuery]],
    coords: np.ndarray,
    values: np.ndarray,
    chunk_elems: int = 4_000_000,
    *,
    cache: Optional[SortOrderCache] = None,
    version: int = 0,
) -> np.ndarray:
    """Weighted range sums for a battery of queries in one NumPy pass.

    For each query (a :class:`Box` or :class:`MultiRangeQuery`) returns
    ``values[query.contains(coords)].sum()``.  Query bounds are stacked
    into a ``(B, d, 2)`` array, all per-box weighted sums are computed
    by one sort-based sweep (:func:`_batch_box_sums`), and per-query
    totals fall out of an ``add.reduceat`` over each query's boxes
    (disjointness makes the union sum additive).  Queries whose boxes
    are *not* pairwise disjoint (possible only with
    ``check_disjoint=False``) are answered with a union mask instead,
    so the result always matches the per-query reference.

    ``chunk_elems`` caps the length of the intermediate candidate
    arrays so huge batteries stay cache- and memory-friendly.

    ``cache``/``version`` enable the repeated-battery fast path: pass a
    :class:`SortOrderCache` together with a counter identifying the
    current ``(coords, values)`` snapshot, and the data's sort orders
    are reused across calls until the version changes.  The caller owns
    the contract that a version uniquely identifies the snapshot.  The
    cache also retains the last compiled :class:`QueryPlan`, so a
    repeated battery of the same query objects skips the bounds
    stacking too; alternatively pass a pre-compiled plan as
    ``queries``.
    """
    plan = (
        cache.fetch_plan(queries)
        if cache is not None
        else compile_query_plan(queries)
    )
    queries = plan.queries
    q = len(queries)
    coords = np.asarray(coords)
    if coords.ndim == 1:
        coords = coords.reshape(-1, 1)
    values = np.asarray(values, dtype=float)
    if q == 0:
        return np.zeros(0, dtype=float)
    if coords.shape[0] == 0:
        return np.zeros(q, dtype=float)
    if plan.dims != coords.shape[1]:
        raise ValueError(
            f"dimensionality mismatch: boxes have {plan.dims} "
            f"axes, coords have {coords.shape[1]}"
        )
    overlapping = [
        i
        for i, query in enumerate(queries)
        if plan.counts[i] > 1
        and isinstance(query, MultiRangeQuery)
        and not query.boxes_disjoint
    ]
    prepared = (
        cache.fetch(version, coords, values) if cache is not None else None
    )
    per_box = _batch_box_sums(
        plan.bounds, coords, values, chunk_elems, prepared
    )
    out = plan.reduce_boxes(per_box)
    for i in overlapping:  # rare: additive sum would double-count
        mask = queries[i].contains(coords)
        out[i] = float(values[mask].sum())
    return out
